#!/usr/bin/env python3
"""Regression-test historical namespace bugs (paper §6.2, Table 3).

For each documented bug, boots the historical kernel version containing
it and checks whether functional interference testing reproduces the
finding.  Two scenarios are *expected* to stay undetected — F is masked
by inherent non-determinism and G needs a runtime-allocated resource ID —
exactly as the paper reports for its two out-of-reach bugs.

Run:  python examples/known_bug_regression.py
"""

from repro.core.known_bugs import SCENARIOS, reproduce_all


def main() -> None:
    print("Reproducing known Linux namespace bugs (Table 3 + §6.2):\n")
    header = f"{'ID':<3} {'Kernel':<7} {'NS':<5} {'Detected':<9} Scenario"
    print(header)
    print("-" * len(header))

    detected = 0
    expected_detected = 0
    for outcome in reproduce_all():
        scenario = outcome.scenario
        mark = "yes" if outcome.detected else "no"
        if not scenario.detectable:
            mark += " (expected: out of scope)"
        print(f"{scenario.bug_id:<3} {outcome.kernel_version:<7} "
              f"{outcome.namespace:<5} {mark:<9} {scenario.description}")
        detected += outcome.detected
        expected_detected += scenario.detectable
        if outcome.detected:
            report = outcome.result.reports[0]
            alone = report.record_for(report.receiver_alone_records,
                                      report.interfered_indices[0])
            with_s = report.receiver_record(report.interfered_indices[0])
            print(f"      trace diff: {scenario.expected_diff}")
            print(f"      receiver {with_s.name}(): "
                  f"alone={alone.retval} with-sender={with_s.retval}")

    print(f"\n{detected}/{len(SCENARIOS)} scenarios detected "
          f"({expected_detected} detectable — paper: 5/7).")


if __name__ == "__main__":
    main()
