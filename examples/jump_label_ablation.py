#!/usr/bin/env python3
"""CONFIG_JUMP_LABEL ablation — the paper's §6.1 bug-#2 war story.

The flow-label mode switch (``ipv6_flowlabel_exclusive``) is a static
key.  With ``CONFIG_JUMP_LABEL=y`` (the distro default) static keys are
implemented by *code patching*, so KIT's memory instrumentation never
sees the data flow and the DF strategies cannot generate the test case.
The paper found bug #2 anyway — through random generation — and notes
that rebuilding with the option off lets the data-flow analysis find it.

This example runs the same corpus four ways and prints who finds the
flow-label bugs (#2/#4):

                       DF-IA      RAND
  jump_label=y          miss      find
  jump_label=n          find      find

Run:  python examples/jump_label_ablation.py
"""

from repro import CampaignConfig, Kit, KernelConfig, MachineConfig, linux_5_13
from repro.corpus import build_corpus


def run(corpus, jump_label, strategy, budget):
    config = CampaignConfig(
        machine=MachineConfig(kernel=KernelConfig(jump_label=jump_label),
                              bugs=linux_5_13()),
        corpus=corpus,
        strategy=strategy,
        rand_budget=budget,
        diagnose=False,
    )
    return Kit(config).run()


def main() -> None:
    corpus = build_corpus(100, seed=1)
    flowlabel_bugs = {"2", "4"}

    print("Does each configuration find the flow-label bugs (#2/#4)?\n")
    print(f"{'CONFIG_JUMP_LABEL':<19} {'strategy':<9} {'finds #2/#4':<12} "
          f"{'all bugs found'}")
    print("-" * 68)

    budget = None
    for jump_label in (True, False):
        for strategy in ("df-ia", "rand"):
            if strategy == "rand" and budget is None:
                budget = 400
            result = run(corpus, jump_label, strategy, budget)
            found = result.bugs_found()
            hit = "FOUND" if found & flowlabel_bugs else "missed"
            label = "y (code patching)" if jump_label else "n (plain memory)"
            print(f"{label:<19} {strategy:<9} {hit:<12} "
                  f"{sorted(found)}")

    print("\nWith the jump label compiled in, the static-key read never "
          "reaches the\nmemory trace, so no DF cluster covers it — only "
          "random pairing stumbles\ninto the bug, exactly as §6.1 reports.")


if __name__ == "__main__":
    main()
