#!/usr/bin/env python3
"""Quickstart: find the paper's 9 functional interference bugs in "Linux 5.13".

Boots the simulated 5.13 kernel (all Table-2 bugs present), builds a small
syzkaller-style corpus, and runs the full KIT pipeline with the DF-IA
test-case generation strategy.  Ends by printing the report for bug #1 —
the /proc/net/ptype information leak the paper opens with (Figure 2).

Run:  python examples/quickstart.py
"""

from repro import CampaignConfig, Kit, MachineConfig, linux_5_13
from repro.core.oracle import classify_all
from repro.kernel.bugs import TABLE2_BUGS


def main() -> None:
    config = CampaignConfig(
        machine=MachineConfig(bugs=linux_5_13()),
        corpus_size=150,     # scaled-down stand-in for the 98,853-program corpus
        corpus_seed=1,
        strategy="df-ia",
    )
    print("Running KIT against the simulated Linux 5.13 kernel...\n")
    result = Kit(config).run(progress=lambda message: print(f"  [kit] {message}"))

    stats = result.stats
    print(f"\ncorpus: {stats.corpus_size} programs "
          f"({stats.profile_runs} profiling runs)")
    print(f"candidate data flows: {stats.flow_count}, "
          f"DF-IA clusters: {stats.cluster_count}")
    print(f"test cases executed: {stats.cases_executed} "
          f"({stats.executions_per_second():.0f}/s)")
    print(f"reports: {stats.initial_reports} candidates -> "
          f"{stats.after_nondet} after non-det filter -> "
          f"{stats.after_resource} after resource filter")
    print(f"aggregation: {result.groups.agg_rs_count} AGG-RS / "
          f"{result.groups.agg_r_count} AGG-R groups")

    found = sorted(result.bugs_found(), key=lambda b: (len(b), b))
    print(f"\nbugs found ({len(found)}):")
    for bug in found:
        if bug.isdigit():
            __, description, resource = TABLE2_BUGS[int(bug)]
            print(f"  #{bug}: {description}  [{resource}]")
        else:
            print(f"  {bug}")

    # Show the paper's flagship finding in full.
    for report in result.reports:
        if "1" in classify_all(report):
            print("\n--- sample report (bug #1, the ptype leak) ---")
            print(report.render())
            break


if __name__ == "__main__":
    main()
