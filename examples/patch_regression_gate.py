#!/usr/bin/env python3
"""Patch gating: regression-test namespace isolation across two kernels.

The downstream workflow a maintainer wants from a KIT-style tool:

1. run the same campaign against the current kernel and a patched build,
2. diff the AGG-RS groups (the paper's identity for "the same
   functional interference", §4.4),
3. require the gate: the patch resolves its target groups and
   introduces nothing new,
4. triage whatever persists, carrying decisions forward.

Here the "patch" fixes bug #1 (the ptype leak) on top of the 5.13
preset; everything else — including the spec-imperfection false
positives — persists, and the triage session records it.

Run:  python examples/patch_regression_gate.py
"""

from repro import CampaignConfig, Kit, MachineConfig, linux_5_13
from repro.core import TriageSession, classify, diff_campaigns
from repro.corpus import build_corpus


def run(corpus, bugs):
    return Kit(CampaignConfig(machine=MachineConfig(bugs=bugs),
                              corpus=list(corpus))).run()


def main() -> None:
    corpus = build_corpus(120, seed=1)
    print("running the campaign against Linux 5.13...")
    before = run(corpus, linux_5_13())
    print(f"  {len(before.reports)} reports, "
          f"{before.groups.agg_rs_count} AGG-RS groups")

    print("running the same campaign against 5.13 + ptype fix...")
    after = run(corpus, linux_5_13().copy(ptype_leak=False))
    print(f"  {len(after.reports)} reports, "
          f"{after.groups.agg_rs_count} AGG-RS groups\n")

    diff = diff_campaigns(before, after)
    print(diff.render())

    # The gate a CI job would enforce on the patch:
    assert not diff.introduced, "patch introduced new interference!"
    assert any("ptype" in key[0] for key in diff.resolved), \
        "patch failed to resolve its target"
    print("\ngate PASSED: the fix resolved its groups and added nothing.")

    # Triage what persists (the remaining 5.13 bugs + FP groups).
    session = TriageSession(after.groups)
    for key in session.pending_groups():
        label = classify(session.representative(key))
        if label == "FP":
            session.drop_false_positive(key, note="unprotected resource",
                                        whole_receiver=True)
        elif label == "UI":
            session.mark_investigating(key)
        else:
            session.confirm_bug(key, note=f"Table 2 bug #{label}")
    print(f"triage: {session.summary()}")


if __name__ == "__main__":
    main()
