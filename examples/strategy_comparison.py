#!/usr/bin/env python3
"""Compare test-case generation strategies (paper §6.3, Table 4).

Runs the same corpus through DF-IA, DF-ST-1, DF-ST-2, the unclustered DF
baseline, and RAND (random pairing under the same execution budget as
the largest clustered strategy), then prints a Table-4-shaped summary.

Expected shape (matching the paper):
  * cluster counts grow DF-IA < DF-ST-1 < DF-ST-2 << DF,
  * every DF variant finds all nine bugs,
  * RAND finds only a subset under an equal budget.

Run:  python examples/strategy_comparison.py
"""

from repro import CampaignConfig, Kit, MachineConfig, linux_5_13
from repro.corpus import build_corpus


def run_strategy(corpus, strategy, rand_budget=None):
    config = CampaignConfig(
        machine=MachineConfig(bugs=linux_5_13()),
        corpus=corpus,
        strategy=strategy,
        rand_budget=rand_budget,
        diagnose=False,  # culprit analysis not needed for effectiveness
    )
    return Kit(config).run()


def main() -> None:
    corpus = build_corpus(120, seed=1)
    print(f"corpus: {len(corpus)} programs\n")

    results = {}
    for strategy in ("df-ia", "df-st-1", "df-st-2"):
        results[strategy] = run_strategy(corpus, strategy)
        print(f"ran {strategy}: "
              f"{results[strategy].stats.cluster_count} clusters")

    # Table 4's RAND row ran ~7.7x as many cases as DF-IA and still
    # found fewer bugs; give RAND the same generous multiple here.
    budget = 8 * max(r.stats.cases_total for r in results.values())
    results["rand"] = run_strategy(corpus, "rand", rand_budget=budget)
    print(f"ran rand with budget {budget}\n")

    df_flows = results["df-ia"].generation.flow_count
    numbered = {"1", "2", "3", "4", "5", "6", "7", "8", "9"}

    print(f"{'Gen':<9} {'Test cases':>11} {'Effectiveness':>14}")
    print("-" * 36)
    for strategy in ("df-ia", "df-st-1", "df-st-2", "rand"):
        result = results[strategy]
        found = len(result.bugs_found() & numbered)
        count = (result.stats.cluster_count if strategy != "rand"
                 else result.stats.cases_total)
        print(f"{strategy.upper():<9} {count:>11} {found:>11}/9")
    print(f"{'DF':<9} {df_flows:>11} {'(not executed)':>14}")

    rand_found = sorted(results["rand"].bugs_found() & numbered)
    print(f"\nRAND found only: {rand_found} "
          f"(paper's RAND row found #1, #2, #5, #7, #9)")


if __name__ == "__main__":
    main()
