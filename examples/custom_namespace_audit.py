#!/usr/bin/env python3
"""Audit one namespace with a custom specification — the §3.2 workflow.

KIT's specification is *partial* and *interactively refined*: you start
from a narrow spec covering only the resources you care about, triage
the resulting AGG-R groups, and drop whole groups once a member report
is confirmed to be a false positive (§6.4's triage flow).

This example audits only the network namespace's procfs surface:

1. build a narrow spec: just ``fd_proc_net`` descriptors,
2. write targeted probe programs with the public corpus API,
3. run a campaign, triage group-by-group,
4. drop an FP group the way a KIT user would.

Run:  python examples/custom_namespace_audit.py
"""

from repro import CampaignConfig, Kit, MachineConfig, Specification, linux_5_13
from repro.core.aggregation import receiver_signature
from repro.core.oracle import classify
from repro.corpus import prog


def build_probe_corpus():
    """Sender actions + /proc/net observation probes, via the public API."""
    probes = [
        prog(("open", f"/proc/net/{name}", 0), ("pread64", "r0", 4096, 0))
        for name in ("ptype", "sockstat", "protocols", "ip_vs", "unix", "dev")
    ]
    actions = [
        prog(("socket", 17, 3, 3)),                      # packet socket
        prog(("socket", 2, 1, 6)),                       # TCP socket
        prog(("socket", 2, 2, 17), ("sendto", "r0", 64, 0x0A000001, 53)),
        prog(("ipvs_add_service", 0x0A000001, 80)),
        prog(("ip_link_add", "audit0")),
        prog(("crypto_alloc", "sha256")),                # unprotected noise
    ]
    return actions + probes


def main() -> None:
    # Start from an *empty* spec and add exactly one resource kind: the
    # /proc/net descriptor type.  Everything else is out of scope.
    narrow_spec = Specification(protected_kinds=frozenset(), checkers=()) \
        .with_kinds("fd_proc_net")

    config = CampaignConfig(
        machine=MachineConfig(bugs=linux_5_13()),
        corpus=build_probe_corpus(),
        spec=narrow_spec,
        strategy="df-ia",
    )
    result = Kit(config).run()

    print(f"audit of /proc/net: {len(result.reports)} reports in "
          f"{result.groups.agg_r_count} AGG-R groups\n")

    groups = result.groups
    for signature, reports in sorted(groups.agg_r.items()):
        labels = sorted({classify(r) for r in reports})
        print(f"  {signature}")
        print(f"      {len(reports)} report(s), triage labels: {labels}")

    # Triage: suppose we confirm one group is out of scope and drop it —
    # the §6.4 "drop the entire AGG-R group" action.
    if groups.agg_r:
        victim = sorted(groups.agg_r)[0]
        dropped = groups.drop_agg_r(victim)
        print(f"\ndropped group {victim!r} ({len(dropped)} reports); "
              f"{groups.agg_r_count} groups remain")

    remaining_bugs = sorted(result.bugs_found())
    print(f"\nnamespace bugs witnessed through /proc/net alone: "
          f"{remaining_bugs}")


if __name__ == "__main__":
    main()
