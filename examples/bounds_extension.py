#!/usr/bin/env python3
"""The §7 future-work extension: bounds learning for noisy resources.

Functional interference testing must discard any result that varies on
its own — which is why the paper could not detect the conntrack procfs
leak (§6.2, "bug F"): `/proc/net/nf_conntrack` jitters even on an idle
machine.  §7 sketches the fix: learn the *valid bounds* of noisy values
from profiling re-runs and flag bound *violations* instead of mere
differences.

This example runs both detectors side by side on the bug-F kernel:

* the standard detector sees the divergence, attributes it to
  non-determinism, and (correctly, by its rules) stays silent;
* the bounds detector learns the dump's envelope (how many lines, what
  they look like) and flags the sender's UDP flow as an out-of-envelope
  observation — the leak, detected.

Run:  python examples/bounds_extension.py
"""

from repro import MachineConfig, Machine
from repro.core import BoundsDetector, Detector, TestCase, default_specification
from repro.corpus import seed_programs
from repro.kernel import fixed_kernel, known_bug_kernel


def main() -> None:
    seeds = seed_programs()
    spec = default_specification()
    sender, receiver = seeds["udp_send"], seeds["read_nf_conntrack"]

    print("scenario: sender transmits UDP; receiver dumps "
          "/proc/net/nf_conntrack\n")

    baseline = Detector(Machine(MachineConfig(bugs=known_bug_kernel("F"))),
                        spec)
    outcome = baseline.check_case(TestCase(0, 1, sender, receiver))
    print(f"standard detector on the leaky kernel: outcome = "
          f"{outcome.outcome.value}")
    print("  (the divergence exists but is indistinguishable from the "
          "file's inherent noise)\n")

    bounds = BoundsDetector(Machine(MachineConfig(bugs=known_bug_kernel("F"))),
                            spec)
    violations = bounds.check(sender, receiver)
    print(f"bounds detector on the leaky kernel: {len(violations)} "
          "envelope violation(s)")
    for violation in violations:
        print(f"  call {violation.call_index}, node {violation.label}: "
              f"observed {violation.observed!r}")

    clean = BoundsDetector(Machine(MachineConfig(bugs=fixed_kernel())), spec)
    print(f"\nbounds detector on the fixed kernel: "
          f"{len(clean.check(sender, receiver))} violation(s) "
          "(no false alarm)")


if __name__ == "__main__":
    main()
