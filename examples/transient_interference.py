#!/usr/bin/env python3
"""Transient interference and the concurrency extension (§7).

KIT executes test cases in two phases: the whole sender program, then
the whole receiver program.  A sender that perturbs shared kernel state
and *restores it before finishing* is therefore invisible:

    sender:   r0 = socket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
              close(r0)          # the global counters are back to 0

The receiver's ``/proc/net/sockstat`` looks identical with and without
that sender — outcome ``pass`` — even though, for the socket's entire
lifetime, every other container could see the global counter move.

The §7 concurrency extension fixes the blind spot deterministically: it
replays the pair under a bounded set of syscall interleavings and
reports the *witness schedules*.  Only orders where a receiver sample
lands between ``socket()`` and ``close()`` observe the bump.

Run:  python examples/transient_interference.py
"""

from repro import Machine, MachineConfig, linux_5_13
from repro.core import (
    ConcurrentDetector,
    Detector,
    TestCase,
    default_specification,
)
from repro.core.concurrent import default_schedules, sequential_schedule
from repro.corpus import prog


def main() -> None:
    transient_sender = prog(("socket", 2, 1, 6), ("close", "r0"))
    double_probe = prog(("open", "/proc/net/sockstat", 0),
                        ("pread64", "r0", 512, 0),
                        ("pread64", "r0", 512, 0))

    print("sender:   socket(AF_INET, SOCK_STREAM, TCP); close(r0)")
    print("receiver: open /proc/net/sockstat; pread64 x2\n")

    spec = default_specification()
    sequential = Detector(Machine(MachineConfig(bugs=linux_5_13())), spec)
    outcome = sequential.check_case(
        TestCase(0, 1, transient_sender, double_probe))
    print(f"two-phase detector (paper §4.2 order "
          f"{sequential_schedule(2, 3)!r}): outcome = {outcome.outcome.value}")

    concurrent = ConcurrentDetector(
        Machine(MachineConfig(bugs=linux_5_13())), spec)
    report = concurrent.check_case(transient_sender, double_probe)
    print(f"\nschedules explored: {default_schedules(2, 3)}")
    if report is None:
        print("no interference witnessed under any schedule")
        return
    print("witness schedules (S = sender call, R = receiver call):")
    for schedule, calls in sorted(report.witnesses.items()):
        print(f"  {schedule}: receiver call(s) {calls} diverged")
    print(f"\ntransient-only (invisible to the two-phase order): "
          f"{report.transient_only}")


if __name__ == "__main__":
    main()
