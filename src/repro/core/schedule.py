"""Controlled-interleaving schedules with deterministic replay.

KIT's two-phase execution (sender fully, then receiver) structurally
cannot witness *transient* interference: a sender syscall that perturbs
shared kernel state and restores it before returning — charge a global
counter, deliver, release it — leaves nothing behind for the receiver.
The paper's §7 points at combining KIT with concurrency testing tools;
:mod:`repro.core.concurrent` prototyped that at whole-syscall
granularity.  This module is the production form, preempting *inside*
syscalls at the instrumentation points §5.1 already provides:

* A **schedule** is a set of *preemption points* ``P ⊆ [1, H]`` over the
  sender's instrumentation-event stream: one boundary event before each
  sender call (plus one after the last), and — at ``kfunc`` granularity
  — one event per instrumented kernel-function enter/exit during the
  sender's calls (the :func:`~repro.kernel.ktrace.preemption_scope`
  hook).  At each point in ``P`` exactly one receiver call runs, nested
  inside the sender's current syscall; receiver calls left over when
  the sender finishes run as the sequential tail.  The empty set is
  byte-for-byte the paper's two-phase order.
* A :class:`ScheduleId` names a schedule *compactly and portably*:
  ``(strategy, granularity, seed, depth, index)``.  The concrete point
  set is a pure function of the id and the sender's event horizon, via
  the same string-seeded RNG the fault plan uses
  (:func:`repro.faults.plan.decision`) — so an id recorded in a report
  replays the identical interleaving on any machine booted from the
  same snapshot, with no schedule bytes persisted.
* Strategies: ``pct`` draws ``depth`` distinct points per index
  (randomized priority-style scheduling with ``d`` change points, after
  Burckhardt et al.'s PCT); ``sys`` enumerates all point sets of size
  ``1..depth`` lexicographically (systematic, preemption-bounded after
  CHESS); ``rand`` flips a per-event coin.  All are bounded by the
  campaign's schedule budget.

Detection stays Algorithm 1 — receiver-alone baseline, non-determinism
marks, protected-resource filter — but quantifies over the explored
schedules: a case is buggy when ANY schedule's receiver trace diverges
from the sequential baseline.  The witnessing :class:`ScheduleId` is
recorded in the report (and the campaign journal), which is what makes
``kit-repro repro`` replays exact.  See docs/SCHEDULING.md.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, List, Optional, Sequence, Set, Tuple)

from ..corpus.program import ConstArg, TestProgram
from ..faults.plan import SITE_SCHED_PREEMPT, SchedulePreemptInjected
from ..kernel.ktrace import preemption_scope
from ..vm.executor import ExecutionResult, SteppedExecution, SyscallRecord
from ..vm.machine import RECEIVER, SENDER, Machine
from .nondet import NondetAnalyzer
from .spec import Specification
from .trace_ast import (
    NodeDiff,
    apply_nondet_marks,
    build_trace_ast,
    syscall_trace_cmp,
)

#: Preemption-point granularities.
GRANULARITY_KFUNC = "kfunc"      # kernel-function enter/exit + call boundaries
GRANULARITY_SYSCALL = "syscall"  # call boundaries only (coarse, cheap)

#: The sequential (two-phase) schedule's encoded id.
SEQUENTIAL = "seq"

#: Schedule strategies.
STRATEGY_PCT = "pct"
STRATEGY_SYSTEMATIC = "sys"
STRATEGY_RANDOM = "rand"
ALL_STRATEGIES = (STRATEGY_PCT, STRATEGY_SYSTEMATIC, STRATEGY_RANDOM)

_GRANULARITY_CODE = {GRANULARITY_KFUNC: "k", GRANULARITY_SYSCALL: "s"}
_CODE_GRANULARITY = {code: gran for gran, code in _GRANULARITY_CODE.items()}

#: Static-entry prefix for procfs reads (mirrors analysis.accessmap).
_PROC_PREFIX = "proc:"


@dataclass(frozen=True)
class ScheduleId:
    """A compact, replayable schedule name.

    The id never stores concrete points: :func:`schedule_points` derives
    them deterministically from the id and the measured event horizon,
    so the id is stable across processes, shard modes, and resumes.
    """

    strategy: str = STRATEGY_PCT
    granularity: str = GRANULARITY_KFUNC
    seed: int = 11
    depth: int = 3
    index: int = 0

    def encode(self) -> str:
        """``pct:k:11:3:7``-style wire form (``seq`` for sequential)."""
        if self.strategy == SEQUENTIAL:
            return SEQUENTIAL
        return (f"{self.strategy}:{_GRANULARITY_CODE[self.granularity]}:"
                f"{self.seed}:{self.depth}:{self.index}")

    @classmethod
    def parse(cls, text: str) -> "ScheduleId":
        if text == SEQUENTIAL:
            return cls(strategy=SEQUENTIAL)
        parts = text.split(":")
        if len(parts) != 5:
            raise ValueError(f"bad schedule id {text!r} "
                             "(want strategy:granularity:seed:depth:index)")
        strategy, code, seed, depth, index = parts
        if strategy not in ALL_STRATEGIES:
            raise ValueError(f"unknown schedule strategy {strategy!r}")
        if code not in _CODE_GRANULARITY:
            raise ValueError(f"unknown granularity code {code!r}")
        return cls(strategy=strategy, granularity=_CODE_GRANULARITY[code],
                   seed=int(seed), depth=int(depth), index=int(index))


def schedule_points(schedule: ScheduleId,
                    horizon: int) -> Optional[FrozenSet[int]]:
    """The preemption-point set of *schedule* over ``[1, horizon]``.

    Pure function of its arguments — the replay contract.  Returns None
    when a systematic index lies beyond the enumeration (exhausted).
    """
    if schedule.strategy == SEQUENTIAL:
        return frozenset()
    h = max(horizon, 1)
    if schedule.strategy == STRATEGY_PCT:
        rng = random.Random(
            f"{schedule.seed}:pct:{schedule.depth}:{schedule.index}")
        count = min(max(schedule.depth, 1), h)
        return frozenset(rng.sample(range(1, h + 1), count))
    if schedule.strategy == STRATEGY_SYSTEMATIC:
        index = schedule.index
        for size in range(1, max(schedule.depth, 1) + 1):
            if size > h:
                break
            for combo in itertools.combinations(range(1, h + 1), size):
                if index == 0:
                    return frozenset(combo)
                index -= 1
        return None
    if schedule.strategy == STRATEGY_RANDOM:
        rng = random.Random(
            f"{schedule.seed}:rand:{schedule.depth}:{schedule.index}")
        rate = min(1.0, max(schedule.depth, 1) / h)
        return frozenset(point for point in range(1, h + 1)
                         if rng.random() < rate)
    raise ValueError(f"unknown schedule strategy {schedule.strategy!r}")


@dataclass(frozen=True)
class SchedulePolicy:
    """One campaign's schedule-exploration configuration."""

    strategy: str = STRATEGY_PCT
    budget: int = 24
    seed: int = 11
    depth: int = 3
    granularity: str = GRANULARITY_KFUNC
    #: Sorted static-entry-name pairs selected by the race analysis
    #: (:func:`ranked_pair_names`); None explores every case.
    pair_names: Optional[FrozenSet[Tuple[str, str]]] = None

    def selects(self, sender: TestProgram, receiver: TestProgram) -> bool:
        """Should this pair be explored at all?"""
        if self.pair_names is None:
            return True
        sender_entries = program_entries(sender)
        receiver_entries = program_entries(receiver)
        for a in sender_entries:
            for b in receiver_entries:
                key = (a, b) if a <= b else (b, a)
                if key in self.pair_names:
                    return True
        return False

    def schedule_ids(self, horizon: int
                     ) -> List[Tuple[ScheduleId, FrozenSet[int]]]:
        """The budgeted, deduplicated schedule set for one sender.

        Indices that resolve to an already-seen point set (or the empty
        set — that is the sequential baseline, always checked first)
        still consume budget but are not re-executed.
        """
        out: List[Tuple[ScheduleId, FrozenSet[int]]] = []
        seen: Set[FrozenSet[int]] = {frozenset()}
        for index in range(self.budget):
            schedule = ScheduleId(self.strategy, self.granularity,
                                  self.seed, self.depth, index)
            points = schedule_points(schedule, horizon)
            if points is None:
                break
            if points in seen:
                continue
            seen.add(points)
            out.append((schedule, points))
        return out

    def describe(self) -> Dict[str, object]:
        """Result-affecting identity (config fingerprints / store)."""
        return {
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "depth": self.depth,
            "granularity": self.granularity,
            "pairs": (sorted("|".join(pair) for pair in self.pair_names)
                      if self.pair_names is not None else None),
        }


def program_entries(program: TestProgram) -> FrozenSet[str]:
    """The static entry names a program can reach: its call names plus
    ``proc:<key>`` for every constant ``/proc`` path it opens — the name
    space :mod:`repro.analysis.races` candidates use."""
    entries: Set[str] = set()
    for call in program.calls:
        if call is None:
            continue
        entries.add(call.name)
        for arg in call.args:
            if isinstance(arg, ConstArg) and isinstance(arg.value, str) \
                    and arg.value.startswith("/proc/"):
                entries.add(_PROC_PREFIX + arg.value[len("/proc/"):])
    return frozenset(entries)


def ranked_pair_names(candidates: Sequence,
                      top_n: int) -> FrozenSet[Tuple[str, str]]:
    """Entry-name pairs of the *top_n* best-ranked R0/R1 candidates.

    *candidates* is :func:`repro.analysis.races.find_race_candidates`
    output (already sorted best rank first).  R2 (namespace-scope)
    pairs are skipped: they need both programs in one container, which
    the two-container harness never runs.
    """
    pairs: List[Tuple[str, str]] = []
    for candidate in candidates:
        if candidate.rank > 1:
            continue
        key = (candidate.entry_a, candidate.entry_b)
        if key in pairs:
            continue
        pairs.append(key)
        if len(pairs) >= top_n:
            break
    return frozenset(pairs)


# -- execution ------------------------------------------------------------


class PreemptionController:
    """Counts sender-side events and dispatches receiver calls.

    Installed (via :func:`~repro.kernel.ktrace.preemption_scope`) for
    the dynamic extent of the sender's calls.  Events raised while a
    receiver call is being dispatched are ignored — points index the
    *sender's* event stream only, which keeps the stream (and therefore
    every schedule) a pure function of the sender program.
    """

    def __init__(self, points: FrozenSet[int],
                 receiver_session: SteppedExecution):
        self._points = points
        self._receiver = receiver_session
        self._ordinal = 0
        self._in_dispatch = False
        #: Receiver calls dispatched at preemption points (not the tail).
        self.dispatched = 0

    def on_kfunc_event(self, func_id: int, kind: int) -> None:
        self._advance()

    def on_boundary(self) -> None:
        self._advance()

    def _advance(self) -> None:
        if self._in_dispatch:
            return
        self._ordinal += 1
        if self._ordinal in self._points and not self._receiver.done:
            self._in_dispatch = True
            try:
                self._receiver.step()
                self.dispatched += 1
            finally:
                self._in_dispatch = False


def run_interleaved(machine: Machine, sender: TestProgram,
                    receiver: TestProgram, points: FrozenSet[int],
                    granularity: str = GRANULARITY_KFUNC
                    ) -> Tuple[ExecutionResult, ExecutionResult]:
    """Execute the pair from a fresh restore under *points*.

    Returns ``(sender_result, receiver_result)``.  The empty point set
    reproduces the two-phase order exactly (the sequential tail runs
    every receiver call after the sender finishes).
    """
    faults = machine.faults
    if faults is not None and faults.should_inject(SITE_SCHED_PREEMPT):
        raise SchedulePreemptInjected(
            SITE_SCHED_PREEMPT, "injected schedule-execution death")
    machine.reset()
    sender_session = machine.begin_stepped(SENDER, sender)
    receiver_session = machine.begin_stepped(RECEIVER, receiver)
    controller = PreemptionController(points, receiver_session)

    def drive_sender() -> None:
        while not sender_session.done:
            controller.on_boundary()
            sender_session.step()
        controller.on_boundary()

    if granularity == GRANULARITY_KFUNC:
        with preemption_scope(controller.on_kfunc_event):
            drive_sender()
    else:
        drive_sender()
    while receiver_session.step():
        pass
    return sender_session.result(), receiver_session.result()


def measure_horizon(machine: Machine, sender: TestProgram,
                    granularity: str = GRANULARITY_KFUNC) -> int:
    """The sender's preemption-event horizon ``H``.

    A counting-hook dry run from a fresh restore: boundaries contribute
    ``len(calls) + 1`` events, and at ``kfunc`` granularity every
    instrumented function enter/exit during the sender's own calls adds
    one (timer ticks are masked by the kernel, receiver events do not
    exist in a solo run).  Deterministic for a fixed snapshot, so id →
    points derivation agrees between record and replay.
    """
    boundaries = len(sender.calls) + 1
    if granularity == GRANULARITY_SYSCALL:
        return boundaries
    machine.reset()
    session = machine.begin_stepped(SENDER, sender)
    events = [0]

    def count(func_id: int, kind: int) -> None:
        events[0] += 1

    with preemption_scope(count):
        while session.step():
            pass
    return events[0] + boundaries


def replay_schedule(machine: Machine, sender: TestProgram,
                    receiver: TestProgram,
                    encoded: str) -> ExecutionResult:
    """Re-execute the exact interleaving a report recorded.

    Re-measures the horizon (deterministic), re-derives the point set
    from the id, and runs it — the receiver's records are byte-for-byte
    those of the original witnessing run.
    """
    schedule = ScheduleId.parse(encoded)
    horizon = measure_horizon(machine, sender, schedule.granularity)
    points = schedule_points(schedule, horizon)
    if points is None:
        raise ValueError(f"schedule {encoded!r} is beyond the systematic "
                         f"enumeration for horizon {horizon}")
    __, receiver_result = run_interleaved(machine, sender, receiver,
                                          points, schedule.granularity)
    return receiver_result


# -- exploration ----------------------------------------------------------


@dataclass
class ExplorationResult:
    """What exploring one case's schedule set produced."""

    #: encoded ScheduleId -> interfered receiver call indices (protected).
    witnesses: Dict[str, List[int]] = field(default_factory=dict)
    #: First witnessing schedule — the one the report replays.
    culprit: Optional[str] = None
    culprit_records: List[Optional[SyscallRecord]] = field(
        default_factory=list)
    culprit_diffs: List[NodeDiff] = field(default_factory=list)
    interfered: List[int] = field(default_factory=list)
    schedules_run: int = 0

    @property
    def found(self) -> bool:
        return bool(self.witnesses)


class ScheduleExplorer:
    """Runs one case's bounded schedule set and collects witnesses.

    Bound to one machine, like the :class:`~repro.core.detection.Detector`
    that owns it; an injected ``sched.preempt`` fault aborts the whole
    case, whose retry (``call_with_fault_retries``) re-runs exploration
    from a fresh restore.
    """

    def __init__(self, machine: Machine, spec: Specification,
                 nondet: NondetAnalyzer, policy: SchedulePolicy):
        self._machine = machine
        self._spec = spec
        self._nondet = nondet
        self.policy = policy
        self._horizons: Dict[str, int] = {}

    def selects(self, sender: TestProgram, receiver: TestProgram) -> bool:
        return self.policy.selects(sender, receiver)

    def horizon(self, sender: TestProgram) -> int:
        cached = self._horizons.get(sender.hash_hex)
        if cached is None:
            cached = measure_horizon(self._machine, sender,
                                     self.policy.granularity)
            self._horizons[sender.hash_hex] = cached
        return cached

    def explore(self, sender: TestProgram, receiver: TestProgram,
                alone_records: List[Optional[SyscallRecord]]
                ) -> ExplorationResult:
        """Run the schedule set against the sequential-alone baseline."""
        marks = self._nondet.nondet_paths(receiver)
        tree_alone = apply_nondet_marks(build_trace_ast(alone_records),
                                        marks)
        result = ExplorationResult()
        horizon = self.horizon(sender)
        for schedule, points in self.policy.schedule_ids(horizon):
            __, receiver_result = run_interleaved(
                self._machine, sender, receiver, points,
                self.policy.granularity)
            result.schedules_run += 1
            tree_sched = apply_nondet_marks(
                build_trace_ast(receiver_result.records), marks)
            diffs = syscall_trace_cmp(tree_alone, tree_sched)
            if not diffs:
                continue
            interfered: Set[int] = set()
            for diff in diffs:
                index = diff.call_index
                if index is None:
                    continue
                record = (receiver_result.records[index]
                          if 0 <= index < len(receiver_result.records)
                          else None)
                if record is not None and \
                        self._spec.call_accesses_protected(record):
                    interfered.add(index)
            if not interfered:
                continue
            encoded = schedule.encode()
            result.witnesses[encoded] = sorted(interfered)
            if result.culprit is None:
                result.culprit = encoded
                result.culprit_records = list(receiver_result.records)
                result.culprit_diffs = [d for d in diffs
                                        if d.call_index in interfered]
                result.interfered = sorted(interfered)
        return result
