"""The end-to-end KIT pipeline (paper Figure 3).

``Kit`` wires the four stages together — test case generation (§4.1),
execution (§4.2), detection (§4.3), and report aggregation (§4.4) — and
collects the bookkeeping the paper's evaluation tables are built from.

A campaign is fully described by a :class:`CampaignConfig`; results come
back as a :class:`CampaignResult` carrying the reports, the AGG-R /
AGG-RS groups, the per-stage statistics, and (via the evaluation-only
oracle) the set of injected bugs the campaign discovered.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Set

from ..corpus.generator import build_corpus
from ..corpus.program import TestProgram
from ..faults.invariants import verify_owner_invariant
from ..faults.plan import (
    FaultPlan,
    FaultRetriesExhausted,
    call_with_fault_retries,
)
from ..faults.retry import RetryPolicy, describe_failures
from ..store import (
    RECORD_END,
    CampaignHandle,
    CampaignStore,
    case_key,
    summarize_config,
)
from ..vm.cluster import affinity_order, run_distributed
from ..vm.machine import Machine, MachineConfig, MachineStats
from ..vm.shardpool import run_sharded
from ..vm.shm import DeltaStore, SegmentStore, SharedSnapshot
from .aggregation import ReportGroups, aggregate
from .clustering import strategy_by_name
from .detection import DetectionResult, Detector, Outcome
from .diagnosis import Diagnoser
from .execution import (
    DEFAULT_SENDER_CACHE_BYTES,
    BaselineCache,
    SenderStateCache,
)
from .generation import GenerationResult, TestCase, TestCaseGenerator
from .nondet import DEFAULT_OFFSET_SECONDS, NondetAnalyzer, NondetStore
from .oracle import FALSE_POSITIVE, UNDER_INVESTIGATION, classify_all
from .accessindex import ColumnarAccessIndex
from .profile import (
    Profiler,
    iter_profiles_batched,
    profile_corpus_distributed,
)
from .report import TestReport
from .reportcodec import decode_report, encode_report
from .schedule import (
    GRANULARITY_KFUNC,
    STRATEGY_PCT,
    ScheduleExplorer,
    SchedulePolicy,
    ranked_pair_names,
)
from .spec import Specification, default_specification

Progress = Callable[[str], None]


class _FaultRetryProfiler:
    """Profiler adapter retrying each (pure) profiling run under faults."""

    def __init__(self, profiler, faults: Optional[FaultPlan]):
        self._profiler = profiler
        self._faults = faults

    @property
    def runs_executed(self) -> int:
        return self._profiler.runs_executed

    def profile(self, program: TestProgram, index: int = 0):
        return call_with_fault_retries(self._faults, self._profiler.profile,
                                       program, index,
                                       context=f"profile {index}")


@dataclass
class CampaignConfig:
    """Everything one KIT campaign needs."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    spec: Specification = field(default_factory=default_specification)
    #: Input corpus (syzkaller stand-in): size and generator seed, or an
    #: explicit program list overriding both.
    corpus_size: int = 200
    corpus_seed: int = 1
    corpus: Optional[List[TestProgram]] = None
    #: Table-4 strategy: df-ia | df-st-1 | df-st-2 | df | rand.
    strategy: str = "df-ia"
    #: Test-case budget for the RAND baseline (callers doing Table-4
    #: comparisons pass the DF budget explicitly).
    rand_budget: Optional[int] = None
    rand_seed: int = 7
    #: Seed for the weighted reservoir choosing cluster representatives.
    rep_seed: int = 0
    #: Cap on executed test cases (None = exercise every cluster).
    max_test_cases: Optional[int] = None
    #: Receiver re-run boot offsets for non-determinism identification.
    nondet_offsets: tuple = DEFAULT_OFFSET_SECONDS
    #: Directory for the on-disk non-determinism cache (None = in-memory).
    nondet_dir: Optional[str] = None
    #: Directory for the on-disk profile cache (None = profile every run).
    profile_dir: Optional[str] = None
    #: Pairing-index backend: ``memory`` (the classic in-memory
    #: :class:`~repro.core.dataflow.DataFlowIndex` dict product) or
    #: ``columnar`` (the on-disk sorted-run merge-join of
    #: :class:`~repro.core.accessindex.ColumnarAccessIndex` — identical
    #: pair sets, peak memory bounded by one address group; see
    #: docs/CORPUS.md).
    index_backend: str = "memory"
    #: Directory for columnar index run segments (None = private temp
    #: directory, deleted after generation).
    index_dir: Optional[str] = None
    #: Programs profiled per batch on the streaming path; inside a batch
    #: executions run in program-hash order for cache affinity.
    profile_batch: int = 64
    #: Run Algorithm 2 on each report.
    diagnose: bool = True
    #: Worker threads for distributed execution (0 = in-process).
    workers: int = 0
    #: How distributed execution shards: ``thread`` (GIL-bound workers
    #: sharing the parent's caches) or ``process`` (shared-nothing
    #: forked shards booting from a shared-memory snapshot, with a
    #: work-stealing dispatcher and a two-tier sender cache).
    shard_mode: str = "thread"
    #: Prune candidate pairs the static analyzer proves disjoint
    #: (see repro.analysis.prefilter) before clustering.
    static_prefilter: bool = False
    #: Memoize post-sender machine state (segmented delta per sender)
    #: so test cases sharing a sender restore it instead of re-running
    #: it; off falls back to re-executing every sender.
    sender_cache: bool = True
    #: Byte budget for memoized post-sender deltas (LRU beyond it).
    sender_cache_bytes: int = DEFAULT_SENDER_CACHE_BYTES
    #: Chaos fault plan (None = no injection).  When set, the plan is
    #: threaded through every layer — machines, caches, cluster — and
    #: the campaign degrades gracefully instead of aborting: a test case
    #: whose retries are exhausted is recorded as ``infra_failed``.
    faults: Optional[FaultPlan] = None
    #: Durable result store root (None = no persistence).  When set the
    #: campaign appends every landed pair outcome to a write-ahead
    #: journal under ``store_dir/<campaign-id>/`` and publishes the
    #: final result document there — see ``docs/CAMPAIGN_STORE.md``.
    store_dir: Optional[str] = None
    #: Resume the campaign whose fingerprint matches this config from
    #: its journal in ``store_dir``: already-journaled pairs are
    #: restored instead of re-executed, in-flight pairs re-run.
    resume: bool = False
    #: Heartbeat watchdog timeout in seconds for distributed execution:
    #: a worker (thread mode) or shard (process mode) silent — or stuck
    #: on one job — longer than this is written off as dead and its job
    #: re-queued.  None disables the watchdog.
    hang_timeout: Optional[float] = None
    #: Self-healing retry policy (per-cause budgets, backoff, poison
    #: quarantine) for distributed execution.  None keeps the flat
    #: ``faults.max_job_retries`` budget — except when ``store_dir`` is
    #: set, which enables a default policy so quarantine decisions can
    #: be journaled.
    retry_policy: Optional[RetryPolicy] = None
    #: Controlled-interleaving exploration (docs/SCHEDULING.md): run a
    #: bounded, deterministically replayable schedule set for every
    #: sequentially-clean case and report cases any schedule diverges
    #: on.  Off by default — sequential campaigns are byte-identical to
    #: the pre-scheduling pipeline.
    interleave: bool = False
    #: Schedule strategy: ``pct`` | ``sys`` | ``rand``.
    schedule_strategy: str = STRATEGY_PCT
    #: Schedules explored per selected case.
    schedule_budget: int = 24
    schedule_seed: int = 11
    #: PCT preemption-change points / systematic preemption bound.
    schedule_depth: int = 3
    #: Preemption granularity: ``kfunc`` | ``syscall``.
    schedule_points: str = GRANULARITY_KFUNC
    #: Explore only cases matching the top-N ranked R0/R1 race-candidate
    #: pairs from the static analyzer (0 = explore every case).
    schedule_pairs: int = 0


@dataclass
class CampaignStats:
    """Per-stage counters; the raw material of Tables 4-6 and §6.5."""

    corpus_size: int = 0
    profile_runs: int = 0
    profile_seconds: float = 0.0
    analysis_seconds: float = 0.0
    flow_count: int = 0
    cluster_count: int = 0
    overlap_addresses: int = 0
    cases_total: int = 0
    cases_executed: int = 0
    execution_seconds: float = 0.0
    #: How the execution stage actually ran: ``in-process`` (workers=0)
    #: or the configured shard mode, plus the resolved pool size.
    shard_mode: str = "in-process"
    execution_workers: int = 0
    #: Work-stealing dispatcher telemetry (process mode only).
    steals_attempted: int = 0
    steals_granted: int = 0
    jobs_stolen: int = 0
    shards_spawned: int = 0
    shards_died: int = 0
    #: Shared-memory segment store telemetry (process mode only).
    shm_segments: int = 0
    shm_bytes: int = 0
    #: Table 5 counters.
    initial_reports: int = 0
    after_nondet: int = 0
    after_resource: int = 0
    nondet_runs: int = 0
    diagnosis_reruns: int = 0
    diagnosis_seconds: float = 0.0
    outcomes: Dict[str, int] = field(default_factory=dict)
    #: §6.5 restore telemetry, summed over every machine the campaign
    #: booted (main + profiling workers + execution workers).
    restore_count: int = 0
    full_restores: int = 0
    segmented_restores: int = 0
    segments_restored: int = 0
    segments_skipped: int = 0
    restore_seconds: float = 0.0
    #: Restore time attributed to each pipeline stage.
    profile_restore_seconds: float = 0.0
    execution_restore_seconds: float = 0.0
    diagnosis_restore_seconds: float = 0.0
    #: Shared-cache effectiveness (receiver-alone baselines, §4.3.2
    #: non-determinism verdicts).
    baseline_hits: int = 0
    baseline_misses: int = 0
    nondet_cache_hits: int = 0
    nondet_cache_misses: int = 0
    #: Sender-state memoization effectiveness: cache hits serve a test
    #: case by restoring base + post-sender delta instead of re-running
    #: the sender; prefix reuses are diagnosis re-runs served from a
    #: memoized sender prefix state (Algorithm 2).
    sender_cache_hits: int = 0
    sender_cache_misses: int = 0
    #: Hits served from the shared shm tier (process mode): another
    #: shard executed the sender first.  A subset of the hits above.
    sender_cache_shared_hits: int = 0
    sender_cache_evictions: int = 0
    sender_cache_bytes: int = 0
    sender_cache_entries: int = 0
    #: Bytes held per publishing worker ("main" = the in-process
    #: machine, "worker-N" = cluster worker N) — the --cache-report view.
    sender_cache_bytes_by_owner: Dict[str, int] = field(default_factory=dict)
    diagnosis_prefix_reuses: int = 0
    #: Profile-store telemetry (zero unless profile_dir is set).
    profile_store_hits: int = 0
    profile_store_misses: int = 0
    profile_store_entries_written: int = 0
    profile_store_bytes_written: int = 0
    #: Columnar pairing-index telemetry (zero on the memory backend).
    index_run_segments: int = 0
    index_bytes: int = 0
    index_points: int = 0
    #: Static pre-filter telemetry (zero unless static_prefilter is on).
    prefilter_pairs_total: int = 0
    prefilter_pairs_pruned: int = 0
    prefilter_precision: float = 0.0
    prefilter_recall: float = 0.0
    #: Chaos telemetry (all zero/empty unless a fault plan was set):
    #: per-site injected/recovered/infra-failed counts, the number of
    #: test cases that degraded to ``infra_failed``, and how many resets
    #: needed a recovery restore.
    faults_injected: Dict[str, int] = field(default_factory=dict)
    faults_recovered: Dict[str, int] = field(default_factory=dict)
    faults_infra: Dict[str, int] = field(default_factory=dict)
    #: Injections settled by poison-pair quarantine, per site.
    faults_poisoned: Dict[str, int] = field(default_factory=dict)
    infra_failed_cases: int = 0
    recovery_restores: int = 0
    #: Campaign-store telemetry (all zero/empty unless store_dir set).
    campaign_id: str = ""
    resumed_cases: int = 0
    poisoned_cases: int = 0
    journal_records_replayed: int = 0
    journal_torn_bytes: int = 0
    journal_fsync_degraded: int = 0
    #: Workers/shards the heartbeat watchdog wrote off as hung.
    worker_hangs: int = 0
    #: Controlled-interleaving telemetry (zero unless interleave is on):
    #: schedules executed across all explored cases, and how many
    #: reports were witnessed only under interleaving.
    schedules_executed: int = 0
    interleaved_reports: int = 0

    def prefilter_pruned_rate(self) -> float:
        if not self.prefilter_pairs_total:
            return 0.0
        return self.prefilter_pairs_pruned / self.prefilter_pairs_total

    def executions_per_second(self) -> float:
        if self.execution_seconds <= 0:
            return 0.0
        return self.cases_executed / self.execution_seconds

    def baseline_hit_rate(self) -> float:
        total = self.baseline_hits + self.baseline_misses
        return self.baseline_hits / total if total else 0.0

    def nondet_cache_hit_rate(self) -> float:
        total = self.nondet_cache_hits + self.nondet_cache_misses
        return self.nondet_cache_hits / total if total else 0.0

    def sender_cache_hit_rate(self) -> float:
        total = self.sender_cache_hits + self.sender_cache_misses
        return self.sender_cache_hits / total if total else 0.0

    def segments_skipped_rate(self) -> float:
        """Fraction of snapshot segments a reset did *not* have to restore."""
        total = self.segments_restored + self.segments_skipped
        return self.segments_skipped / total if total else 0.0

    def faults_injected_total(self) -> int:
        return sum(self.faults_injected.values())

    def faults_recovered_total(self) -> int:
        return sum(self.faults_recovered.values())

    def faults_infra_total(self) -> int:
        return sum(self.faults_infra.values())

    def faults_poisoned_total(self) -> int:
        return sum(self.faults_poisoned.values())

    def faults_accounted(self) -> bool:
        """The chaos invariant, per site:
        ``injected == recovered + infra_failed + poisoned``."""
        sites = set(self.faults_injected) | set(self.faults_recovered) \
            | set(self.faults_infra) | set(self.faults_poisoned)
        return all(
            self.faults_injected.get(site, 0)
            == self.faults_recovered.get(site, 0)
            + self.faults_infra.get(site, 0)
            + self.faults_poisoned.get(site, 0)
            for site in sites
        )

    def absorb_machine(self, machine_stats: MachineStats,
                       stage: str = "") -> None:
        """Fold one machine's restore counters into the campaign totals."""
        self.restore_count += machine_stats.restores
        self.full_restores += machine_stats.full_restores
        self.segmented_restores += machine_stats.segmented_restores
        self.segments_restored += machine_stats.segments_restored
        self.segments_skipped += machine_stats.segments_skipped
        self.restore_seconds += machine_stats.restore_seconds
        self.recovery_restores += machine_stats.recovery_restores
        if stage == "profile":
            self.profile_restore_seconds += machine_stats.restore_seconds
        elif stage == "execution":
            self.execution_restore_seconds += machine_stats.restore_seconds
        elif stage == "diagnosis":
            self.diagnosis_restore_seconds += machine_stats.restore_seconds

    def absorb_profile_store(self, store) -> None:
        """Fold one :class:`ProfileStore`'s counters into the totals."""
        self.profile_store_hits += store.hits
        self.profile_store_misses += store.misses
        self.profile_store_entries_written += store.entries_written
        self.profile_store_bytes_written += store.bytes_written


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    config: CampaignConfig
    stats: CampaignStats
    generation: GenerationResult
    reports: List[TestReport]
    groups: ReportGroups

    def labels(self) -> Dict[str, List[TestReport]]:
        """Oracle label -> reports witnessing it (evaluation only).

        A report can witness several bugs and thus appear under several
        labels (see :func:`repro.core.oracle.classify_all`).
        """
        labelled: Dict[str, List[TestReport]] = {}
        for report in self.reports:
            for label in classify_all(report):
                labelled.setdefault(label, []).append(report)
        return labelled

    def bugs_found(self) -> Set[str]:
        """The injected-bug labels witnessed by at least one report."""
        return {
            label for label in self.labels()
            if label not in (FALSE_POSITIVE, UNDER_INVESTIGATION)
        }


class Kit:
    """The KIT testing framework, end to end."""

    def __init__(self, config: Optional[CampaignConfig] = None):
        self.config = config or CampaignConfig()
        self._retired_owners: Set[int] = set()
        #: Open campaign-store handle while a stored run is in flight.
        self._store_handle: Optional[CampaignHandle] = None
        #: Shared schedule policy when interleaving is on (built once
        #: per run; every detector's explorer references it).
        self._sched_policy: Optional[SchedulePolicy] = None

    # -- pipeline ------------------------------------------------------------

    def run(self, progress: Optional[Progress] = None) -> CampaignResult:
        config = self.config
        plan = config.faults
        if plan is not None and config.machine.fault_plan is not plan:
            # Thread the plan into every machine the campaign boots —
            # the in-process one and each cluster worker's (they all
            # clone this config).
            config = replace(config,
                             machine=replace(config.machine,
                                             fault_plan=plan))
            self.config = config
        stats = CampaignStats()
        say = progress or (lambda message: None)
        #: Worker ids retired by the execution stage (dead workers whose
        #: cache entries were invalidated) — the owner-invariant audit
        #: checks no live cache entry still carries one of these tags.
        self._retired_owners: Set[int] = set()

        corpus = config.corpus if config.corpus is not None else build_corpus(
            config.corpus_size, seed=config.corpus_seed)
        stats.corpus_size = len(corpus)
        self._sched_policy = self._build_schedule_policy()
        self._open_store(stats)
        try:
            return self._run_stages(config, plan, stats, corpus, say)
        finally:
            handle = self._store_handle
            if handle is not None:
                stats.journal_fsync_degraded = handle.journal.fsync_degraded
                handle.close()
                self._store_handle = None

    def _run_stages(self, config: CampaignConfig, plan: Optional[FaultPlan],
                    stats: CampaignStats, corpus: List[TestProgram],
                    say: Progress) -> CampaignResult:
        machine = Machine(config.machine)
        # Caches shared by every detector this campaign builds — the
        # sequential one, each worker's, and the diagnosis one.  Both
        # are keyed by snapshot-relative program state, so a result
        # computed on any machine is valid on all of them.
        baselines = BaselineCache(faults=plan)
        nondet_store = NondetStore(config.nondet_dir, faults=plan)
        sender_states = SenderStateCache(
            max_bytes=config.sender_cache_bytes,
            faults=plan) if config.sender_cache else None

        generation = self._generate(machine, corpus, stats, say)
        cases = generation.test_cases
        if config.max_test_cases is not None:
            cases = cases[:config.max_test_cases]
        stats.cases_total = len(cases)

        say(f"executing {len(cases)} test cases ({generation.strategy})")
        results = self._execute(machine, cases, stats, baselines,
                                nondet_store, sender_states)

        reports = [r.report for r in results if r.report is not None]
        stats.initial_reports = sum(
            1 for r in results if r.raw_diff_count > 0 or r.outcome is Outcome.REPORT
        )
        stats.after_nondet = sum(
            1 for r in results
            if r.outcome in (Outcome.FILTERED_RESOURCE, Outcome.REPORT)
        )
        stats.after_resource = len(reports)
        for result in results:
            key = result.outcome.value
            stats.outcomes[key] = stats.outcomes.get(key, 0) + 1
            stats.schedules_executed += result.schedules_run
        stats.poisoned_cases = stats.outcomes.get(Outcome.POISONED.value, 0)
        stats.interleaved_reports = sum(
            1 for report in reports if report.culprit_schedule is not None)

        if plan is not None:
            # Sweep mis-tagged entries before diagnosis: a stale tag may
            # hide an entry published by a worker that later died, and
            # diagnosis must never consume results owner-invalidation
            # could not reach.
            baselines.purge_stale()
            nondet_store.purge_stale()
            if sender_states is not None:
                sender_states.purge_stale()

        if config.diagnose and reports:
            say(f"diagnosing {len(reports)} reports (Algorithm 2)")
            self._diagnose(machine, reports, stats, baselines, nondet_store,
                           sender_states)

        stats.baseline_hits = baselines.hits
        stats.baseline_misses = baselines.misses
        stats.nondet_cache_hits = nondet_store.hits
        stats.nondet_cache_misses = nondet_store.misses

        if plan is not None:
            # Repair sweep + audit: purge mis-tagged cache entries (each
            # purge resolves its stale-owner injection), then prove no
            # live entry is owned by a retired worker or a stale tag.
            baselines.purge_stale()
            nondet_store.purge_stale()
            caches = dict(baselines=baselines, nondet=nondet_store)
            if sender_states is not None:
                sender_states.purge_stale()
                caches["sender_states"] = sender_states
            # Re-run owner invalidation for every retired worker before
            # the audit: an abandoned (hung) thread the watchdog wrote
            # off cannot be killed, only flagged — it may have published
            # one last entry after its owner id was first invalidated.
            for owner in self._retired_owners:
                baselines.invalidate_owner(owner)
                nondet_store.invalidate_owner(owner)
                if sender_states is not None:
                    sender_states.invalidate_owner(owner)
            verify_owner_invariant(self._retired_owners, **caches)
            (stats.faults_injected, stats.faults_recovered,
             stats.faults_infra,
             stats.faults_poisoned) = plan.stats.snapshot()
            stats.infra_failed_cases = stats.outcomes.get(
                Outcome.INFRA_FAILED.value, 0)

        if sender_states is not None:
            # Captured after the repair sweep so the byte/entry figures
            # describe the cache's settled end-of-campaign state.
            stats.sender_cache_hits = sender_states.hits
            stats.sender_cache_misses = sender_states.misses
            stats.sender_cache_shared_hits = sender_states.shared_hits
            stats.sender_cache_evictions = sender_states.evictions
            stats.sender_cache_bytes = sender_states.bytes_held
            stats.sender_cache_entries = len(sender_states)
            stats.sender_cache_bytes_by_owner = {
                ("main" if owner is None else f"worker-{owner}"): held
                for owner, held in sorted(
                    sender_states.bytes_by_owner().items(),
                    key=lambda item: (item[0] is not None, item[0]))
            }

        groups = aggregate(reports)
        say(f"done: {len(reports)} reports, "
            f"{groups.agg_rs_count} AGG-RS / {groups.agg_r_count} AGG-R groups")
        result = CampaignResult(config, stats, generation, reports, groups)
        if self._store_handle is not None:
            self._finish_store(result, stats, say)
        return result

    # -- campaign store --------------------------------------------------------

    def _open_store(self, stats: CampaignStats) -> None:
        config = self.config
        if config.store_dir is None:
            return
        store = CampaignStore(config.store_dir)
        handle = store.open_campaign(summarize_config(config),
                                     resume=config.resume,
                                     faults=config.faults)
        self._store_handle = handle
        stats.campaign_id = handle.campaign_id
        stats.journal_records_replayed = handle.resume_state.records
        stats.journal_torn_bytes = handle.resume_state.torn_bytes

    def _finish_store(self, result: CampaignResult, stats: CampaignStats,
                      say: Progress) -> None:
        """Seal the campaign: end record, then the result document."""
        from .persist import campaign_to_dict

        handle = self._store_handle
        infra = stats.outcomes.get(Outcome.INFRA_FAILED.value, 0)
        poisoned = stats.outcomes.get(Outcome.POISONED.value, 0)
        accounting = {
            "cases_total": stats.cases_total,
            "completed": stats.cases_total - infra - poisoned,
            "infra_failed": infra,
            "poisoned": poisoned,
            "resumed": stats.resumed_cases,
            "worker_hangs": stats.worker_hangs,
            "reports": len(result.reports),
            "agg_rs": result.groups.agg_rs_count,
            "bugs": sorted(result.bugs_found()),
        }
        handle.journal.append({"t": RECORD_END, "accounting": accounting})
        path = handle.write_result(campaign_to_dict(result))
        say(f"campaign {handle.campaign_id}: "
            f"{accounting['completed']}/{stats.cases_total} completed, "
            f"{infra} infra_failed, {poisoned} poisoned "
            f"({stats.resumed_cases} resumed); result at {path}")

    def _effective_retry_policy(self) -> Optional[RetryPolicy]:
        if self.config.retry_policy is not None:
            return self.config.retry_policy
        if self.config.store_dir is not None:
            # Stored campaigns default to self-healing supervision so
            # quarantine decisions exist to journal.
            return RetryPolicy()
        return None

    @staticmethod
    def _case_journal_key(case: TestCase) -> str:
        return case_key(case.sender.hash_hex, case.receiver.hash_hex)

    def _journal_detection(self, detection: DetectionResult) -> None:
        """Commit one landed outcome to the write-ahead journal."""
        handle = self._store_handle
        if handle is None:
            return
        report_data = (encode_report(detection.report)
                       if detection.report is not None else None)
        handle.journal.append_case(self._case_journal_key(detection.case),
                                   detection.outcome.value,
                                   detection.raw_diff_count, report_data)

    def _journal_job_result(self, job, result) -> None:
        """Supervisor on_result hook: journal each committed result."""
        if isinstance(result.outcome, DetectionResult):
            self._journal_detection(result.outcome)

    def _journal_job_failure(self, job, settlement: str) -> None:
        """Supervisor on_job_failure hook: attempts and quarantines.

        Worker deaths become ``attempt`` records (they seed quarantine
        counts across resumed runs); a ``poisoned`` settlement is
        journaled durably so the pair is never retried again.
        """
        handle = self._store_handle
        if handle is None:
            return
        key = self._case_journal_key(job.payload)
        if job.death_attributed:
            handle.journal.append_attempt(key, [job.last_cause])
        if settlement == "poisoned":
            handle.journal.append_poisoned(
                key, job.worker_deaths, describe_failures(job.site_failures))

    def _prior_deaths(self, scheduled: List[TestCase]
                      ) -> Optional[Dict[int, int]]:
        """Journal-replayed worker deaths, keyed by this run's job ids."""
        handle = self._store_handle
        if handle is None or not handle.resume_state.deaths:
            return None
        deaths = handle.resume_state.deaths
        mapping: Dict[int, int] = {}
        for job_id, case in enumerate(scheduled):
            count = deaths.get(self._case_journal_key(case), 0)
            if count:
                mapping[job_id] = count
        return mapping or None

    def _partition_resume(self, cases: List[TestCase], stats: CampaignStats
                          ) -> tuple:
        """Split cases into journal-restored results and work to run.

        Returns ``(results, todo_map, todo)``: *results* has a restored
        :class:`DetectionResult` at each terminal pair's index and None
        elsewhere; *todo* lists the cases still to execute and
        *todo_map* their indices in the original order.
        """
        results: List[Optional[DetectionResult]] = [None] * len(cases)
        handle = self._store_handle
        state = handle.resume_state if handle is not None else None
        if state is None or (not state.cases and not state.poisoned):
            return results, list(range(len(cases))), list(cases)
        todo_map: List[int] = []
        todo: List[TestCase] = []
        for index, case in enumerate(cases):
            key = self._case_journal_key(case)
            record = state.cases.get(key)
            if record is not None:
                results[index] = self._restore_detection(case, record)
                stats.resumed_cases += 1
                continue
            if key in state.poisoned:
                # Quarantine is durable: a poison pair is never offered
                # to a worker again, in any resumed run.
                results[index] = DetectionResult(case, Outcome.POISONED)
                stats.resumed_cases += 1
                continue
            todo_map.append(index)
            todo.append(case)
        return results, todo_map, todo

    @staticmethod
    def _restore_detection(case: TestCase,
                           record: Dict[str, Any]) -> DetectionResult:
        report = None
        if record.get("report") is not None:
            # Alias the freshly regenerated case object so aggregation
            # cannot tell a restored report from a fresh one.
            report = decode_report(record["report"], case=case)
        return DetectionResult(case, Outcome(record["outcome"]),
                               report=report,
                               raw_diff_count=record.get("raw", 0))

    # -- stages ----------------------------------------------------------------

    def _generate(self, machine: Machine, corpus: List[TestProgram],
                  stats: CampaignStats, say: Progress) -> GenerationResult:
        config = self.config
        if config.strategy.lower() == "rand":
            budget = config.rand_budget or len(corpus)
            generator = TestCaseGenerator(corpus, None, config.spec)
            say(f"RAND: sampling {budget} random pairs")
            return generator.generate_random(budget, seed=config.rand_seed)

        columnar = config.index_backend == "columnar"
        say(f"profiling {len(corpus)} programs (4 runs each"
            + (f", {config.workers} workers)" if config.workers > 0 else ")"))
        start = time.monotonic()
        before = machine.stats.copy()
        index = None
        if config.workers > 0:
            profiles, profilers, worker_machines = profile_corpus_distributed(
                config.machine, corpus, config.workers,
                profile_dir=config.profile_dir, faults=config.faults)
            stats.profile_runs = sum(p.runs_executed for p in profilers)
            for worker_profiler in profilers:
                store = getattr(worker_profiler, "store", None)
                if store is not None:
                    stats.absorb_profile_store(store)
            for worker_machine in worker_machines:
                stats.absorb_machine(worker_machine.stats, stage="profile")
            if columnar:
                index = ColumnarAccessIndex.build(iter(profiles), config.spec,
                                                  directory=config.index_dir)
        else:
            if config.profile_dir is not None:
                from .profile_store import CachingProfiler

                profiler = CachingProfiler(machine, config.profile_dir)
            else:
                profiler = Profiler(machine)
            # Profiles feed generation, so a fault mid-profile retries
            # the whole (pure) profiling run rather than degrading —
            # a skipped profile would change the generated case set.
            retrying = _FaultRetryProfiler(profiler, config.faults)
            if columnar:
                # Streaming path: profiles flow batch-wise (hash-ordered
                # inside a batch for cache affinity) straight into the
                # on-disk index — the profile list is never materialized.
                profiles = None
                index = ColumnarAccessIndex.build(
                    iter_profiles_batched(retrying, corpus,
                                          batch_size=config.profile_batch),
                    config.spec, directory=config.index_dir)
            else:
                profiles = [retrying.profile(program, i)
                            for i, program in enumerate(corpus)]
            stats.profile_runs = profiler.runs_executed
            store = getattr(profiler, "store", None)
            if store is not None:
                stats.absorb_profile_store(store)
            stats.absorb_machine(machine.stats.since(before), stage="profile")
        stats.profile_seconds = time.monotonic() - start
        if index is not None:
            stats.index_run_segments = index.run_segments
            stats.index_bytes = index.bytes_on_disk()
            stats.index_points = index.write_points + index.read_points

        start = time.monotonic()
        prefilter = None
        if config.static_prefilter:
            from ..analysis.prefilter import StaticPreFilter

            say("building static pre-filter (access-map extraction)")
            prefilter = StaticPreFilter(bugs=config.machine.bugs,
                                        spec=config.spec)
        generator = TestCaseGenerator(corpus, profiles, config.spec,
                                      prefilter=prefilter, index=index)
        try:
            result = generator.generate(strategy_by_name(config.strategy),
                                        max_clusters=config.max_test_cases,
                                        rep_seed=config.rep_seed)
            stats.analysis_seconds = time.monotonic() - start
            stats.flow_count = result.flow_count
            stats.cluster_count = result.cluster_count
            stats.overlap_addresses = result.overlap_addresses
            if result.prefilter is not None:
                stats.prefilter_pairs_total = result.prefilter.pairs_total
                stats.prefilter_pairs_pruned = result.prefilter.pairs_pruned
                evaluation = prefilter.evaluate(corpus, generator.index)
                stats.prefilter_precision = evaluation.precision()
                stats.prefilter_recall = evaluation.recall()
        finally:
            if index is not None and config.index_dir is None:
                index.close()  # temp-owned run segments
        return result

    def _execute(self, machine: Machine, cases: List[TestCase],
                 stats: CampaignStats, baselines: BaselineCache,
                 nondet_store: NondetStore,
                 sender_states: Optional[SenderStateCache]
                 ) -> List[DetectionResult]:
        config = self.config
        start = time.monotonic()
        before = machine.stats.copy()
        results, todo_map, todo = self._partition_resume(cases, stats)
        if config.workers > 0:
            stats.shard_mode = config.shard_mode
            stats.execution_workers = min(config.workers, max(1, len(todo)))
            if not todo:
                fresh: List[DetectionResult] = []
            elif config.shard_mode == "process":
                fresh = self._execute_process(machine, todo, stats,
                                              baselines, nondet_store,
                                              sender_states)
            else:
                fresh = self._execute_distributed(todo, stats, baselines,
                                                  nondet_store,
                                                  sender_states)
        else:
            detector = self._make_detector(machine, nondet_store, baselines,
                                           sender_states)
            fresh = []
            for index, case in enumerate(todo):
                outcome = self._check_with_recovery(detector, case, index)
                # Commit as it lands: a crash after this append never
                # re-executes the pair.
                self._journal_detection(outcome)
                fresh.append(outcome)
            stats.cases_executed = detector.runner.cases_executed
            stats.nondet_runs = detector.nondet.runs_executed
            stats.absorb_machine(machine.stats.since(before),
                                 stage="execution")
        for position, outcome in zip(todo_map, fresh):
            results[position] = outcome
        if self._store_handle is not None:
            # Post-merge sweep: journal outcomes that never reached a
            # commit hook (retry-exhausted infra, poisoned settlements).
            # Appends deduplicate by key, so re-offering results that
            # already committed is a no-op.
            for outcome in results:
                if outcome is not None:
                    self._journal_detection(outcome)
        stats.execution_seconds = time.monotonic() - start
        return results

    def _check_with_recovery(self, detector: Detector, case: TestCase,
                             index: int) -> DetectionResult:
        """Check one case, absorbing injected faults within the budget.

        Every check is a pure function of (case, snapshot): a faulted
        attempt is abandoned and re-run from a fresh restore.  Exhausted
        retries degrade to an ``infra_failed`` outcome — the case
        carries no verdict, but the campaign completes.
        """
        try:
            return call_with_fault_retries(self.config.faults,
                                           detector.check_case, case,
                                           context=f"case {index}")
        except FaultRetriesExhausted:
            return DetectionResult(case, Outcome.INFRA_FAILED)

    def _execute_distributed(self, cases: List[TestCase],
                             stats: CampaignStats, baselines: BaselineCache,
                             nondet_store: NondetStore,
                             sender_states: Optional[SenderStateCache]
                             ) -> List[DetectionResult]:
        config = self.config
        # One detector per *worker* (not per machine object: machine ids
        # can be recycled by the allocator after a worker exits).
        detectors: Dict[int, Detector] = {}
        detectors_lock = threading.Lock()

        def case_runner(machine: Machine, case: TestCase) -> DetectionResult:
            with detectors_lock:
                detector = detectors.get(machine.cluster_worker_id)
                if detector is None:
                    detector = self._make_detector(machine, nondet_store,
                                                   baselines, sender_states)
                    detectors[machine.cluster_worker_id] = detector
            try:
                return call_with_fault_retries(config.faults,
                                               detector.check_case, case,
                                               context="distributed case")
            except FaultRetriesExhausted:
                return DetectionResult(case, Outcome.INFRA_FAILED)

        # Two-level affinity schedule: the sender-major level batches
        # every case sharing a sender consecutively (the first case of
        # a batch populates the sender-state cache, the rest restore
        # the memoized delta); the receiver-minor level clusters shared
        # receivers for the baseline and non-determinism caches.  Ties
        # break by original index inside affinity_order, so equal-hash
        # cases can never be reordered between runs; results are mapped
        # back through the inverse permutation, so callers still see
        # them in the original case order.
        order = affinity_order([(case.sender.hash_hex,
                                 case.receiver.hash_hex) for case in cases])
        scheduled = [cases[i] for i in order]
        worker_machines: List[Machine] = []

        def release_dead_worker(worker_id: int) -> None:
            # A dead worker may have published cache entries computed on
            # a machine left in an undefined state; drop them so the
            # surviving workers (and the diagnosis stage) recompute.
            self._retired_owners.add(worker_id)
            baselines.invalidate_owner(worker_id)
            nondet_store.invalidate_owner(worker_id)
            if sender_states is not None:
                sender_states.invalidate_owner(worker_id)

        plan = config.faults
        stored = self._store_handle is not None
        hung: List[int] = []
        job_results = run_distributed(config.machine, scheduled, case_runner,
                                      workers=config.workers,
                                      machines_out=worker_machines,
                                      on_worker_death=release_dead_worker,
                                      faults=plan,
                                      max_job_retries=(plan.max_job_retries
                                                       if plan else 0),
                                      strict=(plan is None),
                                      retry_policy=(
                                          self._effective_retry_policy()),
                                      hang_timeout=config.hang_timeout,
                                      on_result=(self._journal_job_result
                                                 if stored else None),
                                      on_job_failure=(
                                          self._journal_job_failure
                                          if stored else None),
                                      prior_deaths=(
                                          self._prior_deaths(scheduled)),
                                      hung_out=hung)
        stats.worker_hangs += len(hung)
        results = self._merge_job_results(job_results, order, scheduled,
                                          len(cases))
        for worker_machine in worker_machines:
            stats.absorb_machine(worker_machine.stats, stage="execution")
        with detectors_lock:
            stats.cases_executed = sum(d.runner.cases_executed
                                       for d in detectors.values())
            stats.nondet_runs = sum(d.nondet.runs_executed
                                    for d in detectors.values())
        return results

    def _merge_job_results(self, job_results, order: List[int],
                           scheduled: List[TestCase],
                           case_count: int) -> List[DetectionResult]:
        """Inverse-permutation merge back to original case order.

        Independent of which worker (thread or process shard, stolen
        range or not) executed each job: job ids index the affinity
        schedule, and the inverse permutation restores caller order.
        """
        plan = self.config.faults
        results: List[Optional[DetectionResult]] = [None] * case_count
        for job in job_results:
            if job.poisoned:
                # Quarantined poison pair: no verdict about the kernel,
                # but the campaign completes and the books balance.
                results[order[job.job_id]] = DetectionResult(
                    scheduled[job.job_id], Outcome.POISONED)
                continue
            if job.error is not None:
                if plan is not None:
                    # Retries exhausted under chaos: the case degrades
                    # to infra_failed instead of failing the campaign.
                    results[order[job.job_id]] = DetectionResult(
                        scheduled[job.job_id], Outcome.INFRA_FAILED)
                    continue
                raise RuntimeError(
                    f"worker failure on job {job.job_id}: {job.error}")
            results[order[job.job_id]] = job.outcome
        return results  # type: ignore[return-value]

    def _execute_process(self, machine: Machine, cases: List[TestCase],
                         stats: CampaignStats, baselines: BaselineCache,
                         nondet_store: NondetStore,
                         sender_states: Optional[SenderStateCache]
                         ) -> List[DetectionResult]:
        """Execution on shared-nothing process shards.

        The parent publishes the base snapshot into a shared-memory
        segment; every forked shard boots its machine straight from the
        mapped bytes and runs its granted (and stolen) job ranges.  The
        forked copies of the campaign caches become each shard's local
        tier — the sender cache additionally reads through to the
        shared :class:`DeltaStore`, so one shard's post-sender delta
        serves every sibling.  Telemetry and fault-counter deltas
        travel back in the shard protocol's retirement messages; the
        segment store is swept clean no matter how shards die.
        """
        config = self.config
        plan = config.faults
        detectors: Dict[int, Detector] = {}
        detectors_lock = threading.Lock()
        store = SegmentStore()
        delta_store = DeltaStore(store) if sender_states is not None else None
        if sender_states is not None:
            sender_states.backing = delta_store
        shared = SharedSnapshot.publish(store, machine.snapshot)

        def boot() -> Machine:
            # Runs inside the freshly forked shard process.
            return Machine(config.machine, shared_snapshot=shared.attach())

        def case_runner(worker_machine: Machine,
                        case: TestCase) -> DetectionResult:
            with detectors_lock:
                detector = detectors.get(worker_machine.cluster_worker_id)
                if detector is None:
                    detector = self._make_detector(worker_machine,
                                                   nondet_store, baselines,
                                                   sender_states)
                    detectors[worker_machine.cluster_worker_id] = detector
            try:
                return call_with_fault_retries(plan, detector.check_case,
                                               case, context="sharded case")
            except FaultRetriesExhausted:
                return DetectionResult(case, Outcome.INFRA_FAILED)

        def settle_books() -> None:
            # Shard-local stale-owner repairs must land before the final
            # stats delta ships, or a crashed shard's books arrive
            # unbalanced.
            baselines.purge_stale()
            nondet_store.purge_stale()
            if sender_states is not None:
                sender_states.purge_stale()

        def shard_telemetry(worker_machine: Machine) -> Dict[str, Any]:
            # Runs in the shard at clean retirement.  Every counter here
            # started at the parent's pre-fork value (all zero during
            # execution), so the values ship as absolute and merge by
            # addition.
            with detectors_lock:
                live = list(detectors.values())
            data: Dict[str, Any] = {
                "machine": worker_machine.stats,
                "cases_executed": sum(d.runner.cases_executed
                                      for d in live),
                "nondet_runs": sum(d.nondet.runs_executed for d in live),
                "baselines": (baselines.hits, baselines.misses),
                "nondet": (nondet_store.hits, nondet_store.misses),
            }
            if sender_states is not None:
                data["sender"] = (sender_states.hits, sender_states.misses,
                                  sender_states.shared_hits,
                                  sender_states.evictions)
            return data

        def release_dead_worker(worker_id: int) -> None:
            # Parent-tier parity with thread mode: the audit set and the
            # parent caches (used later by diagnosis) must never retain
            # a dead worker's entries.
            self._retired_owners.add(worker_id)
            baselines.invalidate_owner(worker_id)
            nondet_store.invalidate_owner(worker_id)
            if sender_states is not None:
                sender_states.invalidate_owner(worker_id)

        def retire_segments(names: List[str]) -> None:
            # The shared-tier owner invalidation: a dead shard's
            # published deltas may describe a corrupted machine, so
            # their names are unlinked — survivors' open mappings stay
            # valid (POSIX), but no shard can fetch them anew.
            for suffix in names:
                store.unlink(suffix)

        order = affinity_order([(case.sender.hash_hex,
                                 case.receiver.hash_hex) for case in cases])
        scheduled = [cases[i] for i in order]
        stored = self._store_handle is not None
        try:
            report = run_sharded(
                config.machine, scheduled, case_runner,
                workers=config.workers, boot=boot, faults=plan,
                max_job_retries=(plan.max_job_retries if plan else 0),
                strict=(plan is None),
                on_worker_death=release_dead_worker,
                on_owner_segments=retire_segments,
                telemetry_hook=shard_telemetry,
                published_names=(delta_store.take_published
                                 if delta_store is not None else None),
                flush_hook=settle_books,
                retry_policy=self._effective_retry_policy(),
                hang_timeout=config.hang_timeout,
                on_result=(self._journal_job_result if stored else None),
                on_job_failure=(self._journal_job_failure
                                if stored else None),
                prior_deaths=self._prior_deaths(scheduled))
        finally:
            if sender_states is not None:
                sender_states.backing = None
            stats.shm_segments = store.created
            stats.shm_bytes = store.created_bytes
            store.cleanup()
        stats.steals_attempted = report.steals_attempted
        stats.steals_granted = report.steals_granted
        stats.jobs_stolen = report.jobs_stolen
        stats.shards_spawned = report.shards_spawned
        stats.shards_died = report.shards_died
        stats.worker_hangs += len(report.hung_shards)
        results = self._merge_job_results(report.results, order, scheduled,
                                          len(cases))
        for data in report.telemetry:
            # Counters a killed shard never shipped are lost with it —
            # telemetry only, never correctness (its jobs re-ran
            # elsewhere and their results merged above).
            stats.absorb_machine(data["machine"], stage="execution")
            stats.cases_executed += data["cases_executed"]
            stats.nondet_runs += data["nondet_runs"]
            baselines.hits += data["baselines"][0]
            baselines.misses += data["baselines"][1]
            nondet_store.hits += data["nondet"][0]
            nondet_store.misses += data["nondet"][1]
            if sender_states is not None and "sender" in data:
                hits, misses, shared_hits, evictions = data["sender"]
                sender_states.hits += hits
                sender_states.misses += misses
                sender_states.shared_hits += shared_hits
                sender_states.evictions += evictions
        return results

    def _diagnose(self, machine: Machine, reports: List[TestReport],
                  stats: CampaignStats, baselines: BaselineCache,
                  nondet_store: NondetStore,
                  sender_states: Optional[SenderStateCache]) -> None:
        start = time.monotonic()
        before = machine.stats.copy()
        detector = self._make_detector(machine, nondet_store, baselines,
                                       sender_states)
        # The prefix memo rides on the same segmented-delta machinery as
        # the sender cache, so the sender_cache switch governs both.
        diagnoser = Diagnoser(detector,
                              prefix_memo=self.config.sender_cache)
        for index, report in enumerate(reports):
            if report.culprit_schedule is not None:
                # Algorithm 2 replays sender variants *sequentially*; an
                # interleaving-only report would just vanish under every
                # variant.  Its culprit evidence is the witnessing
                # schedule itself.
                continue
            try:
                call_with_fault_retries(self.config.faults,
                                        diagnoser.diagnose, report,
                                        context=f"diagnosis {index}")
            except FaultRetriesExhausted:
                # The report survives undiagnosed — diagnosis enriches a
                # report, it never decides whether one exists.
                continue
        stats.diagnosis_reruns = diagnoser.reruns
        stats.diagnosis_prefix_reuses = diagnoser.prefix_reuses
        stats.absorb_machine(machine.stats.since(before), stage="diagnosis")
        stats.diagnosis_seconds = time.monotonic() - start

    def _build_schedule_policy(self) -> Optional[SchedulePolicy]:
        config = self.config
        if not config.interleave:
            return None
        pair_names = None
        if config.schedule_pairs > 0:
            from ..analysis.accessmap import extract_access_map
            from ..analysis.races import find_race_candidates

            candidates = find_race_candidates(
                extract_access_map(config.machine.bugs))
            pair_names = ranked_pair_names(candidates, config.schedule_pairs)
        return SchedulePolicy(strategy=config.schedule_strategy,
                              budget=config.schedule_budget,
                              seed=config.schedule_seed,
                              depth=config.schedule_depth,
                              granularity=config.schedule_points,
                              pair_names=pair_names)

    def _make_detector(self, machine: Machine,
                       store: Optional[NondetStore] = None,
                       baselines: Optional[BaselineCache] = None,
                       sender_states: Optional[SenderStateCache] = None
                       ) -> Detector:
        config = self.config
        if store is None:
            store = NondetStore(config.nondet_dir)
        analyzer = NondetAnalyzer(machine, store=store,
                                  offsets=config.nondet_offsets)
        explorer = None
        if self._sched_policy is not None:
            explorer = ScheduleExplorer(machine, config.spec, analyzer,
                                        self._sched_policy)
        return Detector(machine, config.spec, analyzer, baselines=baselines,
                        sender_states=sender_states, explorer=explorer)
