"""Reproducing known historical namespace bugs (paper §6.2, Table 3).

"We evaluated the effectiveness of KIT in detecting known Linux
namespace isolation bugs… In total, we collected 7 known bugs, and KIT
was able to reproduce 5 of them."

Each scenario below boots the historical kernel containing exactly one
bug (via :func:`repro.kernel.bugs.known_bug_kernel`) and runs a KIT
campaign over a corpus that — like the paper's hand-written C
reproducers — contains programs exercising the relevant syscalls.  Two
scenarios are *expected to stay undetected*:

* **F** — ``/proc/net/nf_conntrack`` leaks other namespaces' entries,
  but the file is non-deterministic even without interference, so the
  non-determinism filter (correctly) suppresses the divergence.
* **G** — ``sock_diag`` matches unix sockets across namespaces, but
  witnessing it requires the sender's runtime-allocated inode, which a
  fixed receiver program cannot know.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..corpus.program import TestProgram
from ..corpus.seeds import seed_programs
from ..kernel.bugs import TABLE3_BUGS, known_bug_kernel
from ..kernel.kernel import KernelConfig
from ..vm.machine import ContainerConfig, MachineConfig, SENDER
from .pipeline import CampaignConfig, CampaignResult, Kit


@dataclass(frozen=True)
class KnownBugScenario:
    """One Table-3 (or §6.2) reproduction setup."""

    bug_id: str
    description: str
    sender_seeds: Tuple[str, ...]
    receiver_seeds: Tuple[str, ...]
    #: Paper's "CR syscall trace diff" column.
    expected_diff: str
    #: Whether functional interference testing can detect it (§6.2).
    detectable: bool = True
    #: Sender runs in the host mount namespace (Table 3's "(Host)").
    sender_on_host: bool = False


SCENARIOS: Dict[str, KnownBugScenario] = {
    "A": KnownBugScenario(
        "A", "Change prio using PRIO_USER / read prio of current process",
        sender_seeds=("prio_set_user",),
        receiver_seeds=("prio_get",),
        expected_diff="Value changes",
    ),
    "B": KnownBugScenario(
        "B", "Create network devices / listen on kobject uevent",
        sender_seeds=("netdev_add",),
        receiver_seeds=("uevent_listen",),
        expected_diff="Receive queue uevents",
    ),
    "C": KnownBugScenario(
        "C", "Setup IPVS / read /proc/net/ip_vs",
        sender_seeds=("ipvs_add",),
        receiver_seeds=("read_ip_vs",),
        expected_diff="Read IPVS information from CS",
    ),
    "D": KnownBugScenario(
        "D", "Set nf_conntrack_max / read nf_conntrack_max",
        sender_seeds=("conntrack_max_write",),
        receiver_seeds=("conntrack_max_read",),
        expected_diff="Value changes",
    ),
    "E": KnownBugScenario(
        "E", "(Host) create files in /tmp / read unmounted /tmp via io_uring",
        sender_seeds=("tmp_write",),
        receiver_seeds=("iouring_tmp_list", "getdents_tmp"),
        expected_diff="Observe newly created files",
        sender_on_host=True,
    ),
    "F": KnownBugScenario(
        "F", "Create conntrack entries / read /proc/net/nf_conntrack",
        sender_seeds=("udp_send",),
        receiver_seeds=("read_nf_conntrack",),
        expected_diff="(masked by inherent non-determinism)",
        detectable=False,
    ),
    "G": KnownBugScenario(
        "G", "Create unix socket / query sock_diag by runtime inode",
        sender_seeds=("unix_socket",),
        receiver_seeds=("unix_diag_probe",),
        expected_diff="(requires the sender's runtime resource ID)",
        detectable=False,
    ),
}

#: The Table-3 rows proper (F and G are §6.2 prose).
TABLE3_ROWS = ("A", "B", "C", "D", "E")


@dataclass
class KnownBugOutcome:
    """Result of one known-bug reproduction campaign."""

    scenario: KnownBugScenario
    kernel_version: str
    namespace: str
    detected: bool
    result: CampaignResult


def scenario_corpus(scenario: KnownBugScenario,
                    extra: Optional[List[TestProgram]] = None) -> List[TestProgram]:
    """The campaign corpus: the scenario's seeds plus optional filler."""
    seeds = seed_programs()
    corpus = [seeds[name] for name in scenario.sender_seeds]
    corpus += [seeds[name] for name in scenario.receiver_seeds]
    if extra:
        corpus += extra
    # Deduplicate while preserving order.
    unique: List[TestProgram] = []
    seen = set()
    for program in corpus:
        if program.hash_hex not in seen:
            seen.add(program.hash_hex)
            unique.append(program)
    return unique


def scenario_machine_config(scenario: KnownBugScenario) -> MachineConfig:
    __, version, __ = TABLE3_BUGS[scenario.bug_id]
    sender = ContainerConfig(SENDER)
    if scenario.sender_on_host:
        sender = sender.host_mount_ns()
    return MachineConfig(
        kernel=KernelConfig(version=version),
        bugs=known_bug_kernel(scenario.bug_id),
        sender=sender,
    )


def reproduce_known_bug(bug_id: str, strategy: str = "df-ia",
                        extra_corpus: Optional[List[TestProgram]] = None
                        ) -> KnownBugOutcome:
    """Run a KIT campaign against the historical kernel for *bug_id*."""
    scenario = SCENARIOS[bug_id.upper()]
    __, version, namespace = TABLE3_BUGS[scenario.bug_id]
    config = CampaignConfig(
        machine=scenario_machine_config(scenario),
        corpus=scenario_corpus(scenario, extra_corpus),
        strategy=strategy,
    )
    result = Kit(config).run()
    detected = scenario.bug_id in result.bugs_found()
    return KnownBugOutcome(scenario, version, namespace, detected, result)


def reproduce_all(strategy: str = "df-ia") -> List[KnownBugOutcome]:
    """Run every Table-3/§6.2 scenario; order follows the paper."""
    return [reproduce_known_bug(bug_id, strategy) for bug_id in SCENARIOS]
