"""Bounds-learning interference detection — the paper's §7 extension.

Plain functional interference testing must ignore any syscall result that
is non-deterministic, which blinds it to interference over inherently
noisy resources (the time namespace; the §6.2 conntrack dump, bug F).
The paper sketches the fix:

    "A possible solution is to learn the valid bounds of resource values,
    caused by non-determinism, through dynamic profiling and detecting
    inter-container resource interference by identifying bound
    violations."

This module implements that detector.  From the same receiver-alone
re-runs the non-determinism analysis performs, it learns a *profile* per
tree path instead of a boolean flag:

* numeric leaves: an ``[min, max]`` interval, widened by a configurable
  relative margin,
* internal nodes: the set of observed child counts (again widened into an
  interval),
* non-numeric varying leaves: the set of observed values.

A with-sender execution then violates the profile when a value falls
outside its interval / observed set — evidence of interference that mere
variance cannot explain.  Divergence on *stable* paths is still reported
exactly as by Algorithm 1.

The companion benchmark (``bench_ablation_bounds.py``) shows the payoff:
the conntrack-dump leak (bug F), invisible to the baseline detector, is
caught by bound violations on the dump's line count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..corpus.program import TestProgram
from ..vm.machine import RECEIVER, Machine
from .nondet import DEFAULT_OFFSET_SECONDS, offsets_to_boot_ns
from .spec import Specification
from .trace_ast import Path, TraceNode, build_trace_ast

#: Extra headroom applied to learned numeric intervals.
DEFAULT_MARGIN = 0.25


@dataclass
class PathProfile:
    """What re-runs taught us about one tree path."""

    #: Numeric value interval (present when every observation was numeric).
    low: Optional[float] = None
    high: Optional[float] = None
    #: Observed non-numeric values.
    values: Set[str] = field(default_factory=set)
    #: Observed child counts.
    child_counts: Set[int] = field(default_factory=set)

    def observe(self, node: TraceNode) -> None:
        self.child_counts.add(len(node.children))
        if node.value is None:
            return
        # Exact observations are always in-envelope, whatever their type;
        # the numeric interval additionally generalizes between them.
        self.values.add(node.value)
        number = _as_number(node.value)
        if number is not None:
            self.low = number if self.low is None else min(self.low, number)
            self.high = number if self.high is None else max(self.high, number)

    def violates(self, node: TraceNode, margin: float) -> bool:
        if self.child_counts and \
                not self._count_ok(len(node.children), margin):
            return True
        if node.value is None:
            return False
        if node.value in self.values:
            return False
        number = _as_number(node.value)
        if number is not None and self.low is not None and \
                self.high is not None:
            spread = max(abs(self.high), abs(self.low), 1.0) * margin
            return not (self.low - spread <= number <= self.high + spread)
        return True

    def _count_ok(self, count: int, margin: float) -> bool:
        low, high = min(self.child_counts), max(self.child_counts)
        slack = max(1, int(round((high - low) * margin))) \
            if high > low else 0
        return low - slack <= count <= high + slack

    @property
    def varied(self) -> bool:
        """Did re-runs actually disagree on this path?"""
        if len(self.child_counts) > 1:
            return True
        if self.low is not None and self.high is not None:
            return self.low != self.high
        return len(self.values) > 1


def _as_number(value: str) -> Optional[float]:
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


@dataclass
class BoundViolation:
    """One with-sender observation outside the learned envelope."""

    path: Path
    label: str
    observed: Optional[str]
    profile: PathProfile

    @property
    def call_index(self) -> Optional[int]:
        return self.path[0] if self.path else None


class BoundsDetector:
    """The §7 bounds-learning detector.

    Learns per-program envelopes from receiver-alone re-runs (cached), and
    reports with-sender observations that escape them.  Use alongside the
    standard :class:`~repro.core.detection.Detector`: this one trades some
    soundness (an interval can under-approximate legal noise) for the
    ability to test non-deterministic resources at all.
    """

    def __init__(self, machine: Machine, spec: Specification,
                 offsets: Sequence[int] = DEFAULT_OFFSET_SECONDS,
                 extra_rounds: int = 2, margin: float = DEFAULT_MARGIN):
        self._machine = machine
        self._spec = spec
        self._margin = margin
        # More observation points than the boolean analysis needs: the
        # envelope quality grows with samples.
        base = list(offsets_to_boot_ns(offsets))
        extra = [base[-1] + (i + 1) * 13_000_000_000 for i in range(extra_rounds)]
        self._boot_offsets = base + extra
        self._profiles: Dict[str, Dict[Path, PathProfile]] = {}
        self.runs_executed = 0

    # -- learning -----------------------------------------------------------

    def learn(self, receiver: TestProgram) -> Dict[Path, PathProfile]:
        cached = self._profiles.get(receiver.hash_hex)
        if cached is not None:
            return cached
        profiles: Dict[Path, PathProfile] = {}
        for boot_ns in self._boot_offsets:
            self._machine.reset(boot_offset_ns=boot_ns)
            result = self._machine.run(RECEIVER, receiver)
            self.runs_executed += 1
            tree = build_trace_ast(result.records)
            for path, node in tree.walk():
                profiles.setdefault(path, PathProfile()).observe(node)
        self._profiles[receiver.hash_hex] = profiles
        return profiles

    # -- checking -------------------------------------------------------------

    def check(self, sender: TestProgram,
              receiver: TestProgram) -> List[BoundViolation]:
        """Violations observed when the sender precedes the receiver."""
        profiles = self.learn(receiver)
        machine = self._machine
        machine.reset()
        machine.run("sender", sender)
        with_result = machine.run(RECEIVER, receiver)
        tree = build_trace_ast(with_result.records)

        violations: List[BoundViolation] = []
        for path, node in tree.walk():
            profile = profiles.get(path)
            if profile is None:
                # Structure unseen in any re-run: an ancestor's count
                # violation will have reported it; skip the subtree noise.
                continue
            if profile.violates(node, self._margin):
                violations.append(BoundViolation(path, node.label,
                                                 node.value, profile))
        return self._filter_protected(violations, with_result.records)

    def _filter_protected(self, violations: List[BoundViolation],
                          records) -> List[BoundViolation]:
        kept = []
        for violation in violations:
            index = violation.call_index
            if index is None or index >= len(records):
                continue
            record = records[index]
            if record is not None and self._spec.call_accesses_protected(record):
                kept.append(violation)
        return kept
