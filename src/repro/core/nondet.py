"""Non-deterministic result identification (paper §4.3.2).

"Many non-deterministic system call results are caused by timing… To
systematically identify such cases, KIT re-runs the receiver program
multiple times with different starting times, so that system call
results that are sensitive to timing vary between different executions."

Here, "different starting times" are snapshot restores with rebased
virtual-clock boot offsets.  The resulting trace ASTs are compared and
every varying node's path is marked non-deterministic; the mark set is
cached per test program ("KIT saves this non-determinism information to
disk for each test program to reduce the need to rerun the test program
in future testing campaigns").
"""

from __future__ import annotations

import json
import os
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..corpus.program import TestProgram
from ..kernel.clock import DEFAULT_BOOT_NS
from ..vm.machine import RECEIVER, Machine
from .trace_ast import Path, build_trace_ast, nondet_paths_from_runs

#: Boot offsets (seconds added to the default boot time) for the re-runs.
#: Chosen to differ pairwise at second granularity *and* modulo small
#: divisors, so periodic background state (conntrack churn) also varies.
DEFAULT_OFFSET_SECONDS: Tuple[int, ...] = (0, 7, 101)


def offsets_to_boot_ns(offsets: Sequence[int]) -> Tuple[int, ...]:
    return tuple(DEFAULT_BOOT_NS + s * 1_000_000_000 for s in offsets)


class NondetStore:
    """On-disk cache of non-determinism marks, keyed by program hash."""

    def __init__(self, directory: Optional[str] = None):
        self._directory = directory
        self._memory: Dict[str, FrozenSet[Path]] = {}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def get(self, program_hash: str) -> Optional[FrozenSet[Path]]:
        if program_hash in self._memory:
            return self._memory[program_hash]
        if self._directory is None:
            return None
        file_path = self._file_for(program_hash)
        if not os.path.exists(file_path):
            return None
        with open(file_path) as handle:
            raw = json.load(handle)
        marks = frozenset(tuple(path) for path in raw)
        self._memory[program_hash] = marks
        return marks

    def put(self, program_hash: str, marks: FrozenSet[Path]) -> None:
        self._memory[program_hash] = marks
        if self._directory is None:
            return
        with open(self._file_for(program_hash), "w") as handle:
            json.dump(sorted(list(path) for path in marks), handle)

    def _file_for(self, program_hash: str) -> str:
        return os.path.join(self._directory, f"{program_hash}.nondet.json")

    def __len__(self) -> int:
        return len(self._memory)


class NondetAnalyzer:
    """Computes (and caches) non-determinism marks for receiver programs."""

    def __init__(self, machine: Machine, store: Optional[NondetStore] = None,
                 offsets: Sequence[int] = DEFAULT_OFFSET_SECONDS):
        self._machine = machine
        # Explicit None check: an empty NondetStore is falsy (it has a
        # __len__), so ``store or NondetStore()`` would discard it.
        self._store = store if store is not None else NondetStore()
        self._boot_offsets = offsets_to_boot_ns(offsets)
        self.runs_executed = 0

    def nondet_paths(self, program: TestProgram) -> FrozenSet[Path]:
        cached = self._store.get(program.hash_hex)
        if cached is not None:
            return cached
        trees = []
        for boot_ns in self._boot_offsets:
            self._machine.reset(boot_offset_ns=boot_ns)
            result = self._machine.run(RECEIVER, program)
            trees.append(build_trace_ast(result.records))
            self.runs_executed += 1
        marks = nondet_paths_from_runs(trees)
        self._store.put(program.hash_hex, marks)
        return marks
