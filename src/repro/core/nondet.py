"""Non-deterministic result identification (paper §4.3.2).

"Many non-deterministic system call results are caused by timing… To
systematically identify such cases, KIT re-runs the receiver program
multiple times with different starting times, so that system call
results that are sensitive to timing vary between different executions."

Here, "different starting times" are snapshot restores with rebased
virtual-clock boot offsets.  The resulting trace ASTs are compared and
every varying node's path is marked non-deterministic; the mark set is
cached per test program ("KIT saves this non-determinism information to
disk for each test program to reduce the need to rerun the test program
in future testing campaigns").
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..corpus.program import TestProgram
from ..faults.plan import (
    SITE_CACHE_EVICT,
    SITE_CACHE_STALE_OWNER,
    STALE_OWNER,
    FaultPlan,
)
from ..kernel.clock import DEFAULT_BOOT_NS
from ..vm.machine import RECEIVER, Machine
from .trace_ast import Path, build_trace_ast, nondet_paths_from_runs

#: Boot offsets (seconds added to the default boot time) for the re-runs.
#: Chosen to differ pairwise at second granularity *and* modulo small
#: divisors, so periodic background state (conntrack churn) also varies.
DEFAULT_OFFSET_SECONDS: Tuple[int, ...] = (0, 7, 101)


def offsets_to_boot_ns(offsets: Sequence[int]) -> Tuple[int, ...]:
    return tuple(DEFAULT_BOOT_NS + s * 1_000_000_000 for s in offsets)


class NondetStore:
    """Cache of non-determinism marks, keyed by program hash + offsets.

    Thread-safe, so one store can be shared by every worker of a
    distributed campaign: a verdict computed on any machine is valid for
    all of them (they restore the same snapshot).  Verdicts are keyed by
    the boot-offset schedule as well as the program hash — marks
    computed under one offset set say nothing about another.  The empty
    offsets key (the default) keeps the single-key API and on-disk
    layout backward compatible.  Disk writes go through a temp file +
    ``os.replace`` so concurrent writers can never expose a torn file.
    """

    def __init__(self, directory: Optional[str] = None,
                 faults: Optional[FaultPlan] = None):
        self._directory = directory
        self._memory: Dict[Tuple[str, str], FrozenSet[Path]] = {}
        #: cache key -> owner tag of the worker that computed the marks
        #: (None for entries loaded from disk or computed in-process).
        self._owners: Dict[Tuple[str, str], Optional[int]] = {}
        #: Chaos plan; registers the ``cache.evict`` and
        #: ``cache.stale_owner`` injection sites on this store.
        self._faults = faults
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def get(self, program_hash: str,
            offsets_key: str = "") -> Optional[FrozenSet[Path]]:
        key = (program_hash, offsets_key)
        faults = self._faults
        with self._lock:
            marks = self._memory.get(key)
            if marks is None:
                marks = self._load(program_hash, offsets_key)
            if marks is not None and faults is not None \
                    and faults.should_inject(SITE_CACHE_EVICT):
                # Spurious eviction (memory and disk, or the disk copy
                # would silently resurrect the entry): the caller
                # recomputes the verdict from the same snapshot.
                self._remove(key)
                faults.record_recovered([SITE_CACHE_EVICT])
                marks = None
            if marks is None:
                self.misses += 1
                return None
            self._memory[key] = marks
            self.hits += 1
            return marks

    def put(self, program_hash: str, marks: FrozenSet[Path],
            offsets_key: str = "", owner: Optional[int] = None) -> None:
        key = (program_hash, offsets_key)
        faults = self._faults
        with self._lock:
            if faults is not None \
                    and faults.should_inject(SITE_CACHE_STALE_OWNER):
                # Mis-tagged insert: only the purge_stale sweep can
                # release it (owner invalidation will never match).
                owner = STALE_OWNER
            if self._owners.get(key) == STALE_OWNER and faults is not None:
                # Overwriting a stale-tagged entry resolves *that* tag in
                # passing (even if the overwrite is itself mis-tagged —
                # the new injection gets its own pending resolution).
                faults.record_recovered([SITE_CACHE_STALE_OWNER])
            self._memory[key] = marks
            self._owners[key] = owner
            if self._directory is None:
                return
            file_path = self._file_for(program_hash, offsets_key)
            tmp_path = f"{file_path}.tmp.{threading.get_ident()}"
            with open(tmp_path, "w") as handle:
                json.dump(sorted(list(path) for path in marks), handle)
            os.replace(tmp_path, file_path)

    def _remove(self, key: Tuple[str, str]) -> None:
        """Drop one entry everywhere, resolving a stale tag if present."""
        with self._lock:
            owner = self._owners.pop(key, None)
            self._memory.pop(key, None)
        if self._directory is not None:
            file_path = self._file_for(*key)
            if os.path.exists(file_path):
                os.remove(file_path)
        if owner == STALE_OWNER and self._faults is not None:
            self._faults.record_recovered([SITE_CACHE_STALE_OWNER])

    def owner_tags(self) -> List[Optional[int]]:
        """The owner tag of every live entry (invariant auditing)."""
        with self._lock:
            return list(self._owners.values())

    def purge_stale(self) -> int:
        """Sweep entries whose owner tag a stale-owner fault corrupted."""
        with self._lock:
            stale = [key for key, tag in self._owners.items()
                     if tag == STALE_OWNER]
            for key in stale:
                self._remove(key)
            return len(stale)

    def invalidate_owner(self, owner: int) -> int:
        """Drop every verdict computed by *owner* — memory and disk.

        A worker that died mid-queue may have published marks from a
        machine in an undefined state; those verdicts cannot be trusted
        by the surviving workers.
        """
        with self._lock:
            stale = [key for key, tag in self._owners.items()
                     if tag == owner]
            for key in stale:
                del self._memory[key]
                del self._owners[key]
                if self._directory is not None:
                    file_path = self._file_for(*key)
                    if os.path.exists(file_path):
                        os.remove(file_path)
            return len(stale)

    def _load(self, program_hash: str,
              offsets_key: str) -> Optional[FrozenSet[Path]]:
        if self._directory is None:
            return None
        file_path = self._file_for(program_hash, offsets_key)
        if not os.path.exists(file_path):
            return None
        with open(file_path) as handle:
            raw = json.load(handle)
        return frozenset(tuple(path) for path in raw)

    def _file_for(self, program_hash: str, offsets_key: str = "") -> str:
        stem = program_hash if not offsets_key else f"{program_hash}.{offsets_key}"
        return os.path.join(self._directory, f"{stem}.nondet.json")

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)


class NondetAnalyzer:
    """Computes (and caches) non-determinism marks for receiver programs."""

    def __init__(self, machine: Machine, store: Optional[NondetStore] = None,
                 offsets: Sequence[int] = DEFAULT_OFFSET_SECONDS):
        self._machine = machine
        # Explicit None check: an empty NondetStore is falsy (it has a
        # __len__), so ``store or NondetStore()`` would discard it.
        self._store = store if store is not None else NondetStore()
        self._boot_offsets = offsets_to_boot_ns(offsets)
        # Verdicts depend on which boot offsets were compared, so the
        # offset schedule is part of the cache key (empty for the
        # default schedule, keeping the on-disk layout stable).
        self._offsets_key = ("" if tuple(offsets) == DEFAULT_OFFSET_SECONDS
                             else "-".join(str(s) for s in offsets))
        self.runs_executed = 0

    @property
    def store(self) -> NondetStore:
        return self._store

    def nondet_paths(self, program: TestProgram) -> FrozenSet[Path]:
        cached = self._store.get(program.hash_hex, self._offsets_key)
        if cached is not None:
            return cached
        trees = []
        for boot_ns in self._boot_offsets:
            self._machine.reset(boot_offset_ns=boot_ns)
            result = self._machine.run(RECEIVER, program)
            trees.append(build_trace_ast(result.records))
            self.runs_executed += 1
        marks = nondet_paths_from_runs(trees)
        self._store.put(program.hash_hex, marks, self._offsets_key,
                        owner=self._machine.cluster_worker_id)
        return marks
