"""Test case generation (paper §4.1).

Turns a profiled corpus into executable test cases:

1. build the data-flow index (write/read points per kernel address),
2. enumerate candidate flows at each overlapping address,
3. cluster them under the chosen strategy, keeping the first flow seen
   as each cluster's representative test case,
4. deduplicate representatives by (sender, receiver) program pair for
   execution — one execution covers every cluster the pair represents.

The RAND baseline of Table 4 bypasses the analysis entirely and samples
random program pairs from the corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence,
                    Tuple)

from ..corpus.program import TestProgram
from .clustering import ClusteringStrategy
from .dataflow import AccessPoint, DataFlowIndex
from .profile import ProgramProfile
from .spec import Specification

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.prefilter import PrefilterStats, StaticPreFilter


@dataclass
class TestCase:
    """A sender/receiver program pair to execute."""

    __test__ = False  # not a pytest class, despite the name

    sender_index: int
    receiver_index: int
    sender: TestProgram
    receiver: TestProgram
    #: Cluster keys this pair represents (≥1 for data-flow cases; empty
    #: for RAND cases).
    cluster_keys: List[Hashable] = field(default_factory=list)

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.sender_index, self.receiver_index)


@dataclass
class GenerationResult:
    """Test cases plus the Table-4 bookkeeping."""

    strategy: str
    test_cases: List[TestCase]
    #: Number of clusters (Table 4's "Test cases" column for DF-*).
    cluster_count: int
    #: Unclustered candidate flows (Table 4's DF row).
    flow_count: int
    #: Kernel addresses with write/read overlap.
    overlap_addresses: int
    #: Static pre-filter telemetry, when a filter was installed.
    prefilter: Optional["PrefilterStats"] = None


class TestCaseGenerator:
    """Generates test cases from corpus profiles."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, corpus: Sequence[TestProgram],
                 profiles: Optional[Sequence[ProgramProfile]],
                 spec: Specification,
                 prefilter: Optional["StaticPreFilter"] = None,
                 index=None):
        if profiles is not None and len(corpus) != len(profiles):
            raise ValueError("corpus and profiles must align")
        self._corpus = list(corpus)
        self._profiles = list(profiles) if profiles is not None else None
        self._spec = spec
        self._prefilter = prefilter
        #: Any object with the DataFlowIndex query surface
        #: (iter_overlaps/overlap_addresses/total_flow_count) — the
        #: in-memory index by default, a ColumnarAccessIndex when the
        #: caller streams profiles through the on-disk backend.
        self._index = index

    @property
    def index(self):
        if self._index is None:
            if self._profiles is None:
                raise ValueError("data-flow strategies need corpus profiles "
                                 "or an injected index; only generate_random "
                                 "works without them")
            self._index = DataFlowIndex.build(self._profiles, self._spec)
        return self._index

    # -- data-flow generation -------------------------------------------------

    def generate(self, strategy: ClusteringStrategy,
                 max_clusters: Optional[int] = None,
                 rep_seed: int = 0) -> GenerationResult:
        """Cluster candidate flows and emit one representative per cluster.

        The representative of each cluster is reservoir-sampled (with the
        deterministic *rep_seed*) rather than first-seen, with weights
        strongly favouring *short* programs: fuzzer corpora are
        minimized, and a minimal reproducer is the representative a
        triager wants — while clusters only ever witnessed by long noisy
        programs still get those, which is what exercises the Table-5
        filtering funnel.  (The paper only requires "one test case from
        each cluster", §4.2.)

        ``max_clusters`` caps materialization for the unclustered DF
        baseline, whose cluster count equals the flow count and is only
        reported, not executed, in Table 4.
        """
        index = self.index
        rng = random.Random(rep_seed)
        clusters: Dict[Hashable, Tuple[AccessPoint, AccessPoint]] = {}
        best_key: Dict[Hashable, float] = {}
        # Pair verdicts from the static pre-filter (None = keep all).
        verdicts: Dict[Tuple[int, int], bool] = {}
        overlap_count = 0
        # Stream join rows: with the columnar backend only one address's
        # points are resident at a time.
        for __, writers, readers in index.iter_overlaps():
            overlap_count += 1
            write_groups = self._group(writers, strategy.write_key, rng)
            read_groups = self._group(readers, strategy.read_key, rng)
            for write_key, write_point in write_groups.items():
                for read_key, read_point in read_groups.items():
                    if not self._pair_allowed(write_point, read_point,
                                              verdicts):
                        continue
                    key = (write_key, read_key)
                    weight = self._pair_weight(write_point, read_point)
                    # Weighted reservoir sampling (A-Res): keep the max
                    # of u^(1/w) across candidates.
                    sample = rng.random() ** (1.0 / weight)
                    if sample > best_key.get(key, -1.0):
                        best_key[key] = sample
                        clusters[key] = (write_point, read_point)
        cluster_count = len(clusters)
        cases = self._materialize(clusters, max_clusters)
        stats = None
        if self._prefilter is not None:
            from ..analysis.prefilter import PrefilterStats

            stats = PrefilterStats(
                pairs_total=len(verdicts),
                pairs_pruned=sum(1 for kept in verdicts.values() if not kept),
            )
        return GenerationResult(
            strategy=strategy.name,
            test_cases=cases,
            cluster_count=cluster_count,
            flow_count=index.total_flow_count(),
            overlap_addresses=overlap_count,
            prefilter=stats,
        )

    def _pair_allowed(self, write_point: AccessPoint,
                      read_point: AccessPoint,
                      verdicts: Dict[Tuple[int, int], bool]) -> bool:
        """Apply the static pre-filter to a candidate pair (memoized)."""
        if self._prefilter is None:
            return True
        pair = (write_point.prog_index, read_point.prog_index)
        verdict = verdicts.get(pair)
        if verdict is None:
            verdict = self._prefilter.may_interfere(self._corpus[pair[0]],
                                                    self._corpus[pair[1]])
            verdicts[pair] = verdict
        return verdict

    def _pair_weight(self, write_point: AccessPoint,
                     read_point: AccessPoint) -> float:
        """Sampling weight: strongly prefer minimal program pairs."""
        total = (len(self._corpus[write_point.prog_index])
                 + len(self._corpus[read_point.prog_index]))
        return 1.0 / float(total) ** 2

    def _group(self, points: List[AccessPoint], key_fn,
               rng: random.Random) -> Dict[Hashable, AccessPoint]:
        """Group points by key, weighted-reservoir-sampling one
        representative per group (same minimal-program preference as the
        cluster level)."""
        groups: Dict[Hashable, AccessPoint] = {}
        best: Dict[Hashable, float] = {}
        for point in points:
            key = key_fn(point)
            weight = 1.0 / float(len(self._corpus[point.prog_index])) ** 2
            sample = rng.random() ** (1.0 / weight)
            if sample > best.get(key, -1.0):
                best[key] = sample
                groups[key] = point
        return groups

    def _materialize(self, clusters, max_clusters: Optional[int]) -> List[TestCase]:
        by_pair: Dict[Tuple[int, int], TestCase] = {}
        for count, (key, (write_point, read_point)) in enumerate(clusters.items()):
            if max_clusters is not None and count >= max_clusters:
                break
            pair = (write_point.prog_index, read_point.prog_index)
            case = by_pair.get(pair)
            if case is None:
                case = TestCase(
                    sender_index=pair[0],
                    receiver_index=pair[1],
                    sender=self._corpus[pair[0]],
                    receiver=self._corpus[pair[1]],
                )
                by_pair[pair] = case
            case.cluster_keys.append(key)
        return list(by_pair.values())

    # -- RAND baseline ------------------------------------------------------------

    def generate_random(self, budget: int, seed: int = 0) -> GenerationResult:
        """Random sender/receiver pairs — Table 4's RAND row."""
        rng = random.Random(seed)
        size = len(self._corpus)
        seen = set()
        cases: List[TestCase] = []
        attempts = 0
        while len(cases) < budget and attempts < budget * 10:
            attempts += 1
            pair = (rng.randrange(size), rng.randrange(size))
            if pair in seen:
                continue
            seen.add(pair)
            cases.append(TestCase(pair[0], pair[1],
                                  self._corpus[pair[0]], self._corpus[pair[1]]))
        return GenerationResult(
            strategy="rand",
            test_cases=cases,
            cluster_count=len(cases),
            flow_count=0,
            overlap_addresses=0,
        )
