"""Campaign persistence: save and reload results as JSON.

A testing campaign's valuable output — the reports, their diagnosis, the
per-stage statistics — should survive the process that produced it, so
triage can happen later or elsewhere (the paper's workflow spreads report
analysis over weeks).  ``save_campaign`` writes a self-contained JSON
document; ``load_campaign`` restores a fully usable
:class:`~repro.core.pipeline.CampaignResult` whose reports support
re-aggregation, oracle classification, and rendering.

Programs are stored in their text serialization; syscall records are
stored field-by-field.  The machine/spec configuration is summarized (not
round-tripped): reloading a campaign does not require rebuilding kernels.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Optional

from ..corpus.program import TestProgram
from ..vm.executor import SyscallRecord
from .aggregation import aggregate
from .generation import GenerationResult, TestCase
from .pipeline import CampaignConfig, CampaignResult, CampaignStats
from .report import CulpritPair, TestReport
from .trace_ast import NodeDiff

FORMAT_VERSION = 1


# -- encoding -------------------------------------------------------------------

def _encode_record(record: Optional[SyscallRecord]) -> Optional[Dict[str, Any]]:
    if record is None:
        return None
    return {
        "index": record.index,
        "name": record.name,
        "args": list(record.args),
        "retval": record.retval,
        "errno": record.errno,
        "details": record.details,
        "arg_kinds": record.arg_kinds,
        "ret_kind": record.ret_kind,
        "subjects": record.subjects,
    }


def _encode_report(report: TestReport) -> Dict[str, Any]:
    return {
        "sender": report.case.sender.serialize(),
        "receiver": report.case.receiver.serialize(),
        "sender_index": report.case.sender_index,
        "receiver_index": report.case.receiver_index,
        "interfered_indices": report.interfered_indices,
        "diffs": [
            {"path": list(d.path), "label": d.label,
             "value_a": d.value_a, "value_b": d.value_b}
            for d in report.diffs
        ],
        "sender_records": [_encode_record(r) for r in report.sender_records],
        "receiver_alone_records": [
            _encode_record(r) for r in report.receiver_alone_records],
        "receiver_with_records": [
            _encode_record(r) for r in report.receiver_with_records],
        "culprit_pairs": [
            {"sender_index": p.sender_index, "receiver_index": p.receiver_index}
            for p in report.culprit_pairs
        ],
    }


def campaign_to_dict(result: CampaignResult) -> Dict[str, Any]:
    config = result.config
    return {
        "format_version": FORMAT_VERSION,
        "config": {
            "strategy": config.strategy,
            "corpus_size": config.corpus_size,
            "corpus_seed": config.corpus_seed,
            "rep_seed": config.rep_seed,
            "kernel_version": config.machine.kernel.version,
            "bugs_enabled": config.machine.bugs.enabled(),
        },
        "stats": dataclasses.asdict(result.stats),
        "generation": {
            "strategy": result.generation.strategy,
            "cluster_count": result.generation.cluster_count,
            "flow_count": result.generation.flow_count,
            "overlap_addresses": result.generation.overlap_addresses,
        },
        "reports": [_encode_report(r) for r in result.reports],
    }


def save_campaign(result: CampaignResult, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(campaign_to_dict(result), handle, indent=1)


# -- decoding -------------------------------------------------------------------

def _decode_record(data: Optional[Dict[str, Any]]) -> Optional[SyscallRecord]:
    if data is None:
        return None
    return SyscallRecord(
        index=data["index"],
        name=data["name"],
        args=tuple(data["args"]),
        retval=data["retval"],
        errno=data["errno"],
        details=data["details"],
        arg_kinds=data["arg_kinds"],
        ret_kind=data["ret_kind"],
        subjects=data["subjects"],
    )


def _decode_report(data: Dict[str, Any]) -> TestReport:
    case = TestCase(
        sender_index=data["sender_index"],
        receiver_index=data["receiver_index"],
        sender=TestProgram.parse(data["sender"]),
        receiver=TestProgram.parse(data["receiver"]),
    )
    report = TestReport(
        case=case,
        interfered_indices=list(data["interfered_indices"]),
        diffs=[
            NodeDiff(tuple(d["path"]), d["label"], d["value_a"], d["value_b"])
            for d in data["diffs"]
        ],
        sender_records=[_decode_record(r) for r in data["sender_records"]],
        receiver_alone_records=[
            _decode_record(r) for r in data["receiver_alone_records"]],
        receiver_with_records=[
            _decode_record(r) for r in data["receiver_with_records"]],
    )
    report.culprit_pairs = [
        CulpritPair(p["sender_index"], p["receiver_index"])
        for p in data["culprit_pairs"]
    ]
    return report


def campaign_from_dict(data: Dict[str, Any]) -> CampaignResult:
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(f"unsupported campaign format "
                         f"{data.get('format_version')!r}")
    stats = CampaignStats(**data["stats"])
    reports = [_decode_report(r) for r in data["reports"]]
    generation = GenerationResult(
        strategy=data["generation"]["strategy"],
        test_cases=[],
        cluster_count=data["generation"]["cluster_count"],
        flow_count=data["generation"]["flow_count"],
        overlap_addresses=data["generation"]["overlap_addresses"],
    )
    config = CampaignConfig(
        strategy=data["config"]["strategy"],
        corpus_size=data["config"]["corpus_size"],
        corpus_seed=data["config"]["corpus_seed"],
        rep_seed=data["config"]["rep_seed"],
    )
    return CampaignResult(config, stats, generation, reports,
                          aggregate(reports))


def load_campaign(path: str) -> CampaignResult:
    with open(path) as handle:
        return campaign_from_dict(json.load(handle))
