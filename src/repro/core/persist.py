"""Campaign persistence: save and reload results as JSON.

A testing campaign's valuable output — the reports, their diagnosis, the
per-stage statistics — should survive the process that produced it, so
triage can happen later or elsewhere (the paper's workflow spreads report
analysis over weeks).  ``save_campaign`` writes a self-contained JSON
document; ``load_campaign`` restores a fully usable
:class:`~repro.core.pipeline.CampaignResult` whose reports support
re-aggregation, oracle classification, and rendering.

Programs are stored in their text serialization; syscall records are
stored field-by-field.  The machine/spec configuration is summarized (not
round-tripped): reloading a campaign does not require rebuilding kernels.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from .aggregation import aggregate
from .generation import GenerationResult
from .pipeline import CampaignConfig, CampaignResult, CampaignStats
from .report import TestReport
from .reportcodec import decode_report, encode_report

FORMAT_VERSION = 1


# -- encoding -------------------------------------------------------------------

def _encode_report(report: TestReport):
    return encode_report(report)


def campaign_to_dict(result: CampaignResult) -> Dict[str, Any]:
    config = result.config
    return {
        "format_version": FORMAT_VERSION,
        "config": {
            "strategy": config.strategy,
            "corpus_size": config.corpus_size,
            "corpus_seed": config.corpus_seed,
            "rep_seed": config.rep_seed,
            "kernel_version": config.machine.kernel.version,
            "bugs_enabled": config.machine.bugs.enabled(),
        },
        "stats": dataclasses.asdict(result.stats),
        "generation": {
            "strategy": result.generation.strategy,
            "cluster_count": result.generation.cluster_count,
            "flow_count": result.generation.flow_count,
            "overlap_addresses": result.generation.overlap_addresses,
        },
        "reports": [_encode_report(r) for r in result.reports],
    }


def save_campaign(result: CampaignResult, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(campaign_to_dict(result), handle, indent=1)


# -- decoding -------------------------------------------------------------------

def _decode_report(data):
    return decode_report(data)


def campaign_from_dict(data: Dict[str, Any]) -> CampaignResult:
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(f"unsupported campaign format "
                         f"{data.get('format_version')!r}")
    stats = CampaignStats(**data["stats"])
    reports = [_decode_report(r) for r in data["reports"]]
    generation = GenerationResult(
        strategy=data["generation"]["strategy"],
        test_cases=[],
        cluster_count=data["generation"]["cluster_count"],
        flow_count=data["generation"]["flow_count"],
        overlap_addresses=data["generation"]["overlap_addresses"],
    )
    config = CampaignConfig(
        strategy=data["config"]["strategy"],
        corpus_size=data["config"]["corpus_size"],
        corpus_seed=data["config"]["corpus_seed"],
        rep_seed=data["config"]["rep_seed"],
    )
    return CampaignResult(config, stats, generation, reports,
                          aggregate(reports))


def load_campaign(path: str) -> CampaignResult:
    with open(path) as handle:
        return campaign_from_dict(json.load(handle))
