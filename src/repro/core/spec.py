"""The partial kernel specification (paper §4.3.1, §5.3).

KIT does not know which kernel resources namespaces protect — the user
tells it, incrementally, through a *partial specification* with two
encoding formats:

1. **Resource identifiers** — syzlang-style type tags for file
   descriptors and IPC ids ("it is efficient to select system calls that
   access namespace-protected resources that require specific file
   descriptors as the system call parameter").  A syscall that uses or
   returns a descriptor of a protected kind is selected.
2. **Checker functions** — small callbacks matching call signatures for
   syscalls that take no descriptor (priorities, hostnames, mounts, …).

The same specification is used twice: at generation time, to keep only
data flows whose *reader* syscall touches a protected resource (§4.1.1),
and at detection time, to drop divergences on unprotected resources
(§4.3.1).

The default specification mirrors the paper's: it covers the PID, mount,
net, IPC, and user namespaces, deliberately leaves genuinely global
surfaces (``/proc/crypto``, generic ``/proc`` files) unselected, and —
also like the paper's — is imperfect in a documented way: ``stat``-family
calls are selected because files are mount-namespace resources, yet
their ``st_dev`` minor numbers are global, which is exactly the §6.4
false-positive class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Sequence, Set, Tuple

from ..corpus.program import TestProgram
from ..vm.executor import SyscallRecord

Checker = Callable[[SyscallRecord], bool]

#: The "57 fd types" analogue: descriptor kinds selected as protected.
DEFAULT_PROTECTED_KINDS: FrozenSet[str] = frozenset({
    # net namespace
    "sock_tcp", "sock_tcp6", "sock_udp", "sock_udp6", "sock_packet",
    "sock_rds", "sock_sctp", "sock_unix", "sock_netlink_uevent",
    "fd_proc_net", "fd_proc_sys_net",
    # ipc namespace
    "msqid", "shmid", "semid", "fd_mqueue", "fd_proc_sysvipc",
    # mount namespace
    "fd_file", "fd_io_uring",
    # namespace references themselves (nsfs)
    "fd_ns",
    # uts namespace (hostname sysctl)
    "fd_proc_sys_kernel",
})

#: Kinds that exist but are deliberately NOT protected (documentation).
KNOWN_UNPROTECTED_KINDS: FrozenSet[str] = frozenset({
    "fd_proc",       # generic /proc (crypto, uptime, meminfo, version)
    "fd_proc_sys",   # non-net, non-kernel sysctls
    "fd", "sock_netlink",
})


# -- checker functions (the paper wrote 17; each is a few lines) ------------------

def check_priority(record: SyscallRecord) -> bool:
    """Priorities are per-task state, visible through the PID namespace."""
    return record.name in ("getpriority", "setpriority")


def check_pid(record: SyscallRecord) -> bool:
    """PID numbers are the PID namespace's protected resource."""
    return record.name == "getpid"


def check_hostname(record: SyscallRecord) -> bool:
    """The hostname is the UTS namespace's protected resource."""
    return record.name in ("gethostname", "sethostname")


def check_mount_table(record: SyscallRecord) -> bool:
    """Mount/umount manipulate the mount namespace's protected table."""
    return record.name in ("mount", "umount2")


def check_path_ops(record: SyscallRecord) -> bool:
    """Path-based file ops resolve through the mount namespace."""
    return record.name in ("stat", "mkdir", "unlink", "open")


def check_dirents(record: SyscallRecord) -> bool:
    return record.name in ("getdents64", "io_uring_getdents")


def check_netdev(record: SyscallRecord) -> bool:
    """Net devices live in the network namespace."""
    return record.name == "ip_link_add"


def check_ipvs(record: SyscallRecord) -> bool:
    """IPVS services live in the network namespace."""
    return record.name == "ipvs_add_service"


def check_unix_diag(record: SyscallRecord) -> bool:
    """sock_diag queries net-namespace socket tables."""
    return record.name == "unix_diag"


def check_unshare(record: SyscallRecord) -> bool:
    return record.name == "unshare"


DEFAULT_CHECKERS: Tuple[Checker, ...] = (
    check_priority,
    check_pid,
    check_hostname,
    check_mount_table,
    check_path_ops,
    check_dirents,
    check_netdev,
    check_ipvs,
    check_unix_diag,
    check_unshare,
)


@dataclass(frozen=True)
class Specification:
    """A partial specification of namespace-protected resources."""

    protected_kinds: FrozenSet[str] = DEFAULT_PROTECTED_KINDS
    checkers: Tuple[Checker, ...] = DEFAULT_CHECKERS

    def call_accesses_protected(self, record: SyscallRecord) -> bool:
        """Does this executed call touch a protected resource?"""
        for kind in record.resource_kinds():
            if kind in self.protected_kinds:
                return True
        for checker in self.checkers:
            if checker(record):
                return True
        return False

    def any_protected(self, records: Sequence[SyscallRecord]) -> bool:
        return any(self.call_accesses_protected(r) for r in records if r is not None)

    # -- incremental refinement (§3.2's "interactive strategy") ----------------

    def with_kinds(self, *kinds: str) -> "Specification":
        return Specification(self.protected_kinds | set(kinds), self.checkers)

    def without_kinds(self, *kinds: str) -> "Specification":
        return Specification(self.protected_kinds - set(kinds), self.checkers)

    def with_checker(self, checker: Checker) -> "Specification":
        return Specification(self.protected_kinds, self.checkers + (checker,))


    def describe(self) -> str:
        """Human-readable dump of the partial specification."""
        lines = ["protected resource kinds:"]
        lines += [f"  {kind}" for kind in sorted(self.protected_kinds)]
        lines.append("checker functions:")
        for checker in self.checkers:
            doc = (checker.__doc__ or "").strip().split("\n")[0]
            lines.append(f"  {checker.__name__}: {doc}" if doc
                         else f"  {checker.__name__}")
        return "\n".join(lines)

    def matching_entries(self, record: SyscallRecord) -> List[str]:
        """Which spec entries select this call (for spec coverage)."""
        entries = [kind for kind in record.resource_kinds()
                   if kind in self.protected_kinds]
        entries += [checker.__name__ for checker in self.checkers
                    if checker(record)]
        return entries


def default_specification() -> Specification:
    return Specification()


def select_dependent_calls(program: TestProgram, seed_index: int) -> Set[int]:
    """Seed-call expansion (§5.3): calls data-dependent on *seed_index*.

    When the user highlights a seed call (e.g. ``open("/proc/net/…")``),
    KIT selects every call with an explicit data dependency on its
    result — transitively, since descriptors are forwarded.
    """
    selected = {seed_index}
    changed = True
    while changed:
        changed = False
        for index, call in enumerate(program.calls):
            if call is None or index in selected:
                continue
            if any(ref in selected for ref in call.references()):
                selected.add(index)
                changed = True
    return selected
