"""Test reports: what KIT hands the user for each detected interference."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kernel.errno import errno_name
from ..vm.executor import SyscallRecord
from .generation import TestCase
from .trace_ast import NodeDiff


@dataclass(frozen=True)
class CulpritPair:
    """Algorithm 2's output: the sender call responsible for interference
    on a receiver call (both are call indices into their programs)."""

    sender_index: int
    receiver_index: int


@dataclass
class TestReport:
    """One confirmed functional-interference report."""

    __test__ = False  # not a pytest class, despite the name

    case: TestCase
    #: Receiver call indices whose results diverged on protected resources.
    interfered_indices: List[int]
    #: The surviving AST differences (non-det and unprotected filtered out).
    diffs: List[NodeDiff]
    sender_records: List[Optional[SyscallRecord]]
    receiver_alone_records: List[Optional[SyscallRecord]]
    receiver_with_records: List[Optional[SyscallRecord]]
    #: Filled in by diagnosis (Algorithm 2).
    culprit_pairs: List[CulpritPair] = field(default_factory=list)
    #: Controlled-interleaving evidence (docs/SCHEDULING.md): encoded
    #: :class:`~repro.core.schedule.ScheduleId` -> interfered receiver
    #: call indices witnessed under that schedule.  Empty for
    #: sequential reports.
    witnesses: Dict[str, List[int]] = field(default_factory=dict)
    #: The first witnessing schedule — ``receiver_with_records`` and
    #: ``diffs`` come from its run, and ``kit-repro repro`` replays it.
    #: None for sequential reports.
    culprit_schedule: Optional[str] = None

    def record_for(self, records: List[Optional[SyscallRecord]],
                   index: int) -> Optional[SyscallRecord]:
        if 0 <= index < len(records):
            return records[index]
        return None

    def receiver_record(self, index: int) -> Optional[SyscallRecord]:
        """Prefer the with-sender record (the interfered one)."""
        record = self.record_for(self.receiver_with_records, index)
        if record is not None:
            return record
        return self.record_for(self.receiver_alone_records, index)

    def first_interfered_record(self) -> Optional[SyscallRecord]:
        for index in self.interfered_indices:
            record = self.receiver_record(index)
            if record is not None:
                return record
        return None

    def render(self) -> str:
        """Human-readable report, KIT-style."""
        lines = ["=== functional interference report ==="]
        lines.append("--- sender program ---")
        lines.append(self.case.sender.serialize())
        lines.append("--- receiver program ---")
        lines.append(self.case.receiver.serialize())
        lines.append("--- interfered receiver calls ---")
        for index in self.interfered_indices:
            alone = self.record_for(self.receiver_alone_records, index)
            with_s = self.record_for(self.receiver_with_records, index)
            lines.append(f"  call {index}: {_summarize(alone)}  ->  "
                         f"{_summarize(with_s)}")
        if self.diffs:
            lines.append("--- trace differences ---")
            for diff in self.diffs[:16]:
                lines.append(f"  {'/'.join(map(str, diff.path))} {diff.label}: "
                             f"{diff.value_a!r} != {diff.value_b!r}")
        if self.culprit_schedule is not None:
            lines.append("--- witnessing schedules ---")
            lines.append(f"  culprit: {self.culprit_schedule}")
            for encoded in sorted(self.witnesses):
                indices = ",".join(map(str, self.witnesses[encoded]))
                lines.append(f"  {encoded}: receiver calls {indices}")
        if self.culprit_pairs:
            lines.append("--- culprit syscall pairs (sender -> receiver) ---")
            for pair in self.culprit_pairs:
                sender = self.record_for(self.sender_records, pair.sender_index)
                receiver = self.receiver_record(pair.receiver_index)
                lines.append(f"  {_summarize(sender)}  ->  {_summarize(receiver)}")
        return "\n".join(lines)


def _summarize(record: Optional[SyscallRecord]) -> str:
    if record is None:
        return "<missing>"
    status = "OK" if record.ok else errno_name(record.errno)
    subject = record.subject()
    subject_part = f" [{subject}]" if subject else ""
    return f"{record.name}()={record.retval} {status}{subject_part}"
