"""Report minimization: turn a report into a minimal reproducer.

Algorithm 2 already names the culprit sender/receiver syscall pair; a
triager wants the matching *programs* cut down to just those calls and
their data dependencies — the shape of the C reproducers the paper's
authors attached to their kernel reports.

Minimization keeps, per program, the culprit calls plus the backward
closure of their result references (a call that produces an fd a culprit
call uses must stay), replaces everything else with holes, and then
*verifies* the minimized pair still triggers the interference through
the full detection filter chain.  If verification fails — diagnosis can
be approximate when calls interact through shared state rather than
through results — the original pair is kept and the outcome says so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from ..corpus.program import TestProgram
from .detection import Detector
from .report import TestReport


@dataclass
class MinimizedCase:
    """A minimal (or best-effort) reproducer for one report."""

    sender: TestProgram
    receiver: TestProgram
    #: Did the minimized pair re-trigger the interference?
    verified: bool
    #: Live call counts, for quick "how small did it get" summaries.
    sender_calls: int = 0
    receiver_calls: int = 0

    def render(self) -> str:
        status = "verified" if self.verified else "NOT verified (kept original)"
        return "\n".join([
            f"--- minimized reproducer ({status}) ---",
            "# sender",
            self.sender.serialize(),
            "# receiver",
            self.receiver.serialize(),
        ])


def dependency_closure(program: TestProgram, keep: Iterable[int]) -> Set[int]:
    """*keep* plus every call whose result they (transitively) consume."""
    needed: Set[int] = set(keep)
    frontier = list(needed)
    while frontier:
        index = frontier.pop()
        call = program.calls[index]
        if call is None:
            continue
        for ref in call.references():
            if ref not in needed:
                needed.add(ref)
                frontier.append(ref)
    return needed


def reduce_to(program: TestProgram, keep: Iterable[int]) -> TestProgram:
    """Hole out every call not in the dependency closure of *keep*."""
    needed = dependency_closure(program, keep)
    reduced = program
    for index in program.live_call_indices():
        if index not in needed:
            reduced = reduced.without_call(index)
    return reduced


def prefix_through(program: TestProgram, last_index: int) -> TestProgram:
    """Drop every call after *last_index* (keep the stateful prefix)."""
    reduced = program
    for index in program.live_call_indices():
        if index > last_index:
            reduced = reduced.without_call(index)
    return reduced


def minimize_report(detector: Detector, report: TestReport) -> MinimizedCase:
    """Cut the report's programs down to the culprit calls and verify.

    Two attempts, strongest reduction first:

    1. *closure*: culprit calls plus their result-dependency closure —
       minimal, but blind to state dependencies (a ``setsockopt`` that
       configures a socket leaves no result edge to the ``sendto`` that
       needs it);
    2. *prefix*: every call up to and including the last culprit on each
       side — larger, but preserves all prior state.

    Whichever attempt first re-triggers the interference wins; if
    neither does, the original pair is returned unverified.
    """
    if not report.culprit_pairs:
        return _unverified(report)
    sender_keep = [pair.sender_index for pair in report.culprit_pairs]
    receiver_keep = [pair.receiver_index for pair in report.culprit_pairs]

    attempts = [
        (reduce_to(report.case.sender, sender_keep),
         reduce_to(report.case.receiver, receiver_keep)),
        (prefix_through(report.case.sender, max(sender_keep)),
         prefix_through(report.case.receiver, max(receiver_keep))),
    ]
    for sender_min, receiver_min in attempts:
        if detector.interference_set(sender_min, receiver_min):
            return MinimizedCase(
                sender_min, receiver_min, verified=True,
                sender_calls=len(sender_min.live_call_indices()),
                receiver_calls=len(receiver_min.live_call_indices()))
    return _unverified(report)


def _unverified(report: TestReport) -> MinimizedCase:
    return MinimizedCase(
        report.case.sender, report.case.receiver, verified=False,
        sender_calls=len(report.case.sender.live_call_indices()),
        receiver_calls=len(report.case.receiver.live_call_indices()))
