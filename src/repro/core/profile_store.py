"""On-disk profile cache: skip re-profiling unchanged programs.

Profiling dominates campaign cost (4 snapshot-restored runs per program,
§6.5), and a program's profile is a pure function of (program, kernel
build, container setup).  Like the paper's non-determinism cache ("KIT
saves this … to disk for each test program to reduce the need to rerun
the test program in future testing campaigns"), this store keys each
profile by the program hash *and* a machine fingerprint, so switching
kernels or container flags invalidates exactly what it must.

Profiles are pickled; the fingerprint covers the kernel version, the
bug-flag set, the jump-label config, and both containers' namespace
flags.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from typing import List, Optional, Sequence

from ..corpus.program import TestProgram
from ..vm.machine import Machine, MachineConfig
from .profile import ProgramProfile, Profiler


def machine_fingerprint(config: MachineConfig) -> str:
    """A stable digest of everything that shapes a profile."""
    parts = [
        config.kernel.version,
        f"jump_label={config.kernel.jump_label}",
        ",".join(config.bugs.enabled()),
        f"sender={config.sender.unshare_flags:#x}"
        f":{config.sender.pivot_root}:{config.sender.uid}",
        f"receiver={config.receiver.unshare_flags:#x}"
        f":{config.receiver.pivot_root}:{config.receiver.uid}",
    ]
    return hashlib.sha1("|".join(parts).encode()).hexdigest()[:16]


class ProfileStore:
    """Directory-backed cache of :class:`ProgramProfile` objects.

    Entries fan out into 256 subdirectories keyed by the first two hex
    digits of the program hash, so a 100k-profile cache never piles into
    one directory.  Old flat-layout caches keep working: ``get`` falls
    back to the legacy path, and ``put`` always writes the sharded one.
    """

    def __init__(self, directory: str, fingerprint: str):
        self._directory = os.path.join(directory, fingerprint)
        os.makedirs(self._directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Entries/bytes this store wrote (CampaignStats telemetry).
        self.entries_written = 0
        self.bytes_written = 0

    def _path(self, program: TestProgram) -> str:
        return os.path.join(self._directory, program.hash_hex[:2],
                            f"{program.hash_hex}.profile")

    def _legacy_path(self, program: TestProgram) -> str:
        return os.path.join(self._directory, f"{program.hash_hex}.profile")

    def get(self, program: TestProgram) -> Optional[ProgramProfile]:
        path = self._path(program)
        if not os.path.exists(path):
            path = self._legacy_path(program)  # pre-sharding caches
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            with open(path, "rb") as handle:
                profile = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            self.misses += 1
            return None
        self.hits += 1
        return profile

    def put(self, profile: ProgramProfile) -> None:
        # Atomic publish: parallel profiling workers share this
        # directory, and a reader must never see a torn pickle.
        path = self._path(profile.program)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp_path = f"{path}.tmp.{threading.get_ident()}"
        with open(tmp_path, "wb") as handle:
            pickle.dump(profile, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
        self.entries_written += 1
        self.bytes_written += os.path.getsize(path)


class CachingProfiler:
    """A :class:`~repro.core.profile.Profiler` with an on-disk cache."""

    def __init__(self, machine: Machine, directory: str):
        self._profiler = Profiler(machine)
        self._store = ProfileStore(directory,
                                   machine_fingerprint(machine.config))

    @property
    def runs_executed(self) -> int:
        return self._profiler.runs_executed

    @property
    def store(self) -> ProfileStore:
        return self._store

    def profile(self, program: TestProgram, index: int = 0) -> ProgramProfile:
        cached = self._store.get(program)
        if cached is not None:
            # Re-stamp the corpus index: it is campaign-relative.
            cached.index = index
            return cached
        profile = self._profiler.profile(program, index)
        self._store.put(profile)
        return profile

    def profile_corpus(self, corpus: Sequence[TestProgram]
                       ) -> List[ProgramProfile]:
        return [self.profile(program, index)
                for index, program in enumerate(corpus)]
