"""Ground-truth oracle: map reports to the injected bugs they witness.

The paper's authors triaged reports by hand (≈30 person-hours, §6.4).
This repo injects its bugs, so triage can be automated: each rule below
recognizes the observable signature of one injected bug, exactly as a
human would read the report.  The labels are the paper's: ``"1"``–``"9"``
for Table 2, ``"A"``–``"G"`` for Table 3/§6.2, ``"H"`` for the §2.1
historical msgctl bug, plus ``"FP"`` (false positive — interference on a
resource namespaces do not protect) and ``"UI"`` (under investigation).

One report can witness several bugs at once (a sender that creates a
socket *and* transmits moves both the ``sockets: used`` and the ``mem``
counters of ``/proc/net/sockstat``), so :func:`classify_all` returns a
set; :func:`classify` picks the canonical primary label.

The oracle is evaluation tooling only: the detection pipeline never
consults it.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from ..kernel.errno import EADDRINUSE, EPERM
from ..kernel.net.socket import SCTP_GET_ASSOC_ID, SO_COOKIE
from ..vm.executor import SyscallRecord
from .report import TestReport
from .trace_ast import NodeDiff

FALSE_POSITIVE = "FP"
UNDER_INVESTIGATION = "UI"

#: Labels that correspond to real protected-resource bugs.  ``T1``–``T3``
#: are the race-only bugs of the concurrency extension (docs/SCHEDULING.md):
#: only witnessed under controlled interleaving, never sequentially.
REAL_BUG_LABELS = tuple("123456789") + ("A", "B", "C", "D", "E", "F", "G", "H",
                                        "T1", "T2", "T3")

#: Preference order for picking one primary label per report.
_PRIORITY = list(REAL_BUG_LABELS) + [FALSE_POSITIVE, UNDER_INVESTIGATION]


def classify_all(report: TestReport) -> FrozenSet[str]:
    """Every injected-bug label this report witnesses."""
    labels: Set[str] = set()
    for index in report.interfered_indices:
        record = report.receiver_record(index)
        if record is None:
            continue
        diffs = [d for d in report.diffs if d.call_index == index]
        labels |= _classify_record(record, diffs)
    if not labels:
        labels.add(UNDER_INVESTIGATION)
    return frozenset(labels)


def classify(report: TestReport) -> str:
    """The primary label (highest-priority member of :func:`classify_all`)."""
    labels = classify_all(report)
    for label in _PRIORITY:
        if label in labels:
            return label
    return UNDER_INVESTIGATION


def _classify_record(record: SyscallRecord, diffs: List[NodeDiff]) -> Set[str]:
    subject = record.subject()
    diff_labels = {diff.label for diff in diffs}
    diff_text = " ".join(f"{d.value_a or ''}|{d.value_b or ''}" for d in diffs)

    # -- procfs read observations ------------------------------------------
    if "/proc/net/ptype" in subject:
        return {"1"}
    if "/proc/net/sockstat" in subject:
        labels = set()
        if "sockets: used" in diff_text:
            labels.add("5")
        if " mem " in diff_text:
            labels.add("8")
        if "FRAG" in diff_text:
            labels.add("T1")
        return labels or {UNDER_INVESTIGATION}
    if "/proc/sysvipc/msg" in subject:
        return {"T2"}
    if "/proc/net/dev" in subject:
        return {"T3"}
    if "/proc/net/protocols" in subject:
        return {"9"}
    if "/proc/net/ip_vs" in subject:
        return {"C"}
    if "nf_conntrack_max" in subject:
        return {"D"}
    if "/proc/net/nf_conntrack" in subject:
        return {"F"}
    if "/proc/crypto" in subject:
        return {FALSE_POSITIVE}
    if "/proc/net/unix" in subject:
        # Real interference (global unix inode allocator) but not one of
        # the paper's numbered findings: stays under investigation.
        return {UNDER_INVESTIGATION}

    # -- flow labels (bugs #2 / #4): strict mode rejects the receiver -------
    if record.name == "sendto" and record.errno == EPERM:
        return {"2"}
    if record.name == "connect" and record.errno == EPERM:
        return {"4"}

    # -- RDS (bug #3) ----------------------------------------------------------
    if record.name == "bind" and "sock_rds" in record.resource_kinds():
        if record.errno == EADDRINUSE or "EADDRINUSE" in diff_text:
            return {"3"}
        return {UNDER_INVESTIGATION}

    # -- cookie / association IDs (bugs #6 / #7) -------------------------------
    if record.name == "getsockopt" and len(record.args) >= 3:
        if record.args[2] == SCTP_GET_ASSOC_ID or \
                "sock_sctp" in record.resource_kinds():
            return {"7"}
        if record.args[2] == SO_COOKIE:
            return {"6"}

    # -- known bugs ---------------------------------------------------------------
    if record.name == "getpriority":
        return {"A"}
    if record.name in ("recvfrom", "read") and \
            "sock_netlink_uevent" in record.resource_kinds():
        return {"B"}
    if record.name in ("io_uring_getdents", "io_uring_read"):
        return {"E"}
    if record.name == "unix_diag":
        return {"G"}
    if record.name == "msgctl" and \
            {"msg_lspid", "msg_lrpid"} & diff_labels:
        return {"H"}

    # -- documented false-positive classes (§6.4) -----------------------------
    if record.name in ("stat", "fstat") and {"st_dev", "st_ino"} & diff_labels:
        return {FALSE_POSITIVE}

    return {UNDER_INVESTIGATION}
