"""Kernel coverage accounting over corpus profiles.

The paper attributes all of KIT's findings landing in the network
namespace partly to "the focus of Syzkaller test program generation"
(§7) — i.e. to what the corpus does and does not exercise.  This module
makes that measurable for a profiled corpus:

* which instrumented kernel functions were entered,
* which instrumented source lines ("instructions") performed accesses,
* which kernel addresses were touched, split read/write,
* a per-subsystem rollup (derived from the kernel-model module that owns
  each instruction).

Use it to judge corpus quality before spending a campaign on it, or to
diff the coverage of two corpora.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..kernel.ktrace import FUNCTIONS, INSTRUCTIONS
from .profile import ProgramProfile


@dataclass
class CoverageReport:
    """What a profiled corpus exercised in the kernel."""

    functions: Set[int] = field(default_factory=set)
    instructions: Set[int] = field(default_factory=set)
    read_addresses: Set[int] = field(default_factory=set)
    written_addresses: Set[int] = field(default_factory=set)
    #: subsystem name -> instructions hit within it.
    subsystems: Dict[str, Set[int]] = field(default_factory=dict)

    @property
    def function_names(self) -> List[str]:
        return sorted(FUNCTIONS.name_of(fid) for fid in self.functions)

    @property
    def shared_addresses(self) -> Set[int]:
        """Addresses both read and written somewhere in the corpus —
        the upper bound on where data flows can be found."""
        return self.read_addresses & self.written_addresses

    def subsystem_summary(self) -> List[Tuple[str, int]]:
        return sorted(((name, len(hits)) for name, hits in
                       self.subsystems.items()),
                      key=lambda item: (-item[1], item[0]))

    def merge(self, other: "CoverageReport") -> "CoverageReport":
        merged = CoverageReport(
            functions=self.functions | other.functions,
            instructions=self.instructions | other.instructions,
            read_addresses=self.read_addresses | other.read_addresses,
            written_addresses=self.written_addresses | other.written_addresses,
        )
        for source in (self.subsystems, other.subsystems):
            for name, hits in source.items():
                merged.subsystems.setdefault(name, set()).update(hits)
        return merged

    def render(self) -> str:
        lines = [
            f"functions entered:     {len(self.functions)}",
            f"instructions covered:  {len(self.instructions)}",
            f"addresses read:        {len(self.read_addresses)}",
            f"addresses written:     {len(self.written_addresses)}",
            f"shared (r+w) addrs:    {len(self.shared_addresses)}",
            "per-subsystem instruction coverage:",
        ]
        for name, count in self.subsystem_summary():
            lines.append(f"  {name:<14} {count}")
        return "\n".join(lines)


def _subsystem_of(ip: int) -> str:
    filename, __ = INSTRUCTIONS.location_of(ip)
    base = os.path.basename(filename)
    parent = os.path.basename(os.path.dirname(filename))
    if parent == "net":
        return f"net/{base[:-3]}"
    return base[:-3] if base.endswith(".py") else base


def coverage_of_profiles(profiles: Sequence[ProgramProfile]) -> CoverageReport:
    """Aggregate coverage across every profiled execution."""
    report = CoverageReport()
    for profile in profiles:
        for container in (profile.sender, profile.receiver):
            for call_accesses in container.accesses:
                if call_accesses is None:
                    continue
                for access, stack in call_accesses:
                    report.instructions.add(access.ip)
                    report.functions.update(stack)
                    if access.is_write:
                        report.written_addresses.add(access.addr)
                    else:
                        report.read_addresses.add(access.addr)
                    report.subsystems.setdefault(
                        _subsystem_of(access.ip), set()).add(access.ip)
    return report
