"""Test case execution (paper §4.2).

"KIT executes a test case twice… in one execution, it first executes the
sender program in the sender container, and then executes the receiver
program, during which it collects the system call trace of the receiver.
In another execution, KIT skips the sender program execution and only
executes the receiver program."

Every execution starts from the VM snapshot.  The receiver-alone trace
depends only on the receiver program and the snapshot, so it is cached
per program — many test cases share receiver programs, and the cache is
the execution-side counterpart of the paper's per-program
non-determinism cache.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..corpus.program import TestProgram
from ..faults.plan import (
    SITE_CACHE_EVICT,
    SITE_CACHE_STALE_OWNER,
    SITE_SENDER_CACHE_EVICT,
    SITE_SENDER_CACHE_STALE_OWNER,
    STALE_OWNER,
    FaultPlan,
)
from ..vm.executor import ExecutionResult, SyscallRecord
from ..vm.machine import RECEIVER, SENDER, Machine
from ..vm.segments import StateDelta

#: Default byte budget for memoized post-sender state deltas.  Deltas in
#: this model are a few KiB each, so the default never evicts in normal
#: campaigns; it exists so a runaway corpus degrades to re-execution
#: instead of unbounded growth.
DEFAULT_SENDER_CACHE_BYTES = 64 * 1024 * 1024


class BaselineCache:
    """Thread-safe receiver-alone result cache, shareable across workers.

    Execution results are immutable once produced, so one worker's
    baseline serves every test case with the same receiver program —
    including cases scheduled on *other* workers, since all cluster
    machines restore the same snapshot.  The lock only guards the dict;
    two workers may still race to compute the same baseline (both miss,
    both run), which is wasteful but harmless: ``put`` keeps the first.
    """

    def __init__(self, faults: Optional[FaultPlan] = None) -> None:
        # Reentrant so _remove can take it lexically under get/purge
        # (the lock-discipline checker reasons purely lexically).
        self._lock = threading.RLock()
        self._results: Dict[str, ExecutionResult] = {}
        #: receiver hash -> owner tag of the worker that computed it
        #: (None for entries from the in-process runner).
        self._owners: Dict[str, Optional[int]] = {}
        #: Chaos plan; registers the ``cache.evict`` and
        #: ``cache.stale_owner`` injection sites on this cache.
        self._faults = faults
        self.hits = 0
        self.misses = 0

    def get(self, receiver_hash: str) -> Optional[ExecutionResult]:
        faults = self._faults
        with self._lock:
            result = self._results.get(receiver_hash)
            if result is not None and faults is not None \
                    and faults.should_inject(SITE_CACHE_EVICT):
                # Spurious eviction: the caller recomputes from the same
                # snapshot, so the fault is absorbed by construction.
                self._remove(receiver_hash)
                faults.record_recovered([SITE_CACHE_EVICT])
                result = None
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
            return result

    def put(self, receiver_hash: str, result: ExecutionResult,
            owner: Optional[int] = None) -> None:
        faults = self._faults
        with self._lock:
            if faults is not None \
                    and faults.should_inject(SITE_CACHE_STALE_OWNER):
                if receiver_hash in self._results:
                    # Lost the first-put race: the stale tag was never
                    # stored, the injection is a no-op.
                    faults.record_recovered([SITE_CACHE_STALE_OWNER])
                    return
                # Mis-tagged insert: owner-based invalidation can no
                # longer find this entry; only the end-of-campaign
                # sweep (purge_stale) repairs it.
                owner = STALE_OWNER
            if receiver_hash not in self._results:
                self._results[receiver_hash] = result
                self._owners[receiver_hash] = owner

    def _remove(self, key: str) -> None:
        """Drop one entry, resolving a stale tag if it carried one."""
        with self._lock:
            owner = self._owners.pop(key, None)
            del self._results[key]
        if owner == STALE_OWNER and self._faults is not None:
            self._faults.record_recovered([SITE_CACHE_STALE_OWNER])

    def owner_tags(self) -> List[Optional[int]]:
        """The owner tag of every live entry (invariant auditing)."""
        with self._lock:
            return list(self._owners.values())

    def purge_stale(self) -> int:
        """Sweep entries whose owner tag a stale-owner fault corrupted.

        The repair half of the owner invariant: a mis-tagged entry can
        never be released by ``invalidate_owner``, so the pipeline
        sweeps the caches after every campaign stage that could have
        planted one.  Each purge resolves its injection as recovered.
        """
        with self._lock:
            stale = [key for key, tag in self._owners.items()
                     if tag == STALE_OWNER]
            for key in stale:
                self._remove(key)
            return len(stale)

    def invalidate_owner(self, owner: int) -> int:
        """Drop every entry computed by *owner* (a dead cluster worker
        may have published results from a corrupted machine)."""
        with self._lock:
            stale = [key for key, tag in self._owners.items()
                     if tag == owner]
            for key in stale:
                del self._results[key]
                del self._owners[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
            self._owners.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0


@dataclass
class SenderState:
    """One memoized post-sender machine state.

    The delta re-materializes the kernel state the sender left behind;
    the execution result is the sender's own trace, needed verbatim by
    reports.  Both are pure functions of (base snapshot, sender
    program), which is exactly the cache key.
    """

    delta: StateDelta
    result: ExecutionResult

    @property
    def size_bytes(self) -> int:
        return self.delta.size_bytes


@dataclass
class PreparedSenderState:
    """A sender-side machine state prepared outside the cache.

    Diagnosis (Algorithm 2) builds one of these per live sender call
    in a single stepped pass: *delta* is a machine state checkpoint at
    or before that call, *records* the full-length record list of the
    corresponding cumulative-removal sender variant (executed prefix
    plus hole padding).  Deltas are captured every few live calls, not
    at every one — when *replay* is set to ``(program, start, stop)``,
    the variant's state is the checkpoint plus a deterministic
    re-execution of slots ``[start, stop)``, which is far cheaper than
    capturing a delta per call.  ``TestCaseRunner.run_prepared`` turns
    one into the (sender result, receiver result) pair
    ``run_with_sender`` would have produced for that variant.
    """

    delta: StateDelta
    records: List[Optional[SyscallRecord]]
    replay: Optional[Tuple[TestProgram, int, int]] = None


class SenderStateCache:
    """Thread-safe post-sender state cache, shareable across workers.

    After a sender runs once from the base snapshot, its post-execution
    machine state is kept as a segmented :class:`StateDelta` keyed by
    ``(snapshot content id, sender hash)``.  Every later test case
    sharing that sender restores *base + delta* instead of re-executing
    the sender — valid on any machine with the same snapshot id, since
    identical configs build identical snapshots and group layouts.

    Entries are LRU-ordered under a byte budget (``max_bytes``); an
    eviction only costs the next user one sender re-execution, so the
    ``sender_cache.evict`` chaos site is absorbed by construction.
    Owner tags mirror :class:`BaselineCache`: entries published by a
    worker that later dies are dropped (``invalidate_owner``), and a
    ``sender_cache.stale_owner`` injection mis-tags an insert so only
    the end-of-campaign ``purge_stale`` sweep can reclaim it.
    """

    def __init__(self, max_bytes: int = DEFAULT_SENDER_CACHE_BYTES,
                 faults: Optional[FaultPlan] = None) -> None:
        # Reentrant for the same reason as BaselineCache: _remove is
        # called lexically under get/put/purge, and the lock-discipline
        # checker reasons purely lexically.
        self._lock = threading.RLock()
        #: (snapshot id, sender hash) -> entry, LRU order (oldest first).
        self._entries: "OrderedDict[Tuple[str, str], SenderState]" \
            = OrderedDict()
        self._owners: Dict[Tuple[str, str], Optional[int]] = {}
        self._faults = faults
        self.max_bytes = max_bytes
        #: Optional shared tier (a :class:`~repro.vm.shm.DeltaStore`-like
        #: object with ``fetch(key) -> bytes | None`` and
        #: ``publish(key, payload)``).  When set, the cache becomes a
        #: two-tier read-through: a local miss consults the shared tier
        #: and admits the deserialized entry; a fresh local insert is
        #: written through so sibling shard processes can hit it.
        self.backing: Optional[Any] = None
        self.hits = 0
        self.misses = 0
        #: Hits served by deserializing a shared-tier blob (a subset of
        #: ``hits``): another shard executed this sender first.
        self.shared_hits = 0
        #: Entries dropped by the byte budget (not by faults or owners).
        self.evictions = 0
        self._bytes = 0

    def get(self, snapshot_id: str,
            sender_hash: str) -> Optional[SenderState]:
        faults = self._faults
        key = (snapshot_id, sender_hash)
        with self._lock:
            entry = self._entries.get(key)
            evicted = False
            if entry is not None and faults is not None \
                    and faults.should_inject(SITE_SENDER_CACHE_EVICT):
                # Spurious eviction: the caller re-executes the sender
                # from the base snapshot, absorbing the fault.  The
                # shared tier is deliberately not consulted on this
                # path, so the injected eviction keeps its real cost.
                self._remove(key)
                faults.record_recovered([SITE_SENDER_CACHE_EVICT])
                entry = None
                evicted = True
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            if self.backing is not None and not evicted:
                payload = self.backing.fetch(key)
                if payload is not None:
                    entry = pickle.loads(payload)
                    # Admitted ownerless: the publishing shard's death
                    # is handled by the supervisor unlinking its shared
                    # blobs, not by local owner invalidation.
                    self._admit(key, entry, None)
                    self.hits += 1
                    self.shared_hits += 1
                    return entry
            self.misses += 1
            return None

    def put(self, snapshot_id: str, sender_hash: str, entry: SenderState,
            owner: Optional[int] = None) -> None:
        faults = self._faults
        key = (snapshot_id, sender_hash)
        with self._lock:
            if entry.size_bytes > self.max_bytes:
                # Never admitted: callers keep re-executing this sender,
                # which is correct (just slower) by construction.
                return
            if faults is not None \
                    and faults.should_inject(SITE_SENDER_CACHE_STALE_OWNER):
                if key in self._entries:
                    # Lost the first-put race: the stale tag was never
                    # stored, the injection is a no-op.
                    faults.record_recovered([SITE_SENDER_CACHE_STALE_OWNER])
                    return
                # Mis-tagged insert: owner-based invalidation can no
                # longer find this entry; only purge_stale repairs it.
                owner = STALE_OWNER
            if not self._admit(key, entry, owner):
                return
            if self.backing is not None:
                # Write-through on fresh inserts only; the shared tier
                # deduplicates by deterministic name, so a racing
                # sibling's publish simply wins.
                self.backing.publish(
                    key, pickle.dumps(entry,
                                      protocol=pickle.HIGHEST_PROTOCOL))

    def _admit(self, key: Tuple[str, str], entry: SenderState,
               owner: Optional[int]) -> bool:
        """Insert under the byte budget; False if present or oversized."""
        with self._lock:
            if entry.size_bytes > self.max_bytes or key in self._entries:
                return False
            self._entries[key] = entry
            self._owners[key] = owner
            self._bytes += entry.size_bytes
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                oldest = next(iter(self._entries))
                self._remove(oldest)
                self.evictions += 1
            return True

    def _remove(self, key: Tuple[str, str]) -> None:
        """Drop one entry, resolving a stale tag if it carried one."""
        with self._lock:
            owner = self._owners.pop(key, None)
            entry = self._entries.pop(key)
            self._bytes -= entry.size_bytes
        if owner == STALE_OWNER and self._faults is not None:
            self._faults.record_recovered([SITE_SENDER_CACHE_STALE_OWNER])

    def owner_tags(self) -> List[Optional[int]]:
        """The owner tag of every live entry (invariant auditing)."""
        with self._lock:
            return list(self._owners.values())

    def purge_stale(self) -> int:
        """Sweep entries whose owner tag a stale-owner fault corrupted.

        Same repair contract as ``BaselineCache.purge_stale``: each
        purge resolves its injection as recovered, and the pipeline
        sweeps after every stage that could have planted a stale tag.
        """
        with self._lock:
            stale = [key for key, tag in self._owners.items()
                     if tag == STALE_OWNER]
            for key in stale:
                self._remove(key)
            return len(stale)

    def invalidate_owner(self, owner: int) -> int:
        """Drop every entry published by *owner* (a dead cluster worker
        may have captured a delta from a corrupted machine)."""
        with self._lock:
            stale = [key for key, tag in self._owners.items()
                     if tag == owner]
            for key in stale:
                self._remove(key)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._owners.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_held(self) -> int:
        with self._lock:
            return self._bytes

    def bytes_by_owner(self) -> Dict[Optional[int], int]:
        """Bytes held per publishing owner (the --cache-report view)."""
        with self._lock:
            held: Dict[Optional[int], int] = {}
            for key, entry in self._entries.items():
                owner = self._owners[key]
                held[owner] = held.get(owner, 0) + entry.size_bytes
            return held

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0


class TestCaseRunner:
    """Runs sender/receiver pairs from the snapshot."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, machine: Machine,
                 baselines: Optional[BaselineCache] = None,
                 sender_states: Optional[SenderStateCache] = None):
        self._machine = machine
        self._baselines = baselines if baselines is not None else BaselineCache()
        # Post-sender state memoization needs segmented dirty tracking;
        # a full-restore machine silently falls back to re-execution.
        self._sender_states = sender_states \
            if machine.supports_state_deltas else None
        #: Test-case executions performed (the §6.5 throughput unit).
        self.cases_executed = 0

    def run_with_sender(self, sender: TestProgram,
                        receiver: TestProgram) -> Tuple[ExecutionResult,
                                                        ExecutionResult]:
        """Execution A: sender then receiver; returns both results.

        With a sender-state cache attached, the sender executes from
        the base snapshot at most once per (snapshot, sender program);
        every later case sharing the sender restores the memoized
        post-sender delta instead — state-equivalent by the segmented
        image's construction, and verified end-to-end by the
        cached-vs-uncached equivalence property test.
        """
        machine = self._machine
        cache = self._sender_states
        if cache is not None:
            entry = cache.get(machine.snapshot_id, sender.hash_hex)
            if entry is not None:
                machine.restore_state_delta(entry.delta)
                receiver_result = machine.run(RECEIVER, receiver)
                self.cases_executed += 1
                return entry.result, receiver_result
        machine.reset()
        sender_result = machine.run(SENDER, sender)
        if cache is not None:
            cache.put(machine.snapshot_id, sender.hash_hex,
                      SenderState(machine.capture_state_delta(),
                                  sender_result),
                      owner=machine.cluster_worker_id)
        receiver_result = machine.run(RECEIVER, receiver)
        self.cases_executed += 1
        return sender_result, receiver_result

    def run_prepared(self, prepared: PreparedSenderState,
                     receiver: TestProgram) -> Tuple[ExecutionResult,
                                                     ExecutionResult]:
        """Execution A from a pre-captured sender state (diagnosis memo).

        Equivalent to ``run_with_sender`` on the sender variant the
        prepared state was captured for: holes execute as no-ops, so
        the checkpoint delta — plus the deterministic replay of the few
        slots past it, when the checkpoint is strided — reproduces the
        variant's post-sender machine state exactly.
        """
        machine = self._machine
        machine.restore_state_delta(prepared.delta)
        if prepared.replay is not None:
            program, start, stop = prepared.replay
            machine.replay_slots(SENDER, program, start, stop,
                                 prior=prepared.records)
        receiver_result = machine.run(RECEIVER, receiver)
        self.cases_executed += 1
        return ExecutionResult(list(prepared.records)), receiver_result

    def receiver_alone(self, receiver: TestProgram) -> ExecutionResult:
        """Execution B: receiver only, from the same snapshot (cached)."""
        cached = self._baselines.get(receiver.hash_hex)
        if cached is not None:
            return cached
        machine = self._machine
        machine.reset()
        result = machine.run(RECEIVER, receiver)
        self._baselines.put(receiver.hash_hex, result,
                            owner=machine.cluster_worker_id)
        return result

    @property
    def baselines(self) -> BaselineCache:
        return self._baselines

    @property
    def sender_states(self) -> Optional[SenderStateCache]:
        return self._sender_states

    def clear_caches(self) -> None:
        self._baselines.clear()
        if self._sender_states is not None:
            self._sender_states.clear()
