"""Test case execution (paper §4.2).

"KIT executes a test case twice… in one execution, it first executes the
sender program in the sender container, and then executes the receiver
program, during which it collects the system call trace of the receiver.
In another execution, KIT skips the sender program execution and only
executes the receiver program."

Every execution starts from the VM snapshot.  The receiver-alone trace
depends only on the receiver program and the snapshot, so it is cached
per program — many test cases share receiver programs, and the cache is
the execution-side counterpart of the paper's per-program
non-determinism cache.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..corpus.program import TestProgram
from ..vm.executor import ExecutionResult
from ..vm.machine import RECEIVER, SENDER, Machine


class TestCaseRunner:
    """Runs sender/receiver pairs from the snapshot."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, machine: Machine):
        self._machine = machine
        self._baselines: Dict[str, ExecutionResult] = {}
        #: Test-case executions performed (the §6.5 throughput unit).
        self.cases_executed = 0

    def run_with_sender(self, sender: TestProgram,
                        receiver: TestProgram) -> Tuple[ExecutionResult,
                                                        ExecutionResult]:
        """Execution A: sender then receiver; returns both results."""
        machine = self._machine
        machine.reset()
        sender_result = machine.run(SENDER, sender)
        receiver_result = machine.run(RECEIVER, receiver)
        self.cases_executed += 1
        return sender_result, receiver_result

    def receiver_alone(self, receiver: TestProgram) -> ExecutionResult:
        """Execution B: receiver only, from the same snapshot (cached)."""
        cached = self._baselines.get(receiver.hash_hex)
        if cached is not None:
            return cached
        machine = self._machine
        machine.reset()
        result = machine.run(RECEIVER, receiver)
        self._baselines[receiver.hash_hex] = result
        return result

    def clear_caches(self) -> None:
        self._baselines.clear()
