"""Test case execution (paper §4.2).

"KIT executes a test case twice… in one execution, it first executes the
sender program in the sender container, and then executes the receiver
program, during which it collects the system call trace of the receiver.
In another execution, KIT skips the sender program execution and only
executes the receiver program."

Every execution starts from the VM snapshot.  The receiver-alone trace
depends only on the receiver program and the snapshot, so it is cached
per program — many test cases share receiver programs, and the cache is
the execution-side counterpart of the paper's per-program
non-determinism cache.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..corpus.program import TestProgram
from ..faults.plan import (
    SITE_CACHE_EVICT,
    SITE_CACHE_STALE_OWNER,
    STALE_OWNER,
    FaultPlan,
)
from ..vm.executor import ExecutionResult
from ..vm.machine import RECEIVER, SENDER, Machine


class BaselineCache:
    """Thread-safe receiver-alone result cache, shareable across workers.

    Execution results are immutable once produced, so one worker's
    baseline serves every test case with the same receiver program —
    including cases scheduled on *other* workers, since all cluster
    machines restore the same snapshot.  The lock only guards the dict;
    two workers may still race to compute the same baseline (both miss,
    both run), which is wasteful but harmless: ``put`` keeps the first.
    """

    def __init__(self, faults: Optional[FaultPlan] = None) -> None:
        # Reentrant so _remove can take it lexically under get/purge
        # (the lock-discipline checker reasons purely lexically).
        self._lock = threading.RLock()
        self._results: Dict[str, ExecutionResult] = {}
        #: receiver hash -> owner tag of the worker that computed it
        #: (None for entries from the in-process runner).
        self._owners: Dict[str, Optional[int]] = {}
        #: Chaos plan; registers the ``cache.evict`` and
        #: ``cache.stale_owner`` injection sites on this cache.
        self._faults = faults
        self.hits = 0
        self.misses = 0

    def get(self, receiver_hash: str) -> Optional[ExecutionResult]:
        faults = self._faults
        with self._lock:
            result = self._results.get(receiver_hash)
            if result is not None and faults is not None \
                    and faults.should_inject(SITE_CACHE_EVICT):
                # Spurious eviction: the caller recomputes from the same
                # snapshot, so the fault is absorbed by construction.
                self._remove(receiver_hash)
                faults.record_recovered([SITE_CACHE_EVICT])
                result = None
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
            return result

    def put(self, receiver_hash: str, result: ExecutionResult,
            owner: Optional[int] = None) -> None:
        faults = self._faults
        with self._lock:
            if faults is not None \
                    and faults.should_inject(SITE_CACHE_STALE_OWNER):
                if receiver_hash in self._results:
                    # Lost the first-put race: the stale tag was never
                    # stored, the injection is a no-op.
                    faults.record_recovered([SITE_CACHE_STALE_OWNER])
                    return
                # Mis-tagged insert: owner-based invalidation can no
                # longer find this entry; only the end-of-campaign
                # sweep (purge_stale) repairs it.
                owner = STALE_OWNER
            if receiver_hash not in self._results:
                self._results[receiver_hash] = result
                self._owners[receiver_hash] = owner

    def _remove(self, key: str) -> None:
        """Drop one entry, resolving a stale tag if it carried one."""
        with self._lock:
            owner = self._owners.pop(key, None)
            del self._results[key]
        if owner == STALE_OWNER and self._faults is not None:
            self._faults.record_recovered([SITE_CACHE_STALE_OWNER])

    def owner_tags(self) -> List[Optional[int]]:
        """The owner tag of every live entry (invariant auditing)."""
        with self._lock:
            return list(self._owners.values())

    def purge_stale(self) -> int:
        """Sweep entries whose owner tag a stale-owner fault corrupted.

        The repair half of the owner invariant: a mis-tagged entry can
        never be released by ``invalidate_owner``, so the pipeline
        sweeps the caches after every campaign stage that could have
        planted one.  Each purge resolves its injection as recovered.
        """
        with self._lock:
            stale = [key for key, tag in self._owners.items()
                     if tag == STALE_OWNER]
            for key in stale:
                self._remove(key)
            return len(stale)

    def invalidate_owner(self, owner: int) -> int:
        """Drop every entry computed by *owner* (a dead cluster worker
        may have published results from a corrupted machine)."""
        with self._lock:
            stale = [key for key, tag in self._owners.items()
                     if tag == owner]
            for key in stale:
                del self._results[key]
                del self._owners[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
            self._owners.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0


class TestCaseRunner:
    """Runs sender/receiver pairs from the snapshot."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, machine: Machine,
                 baselines: Optional[BaselineCache] = None):
        self._machine = machine
        self._baselines = baselines if baselines is not None else BaselineCache()
        #: Test-case executions performed (the §6.5 throughput unit).
        self.cases_executed = 0

    def run_with_sender(self, sender: TestProgram,
                        receiver: TestProgram) -> Tuple[ExecutionResult,
                                                        ExecutionResult]:
        """Execution A: sender then receiver; returns both results."""
        machine = self._machine
        machine.reset()
        sender_result = machine.run(SENDER, sender)
        receiver_result = machine.run(RECEIVER, receiver)
        self.cases_executed += 1
        return sender_result, receiver_result

    def receiver_alone(self, receiver: TestProgram) -> ExecutionResult:
        """Execution B: receiver only, from the same snapshot (cached)."""
        cached = self._baselines.get(receiver.hash_hex)
        if cached is not None:
            return cached
        machine = self._machine
        machine.reset()
        result = machine.run(RECEIVER, receiver)
        self._baselines.put(receiver.hash_hex, result,
                            owner=machine.cluster_worker_id)
        return result

    @property
    def baselines(self) -> BaselineCache:
        return self._baselines

    def clear_caches(self) -> None:
        self._baselines.clear()
