"""KIT's core: the paper's primary contribution.

Generation (§4.1) → execution (§4.2) → detection (§4.3) → aggregation
(§4.4), orchestrated by :class:`~repro.core.pipeline.Kit`.
"""

from .aggregation import ReportGroups, aggregate, call_signature
from .bounds import BoundsDetector, BoundViolation, PathProfile
from .concurrent import (
    ConcurrentDetector,
    ConcurrentReport,
    default_schedules,
    round_robin_schedule,
    sequential_schedule,
)
from .coverage import CoverageReport, coverage_of_profiles
from .persist import (
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)
from .clustering import (
    ClusteringStrategy,
    DfFullStrategy,
    DfIaStrategy,
    DfStStrategy,
    strategy_by_name,
)
from .accessindex import ColumnarAccessIndex
from .dataflow import (
    AccessPoint,
    DataFlowIndex,
    iter_read_points,
    iter_write_points,
    stack_sha1,
)
from .decode import decode_record, decode_trace, side_by_side
from .detection import DetectionResult, Detector, Outcome
from .diagnosis import Diagnoser
from .execution import (
    BaselineCache,
    PreparedSenderState,
    SenderState,
    SenderStateCache,
    TestCaseRunner,
)
from .generation import GenerationResult, TestCase, TestCaseGenerator
from .minimize import MinimizedCase, minimize_report, reduce_to
from .nondet import NondetAnalyzer, NondetStore
from .oracle import (
    FALSE_POSITIVE,
    REAL_BUG_LABELS,
    UNDER_INVESTIGATION,
    classify,
    classify_all,
)
from .pipeline import CampaignConfig, CampaignResult, CampaignStats, Kit
from .profile import ProgramProfile, Profiler, profile_corpus_distributed
from .profile_store import CachingProfiler, ProfileStore, machine_fingerprint
from .regress import CampaignDiff, diff_campaigns
from .render_md import campaign_markdown, save_campaign_markdown
from .triage import GroupDecision, TriageSession, Verdict
from .report import CulpritPair, TestReport
from .spec import Specification, default_specification, select_dependent_calls
from .spec_report import SpecCoverage, spec_coverage
from .trace_ast import (
    NodeDiff,
    TraceNode,
    apply_nondet_marks,
    build_trace_ast,
    nondet_paths_from_runs,
    syscall_trace_cmp,
)

__all__ = [
    "AccessPoint",
    "BaselineCache",
    "BoundViolation",
    "BoundsDetector",
    "CampaignConfig",
    "CampaignResult",
    "CampaignDiff",
    "CampaignStats",
    "GroupDecision",
    "TriageSession",
    "Verdict",
    "diff_campaigns",
    "CachingProfiler",
    "ProfileStore",
    "campaign_markdown",
    "machine_fingerprint",
    "save_campaign_markdown",
    "ConcurrentDetector",
    "ConcurrentReport",
    "CoverageReport",
    "default_schedules",
    "round_robin_schedule",
    "sequential_schedule",
    "campaign_from_dict",
    "campaign_to_dict",
    "coverage_of_profiles",
    "ClusteringStrategy",
    "ColumnarAccessIndex",
    "CulpritPair",
    "DataFlowIndex",
    "iter_read_points",
    "iter_write_points",
    "DetectionResult",
    "Detector",
    "DfFullStrategy",
    "DfIaStrategy",
    "DfStStrategy",
    "Diagnoser",
    "FALSE_POSITIVE",
    "GenerationResult",
    "Kit",
    "NodeDiff",
    "NondetAnalyzer",
    "NondetStore",
    "Outcome",
    "ProgramProfile",
    "Profiler",
    "REAL_BUG_LABELS",
    "PreparedSenderState",
    "ReportGroups",
    "SenderState",
    "SenderStateCache",
    "Specification",
    "TestCase",
    "TestCaseGenerator",
    "TestCaseRunner",
    "TestReport",
    "TraceNode",
    "UNDER_INVESTIGATION",
    "aggregate",
    "apply_nondet_marks",
    "build_trace_ast",
    "call_signature",
    "classify",
    "decode_record",
    "decode_trace",
    "default_specification",
    "load_campaign",
    "MinimizedCase",
    "minimize_report",
    "reduce_to",
    "save_campaign",
    "nondet_paths_from_runs",
    "PathProfile",
    "profile_corpus_distributed",
    "side_by_side",
    "select_dependent_calls",
    "SpecCoverage",
    "spec_coverage",
    "stack_sha1",
    "strategy_by_name",
    "syscall_trace_cmp",
]
