"""Report diagnosis — Algorithm 2 (paper §4.4).

"To find the root-cause sender system calls, KIT uses a differential
testing approach — for every system call in the sender program, KIT
checks whether skipping this sender call during execution will mask the
functional interference."

The implementation follows the pseudocode exactly: iterate the sender's
calls in inverse order, remove each (cumulatively — ``PS`` keeps
shrinking), re-run the test case through the full detection filter
chain, and attribute every receiver call whose interference disappeared
(``ΔIR``) to the removed sender call.  Only the *first* receiver call of
``ΔIR`` joins the culprit list, because downstream receiver divergences
are dependency fallout of the first one.
"""

from __future__ import annotations

from typing import List, Set

from .detection import Detector
from .report import CulpritPair, TestReport


class Diagnoser:
    """Runs Algorithm 2 over confirmed reports."""

    def __init__(self, detector: Detector):
        self._detector = detector
        #: Differential re-executions performed (diagnosis cost metric).
        self.reruns = 0

    def diagnose(self, report: TestReport) -> List[CulpritPair]:
        """Identify the culprit (sender, receiver) syscall pairs."""
        sender = report.case.sender
        receiver = report.case.receiver
        remaining: Set[int] = set(report.interfered_indices)
        culprits: List[CulpritPair] = []
        for index in reversed(sender.live_call_indices()):
            if not remaining:
                break
            sender = sender.without_call(index)          # PS <- RemoveCall(PS, i)
            surviving = self._detector.interference_set(sender, receiver)
            self.reruns += 1
            masked = remaining - surviving                # delta-IR
            if not masked:
                continue
            culprits.append(CulpritPair(index, min(masked)))
            remaining -= masked
        report.culprit_pairs = culprits
        return culprits
