"""Report diagnosis — Algorithm 2 (paper §4.4).

"To find the root-cause sender system calls, KIT uses a differential
testing approach — for every system call in the sender program, KIT
checks whether skipping this sender call during execution will mask the
functional interference."

The implementation follows the pseudocode exactly: iterate the sender's
calls in inverse order, remove each (cumulatively — ``PS`` keeps
shrinking), re-run the test case through the full detection filter
chain, and attribute every receiver call whose interference disappeared
(``ΔIR``) to the removed sender call.  Only the *first* receiver call of
``ΔIR`` joins the culprit list, because downstream receiver divergences
are dependency fallout of the first one.

Because removal is cumulative *from the top*, every sender variant
Algorithm 2 executes is exactly a **prefix** of the original sender:
the variant tested after removing call *i* contains the live calls
below *i* and holes everywhere else, and holes execute as no-ops (no
state change, no timer tick).  So instead of replaying each prefix from
the snapshot, the diagnoser steps through the original sender *once*,
checkpointing a segmented state delta every few live calls — the
memoized machine states of every variant Algorithm 2 will ever need.
Each differential re-run then restores ``base + nearest checkpoint``,
replays at most a couple of slots, and runs only the receiver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..corpus.program import TestProgram
from ..vm.machine import SENDER
from .detection import Detector
from .execution import PreparedSenderState
from .report import CulpritPair, TestReport

#: Live calls between prefix-state checkpoints.  A delta capture costs
#: roughly ten syscall executions, so checkpointing every call makes
#: the memo *slower* than plain prefix replay on long senders; stride 4
#: keeps the worst-case replay at three slots while cutting captures
#: fourfold, which is near the optimum for both short and long senders.
PREFIX_CHECKPOINT_STRIDE = 4


class Diagnoser:
    """Runs Algorithm 2 over confirmed reports."""

    def __init__(self, detector: Detector, prefix_memo: bool = True):
        self._detector = detector
        #: Reuse memoized sender prefix states (needs segmented
        #: snapshots; full-restore machines replay prefixes as before).
        self._prefix_memo = prefix_memo
        #: Differential re-executions performed (diagnosis cost metric).
        self.reruns = 0
        #: Re-runs served from a memoized prefix state instead of a
        #: full sender replay (§6.5 sender-cache telemetry).
        self.prefix_reuses = 0

    def diagnose(self, report: TestReport) -> List[CulpritPair]:
        """Identify the culprit (sender, receiver) syscall pairs."""
        sender = report.case.sender
        receiver = report.case.receiver
        remaining: Set[int] = set(report.interfered_indices)
        culprits: List[CulpritPair] = []
        live = sender.live_call_indices()
        prefixes = self._capture_prefixes(sender, live) if remaining else None
        for index in reversed(live):
            if not remaining:
                break
            sender = sender.without_call(index)          # PS <- RemoveCall(PS, i)
            prepared = prefixes.get(index) if prefixes is not None else None
            surviving = self._detector.interference_set(sender, receiver,
                                                        prepared=prepared)
            self.reruns += 1
            if prepared is not None:
                self.prefix_reuses += 1
            masked = remaining - surviving                # delta-IR
            if not masked:
                continue
            culprits.append(CulpritPair(index, min(masked)))
            remaining -= masked
        report.culprit_pairs = culprits
        return culprits

    def _capture_prefixes(self, sender: TestProgram, live: List[int]
                          ) -> Optional[Dict[int, PreparedSenderState]]:
        """One stepped sender pass → a prefix state per live call.

        The state *before* live call ``i`` executes is the post-sender
        state of the variant whose calls ``>= i`` were all removed; its
        record list is the executed prefix padded with the holes the
        variant would have produced.  Capturing a delta at every live
        call would cost more than the replays it saves — one capture
        pickles every dirty group, an order of magnitude more than one
        syscall — so deltas are checkpointed every
        :data:`PREFIX_CHECKPOINT_STRIDE` live calls and the in-between
        variants record a ``(program, start, stop)`` replay range:
        restore the checkpoint, deterministically re-execute at most
        ``stride - 1`` slots.  Injected faults during the pass propagate
        to the per-report retry wrapper, exactly as a faulted replay
        would.
        """
        machine = self._detector.machine
        if not self._prefix_memo or not machine.supports_state_deltas \
                or not live:
            return None
        machine.reset()
        session = machine.begin_stepped(SENDER, sender)
        total = len(sender.calls)
        prefixes: Dict[int, PreparedSenderState] = {}
        checkpoint = None
        checkpoint_pos = 0
        since_checkpoint = 0
        for index in sorted(live):
            while session.position < index:
                session.step()
            records = session.records_so_far()
            records.extend([None] * (total - len(records)))
            if checkpoint is None \
                    or since_checkpoint >= PREFIX_CHECKPOINT_STRIDE:
                checkpoint = machine.capture_state_delta()
                checkpoint_pos = index
                since_checkpoint = 0
                prefixes[index] = PreparedSenderState(checkpoint, records)
            else:
                prefixes[index] = PreparedSenderState(
                    checkpoint, records,
                    replay=(sender, checkpoint_pos, index))
            since_checkpoint += 1
        return prefixes
