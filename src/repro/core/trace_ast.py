"""System-call trace ASTs and the comparison algorithm (paper §4.3.2).

A receiver execution's syscall records are decoded into an abstract
syntax tree: one child of the root per program call slot, with subtrees
for the return value, errno, and every decoded out-parameter (file
contents split per line, stat structs split per field, …).  Fine-grained
structure is the point — it lets the non-determinism filter mark *just*
the timestamp leaf of an ``fstat`` result while the size leaf stays
comparable (the paper's motivating example).

:func:`syscall_trace_cmp` is Algorithm 1 verbatim: recurse while both
nodes are deterministic; report the node pair when values or child
counts differ; halt the subtree when either side carries ``det=False``.

Tree positions are identified by *paths* (tuples of child indices), which
is how non-determinism marks computed from one set of runs are applied
to freshly built trees of the same program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..kernel.errno import errno_name
from ..vm.executor import SyscallRecord

Path = Tuple[int, ...]


@dataclass
class TraceNode:
    """One node of a syscall-trace AST."""

    label: str
    value: Optional[str] = None
    children: List["TraceNode"] = field(default_factory=list)
    #: Algorithm 1's det flag; False = result is non-deterministic.
    det: bool = True

    def child(self, index: int) -> "TraceNode":
        return self.children[index]

    def walk(self, path: Path = ()) -> Iterator[Tuple[Path, "TraceNode"]]:
        yield path, self
        for index, child in enumerate(self.children):
            yield from child.walk(path + (index,))

    def at(self, path: Path) -> Optional["TraceNode"]:
        node = self
        for index in path:
            if index >= len(node.children):
                return None
            node = node.children[index]
        return node

    def render(self, indent: int = 0) -> str:  # pragma: no cover - debug aid
        det = "" if self.det else " [nondet]"
        line = "  " * indent + f"{self.label}={self.value!r}{det}"
        return "\n".join([line] + [c.render(indent + 1) for c in self.children])


@dataclass(frozen=True)
class NodeDiff:
    """One divergence reported by Algorithm 1."""

    path: Path
    label: str
    value_a: Optional[str]
    value_b: Optional[str]

    @property
    def call_index(self) -> Optional[int]:
        """The receiver call this divergence belongs to (root child index)."""
        return self.path[0] if self.path else None


# -- building -------------------------------------------------------------------


def build_trace_ast(records: Sequence[Optional[SyscallRecord]]) -> TraceNode:
    """Decode an execution's records into a trace AST.

    Removed calls (holes from Algorithm 2's RemoveCall) keep their child
    slot so call indices stay aligned across program variants.
    """
    root = TraceNode("trace", "trace")
    for index, record in enumerate(records):
        if record is None:
            root.children.append(TraceNode(f"call{index}", "removed"))
            continue
        call = TraceNode(f"call{index}", record.name)
        call.children.append(TraceNode("ret", str(record.retval)))
        call.children.append(
            TraceNode("errno", errno_name(record.errno) if record.errno else "OK")
        )
        for key in sorted(record.details):
            call.children.append(_decode_detail(key, record.details[key]))
        root.children.append(call)
    return root


def _decode_detail(key: str, value: Any) -> TraceNode:
    if isinstance(value, dict):
        node = TraceNode(key, key)
        for sub_key in sorted(value):
            node.children.append(_decode_detail(sub_key, value[sub_key]))
        return node
    if isinstance(value, (list, tuple)):
        node = TraceNode(key, key)
        for index, item in enumerate(value):
            node.children.append(TraceNode(f"{key}[{index}]", str(item)))
        return node
    if isinstance(value, str) and "\n" in value:
        # File contents: one leaf per line (strace-decoder equivalent).
        node = TraceNode(key, key)
        for index, line in enumerate(value.split("\n")):
            node.children.append(TraceNode(f"line{index}", line))
        return node
    return TraceNode(key, str(value))


# -- Algorithm 1 -------------------------------------------------------------------


def syscall_trace_cmp(tree_a: TraceNode, tree_b: TraceNode,
                      path: Path = ()) -> List[NodeDiff]:
    """Compare two trace ASTs; return the differing node pairs.

    Faithful to Algorithm 1: comparison of a subtree halts when either
    node is flagged non-deterministic; a value or child-count mismatch
    reports the node pair and does not descend further.
    """
    diffs: List[NodeDiff] = []
    if not (tree_a.det and tree_b.det):
        return diffs
    if tree_a.value != tree_b.value or len(tree_a.children) != len(tree_b.children):
        diffs.append(NodeDiff(path, tree_a.label, tree_a.value, tree_b.value))
        return diffs
    for index in range(len(tree_a.children)):
        diffs.extend(
            syscall_trace_cmp(tree_a.children[index], tree_b.children[index],
                              path + (index,))
        )
    return diffs


# -- non-determinism marks -----------------------------------------------------------


def nondet_paths_from_runs(trees: Sequence[TraceNode]) -> FrozenSet[Path]:
    """Paths whose node varies across *trees* of the same program.

    A node is non-deterministic if its value or child count differs in
    any pair of runs; when the child count differs, descent stops (the
    whole subtree is summarized by one mark), matching how the det flag
    halts Algorithm 1.
    """
    marks: set = set()
    if len(trees) < 2:
        return frozenset()

    def visit(nodes: List[TraceNode], path: Path) -> None:
        first = nodes[0]
        values = {node.value for node in nodes}
        counts = {len(node.children) for node in nodes}
        if len(counts) > 1:
            marks.add(path)
            return
        if len(values) > 1:
            marks.add(path)
            # Value variance does not preclude stable children: fstat's
            # struct node never varies, only its timestamp leaf; keep
            # descending so stable siblings stay comparable.
        for index in range(len(first.children)):
            visit([node.children[index] for node in nodes], path + (index,))

    visit(list(trees), ())
    return frozenset(marks)


def apply_nondet_marks(tree: TraceNode, marks: FrozenSet[Path]) -> TraceNode:
    """Set ``det=False`` on every marked path of *tree* (in place)."""
    for path in marks:
        node = tree.at(path)
        if node is not None:
            node.det = False
    return tree
