"""Concurrency functional interference testing — the §7 extension.

KIT's two-phase execution (sender fully, then receiver) cannot witness
*transient* interference: a sender that perturbs shared kernel state and
restores it before finishing — create a socket, bump the global
counter, close it — leaves nothing for the receiver to observe.  The
paper notes most known bugs do not need concurrency, and proposes
combining KIT with concurrency testing tools as future work.

This module is that combination at syscall granularity.  A *schedule* is
a string over ``{'S', 'R'}`` fixing the syscall interleaving of the two
programs; the two-phase baseline is simply ``"SS…RR…"``.  For each test
case the detector:

1. computes the receiver-alone baseline and its non-determinism marks,
   exactly as the sequential detector does;
2. replays the pair under each schedule in a bounded, deterministic
   schedule set (snapshot-restored per schedule);
3. applies the same filter chain (Algorithm 1 + non-det marks + the
   specification) to the receiver's trace from each schedule;
4. reports interference along with the *witness schedules* on which it
   manifested.

Interference visible under some schedule but not the sequential one is
precisely the transient class.  Everything stays deterministic: the
schedule, not wall-clock racing, decides the interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..corpus.program import TestProgram
from ..vm.executor import Executor, SteppedExecution
from ..vm.machine import RECEIVER, SENDER, Machine
from .nondet import NondetAnalyzer
from .spec import Specification
from .trace_ast import apply_nondet_marks, build_trace_ast, syscall_trace_cmp


def sequential_schedule(sender_calls: int, receiver_calls: int) -> str:
    """The paper's two-phase order: all sender calls, then the receiver."""
    return "S" * sender_calls + "R" * receiver_calls


def round_robin_schedule(sender_calls: int, receiver_calls: int,
                         receiver_leads: int = 0) -> str:
    """Alternate S/R after letting the receiver run *receiver_leads* calls."""
    tokens: List[str] = ["R"] * min(receiver_leads, receiver_calls)
    remaining_r = receiver_calls - len(tokens)
    remaining_s = sender_calls
    while remaining_s or remaining_r:
        if remaining_s:
            tokens.append("S")
            remaining_s -= 1
        if remaining_r:
            tokens.append("R")
            remaining_r -= 1
    return "".join(tokens)


def default_schedules(sender_calls: int, receiver_calls: int) -> List[str]:
    """A bounded, deterministic schedule set: the sequential baseline plus
    round-robins with every receiver lead-in length."""
    schedules = [sequential_schedule(sender_calls, receiver_calls)]
    for lead in range(receiver_calls):
        candidate = round_robin_schedule(sender_calls, receiver_calls, lead)
        if candidate not in schedules:
            schedules.append(candidate)
    return schedules


@dataclass
class ConcurrentReport:
    """Interference witnessed under at least one interleaving."""

    sender: TestProgram
    receiver: TestProgram
    #: schedule -> interfered receiver call indices (protected only).
    witnesses: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def schedules(self) -> List[str]:
        return sorted(self.witnesses)

    @property
    def transient_only(self) -> bool:
        """True when the sequential (two-phase) schedule did NOT witness
        the interference — the class invisible to baseline functional
        interference testing."""
        for schedule in self.witnesses:
            sender_calls = schedule.count("S")
            if schedule == "S" * sender_calls + "R" * (len(schedule)
                                                       - sender_calls):
                return False
        return True


class ConcurrentDetector:
    """Schedule-exploring functional interference detector."""

    def __init__(self, machine: Machine, spec: Specification,
                 nondet: Optional[NondetAnalyzer] = None):
        self._machine = machine
        self._spec = spec
        self._nondet = nondet or NondetAnalyzer(machine)
        self.schedules_executed = 0

    def check_case(self, sender: TestProgram, receiver: TestProgram,
                   schedules: Optional[Sequence[str]] = None
                   ) -> Optional[ConcurrentReport]:
        """Run the pair under every schedule; None when nothing survives."""
        sender_calls = len(sender.calls)
        receiver_calls = len(receiver.calls)
        if schedules is None:
            schedules = default_schedules(sender_calls, receiver_calls)
        self._validate(schedules, sender_calls, receiver_calls)

        machine = self._machine
        machine.reset()
        alone = machine.run(RECEIVER, receiver)
        marks = self._nondet.nondet_paths(receiver)

        witnesses: Dict[str, List[int]] = {}
        for schedule in schedules:
            receiver_result = self._run_schedule(sender, receiver, schedule)
            self.schedules_executed += 1
            tree_alone = apply_nondet_marks(build_trace_ast(alone.records),
                                            marks)
            tree_sched = apply_nondet_marks(
                build_trace_ast(receiver_result.records), marks)
            diffs = syscall_trace_cmp(tree_alone, tree_sched)
            interfered: Set[int] = set()
            for diff in diffs:
                index = diff.call_index
                if index is None:
                    continue
                record = receiver_result.records[index] \
                    if index < len(receiver_result.records) else None
                if record is not None and \
                        self._spec.call_accesses_protected(record):
                    interfered.add(index)
            if interfered:
                witnesses[schedule] = sorted(interfered)
        if not witnesses:
            return None
        return ConcurrentReport(sender, receiver, witnesses)

    # -- internals -----------------------------------------------------------

    def _run_schedule(self, sender: TestProgram, receiver: TestProgram,
                      schedule: str):
        machine = self._machine
        machine.reset()
        sender_session = SteppedExecution(
            Executor(machine.kernel, machine.task_for(SENDER)), sender)
        receiver_session = SteppedExecution(
            Executor(machine.kernel, machine.task_for(RECEIVER)), receiver)
        for token in schedule:
            if token == "S":
                sender_session.step()
            else:
                receiver_session.step()
        return receiver_session.result()

    @staticmethod
    def _validate(schedules: Sequence[str], sender_calls: int,
                  receiver_calls: int) -> None:
        for schedule in schedules:
            if schedule.count("S") != sender_calls or \
                    schedule.count("R") != receiver_calls:
                raise ValueError(
                    f"schedule {schedule!r} does not cover "
                    f"{sender_calls}xS + {receiver_calls}xR")
            if set(schedule) - {"S", "R"}:
                raise ValueError(f"bad schedule token in {schedule!r}")
