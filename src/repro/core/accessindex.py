"""On-disk columnar access-map index with merge-join pairing.

The paper's data-flow map covers 98,853 profiled programs; holding every
access point in one dict product (the in-memory
:class:`~repro.core.dataflow.DataFlowIndex`) is what caps this repro at
a few hundred.  This module is the paper-scale backend: access points
spill to *sorted run segments* on disk, each stored column-wise (addr,
seq, prog, call, width, ip, stack-hash — compact uint64 arrays instead
of pickled objects), and pairing becomes a streaming **merge-join** over
the sorted address columns of the write and read runs.

Peak memory is proportional to one spill buffer plus one address group
(the points at a single kernel address), never to the corpus:

* ``build`` consumes profiles as an *iterator* — callers can feed it
  straight from a batched profiler without materializing the profile
  list;
* every run segment is written sorted by ``(addr, seq)`` where ``seq``
  is a global extraction sequence number, so a k-way heap merge over
  runs replays points in exactly the insertion order the in-memory
  index would have used — generation's reservoir sampling consumes its
  RNG identically and the resulting pair set is byte-identical;
* call stacks are interned through a stable 64-bit digest into one
  sidecar table (distinct stacks grow with kernel code paths, not with
  corpus size).

The index is re-iterable: runs persist under the index directory until
:meth:`close`, so generation can stream the join once for clustering
and once more for flow counting.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import pickle
import shutil
import struct
import tempfile
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .dataflow import (
    AccessPoint,
    Overlap,
    Stack,
    iter_read_points,
    iter_write_points,
)
from .profile import ProgramProfile
from .spec import Specification

#: Columns of one run segment, in file order.  ``seq`` is the global
#: extraction sequence number that freezes insertion order across runs.
COLUMNS = ("addr", "seq", "prog", "call", "width", "ip", "stack")

_MAGIC = b"KAI1"
_HEADER = struct.Struct("<4sQ")
#: Points buffered before a sorted run spills to disk.
DEFAULT_RUN_POINTS = 8192
#: Rows a run cursor reads per chunk while merging.
_CHUNK_ROWS = 1024


def stack_key(stack: Stack) -> int:
    """Stable 64-bit digest of a call stack (sidecar interning key)."""
    payload = b",".join(str(fid).encode() for fid in stack)
    return int.from_bytes(hashlib.sha1(payload).digest()[:8], "big")


class _RunWriter:
    """Buffers points and spills them as sorted columnar run segments."""

    def __init__(self, directory: str, prefix: str, run_points: int,
                 stacks: Dict[int, Stack]):
        self._directory = directory
        self._prefix = prefix
        self._run_points = run_points
        self._stacks = stacks
        self._rows: List[Tuple[int, ...]] = []
        self.paths: List[str] = []
        self.points = 0

    def add(self, seq: int, point: AccessPoint) -> None:
        key = stack_key(point.stack)
        known = self._stacks.get(key)
        if known is None:
            self._stacks[key] = point.stack
        elif known != point.stack:  # pragma: no cover - 2^-64 event
            raise RuntimeError(f"stack digest collision on {key:#x}")
        self._rows.append((point.addr, seq, point.prog_index,
                           point.call_index, point.width, point.ip, key))
        self.points += 1
        if len(self._rows) >= self._run_points:
            self.spill()

    def spill(self) -> None:
        if not self._rows:
            return
        self._rows.sort()  # (addr, seq, ...) — addr-major, seq-minor
        path = os.path.join(self._directory,
                            f"{self._prefix}_{len(self.paths):05d}.run")
        with open(path, "wb") as handle:
            handle.write(_HEADER.pack(_MAGIC, len(self._rows)))
            for column in range(len(COLUMNS)):
                # uint64: kernel addresses/ips are 0xffff… values.
                handle.write(array("Q", (row[column]
                                         for row in self._rows)).tobytes())
        self.paths.append(path)
        self._rows = []


class _RunCursor:
    """Streams one sorted run back, a bounded chunk of rows at a time."""

    def __init__(self, path: str):
        self._path = path
        with open(path, "rb") as handle:
            magic, self._rows = _HEADER.unpack(handle.read(_HEADER.size))
        if magic != _MAGIC:
            raise ValueError(f"bad run segment {path!r}")

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        with open(self._path, "rb") as handle:
            for start in range(0, self._rows, _CHUNK_ROWS):
                count = min(_CHUNK_ROWS, self._rows - start)
                columns = []
                for column in range(len(COLUMNS)):
                    handle.seek(_HEADER.size + 8 * (column * self._rows
                                                    + start))
                    data = array("Q")
                    data.frombytes(handle.read(8 * count))
                    columns.append(data)
                yield from zip(*columns)


class ColumnarAccessIndex:
    """The on-disk, merge-join backend of the data-flow map.

    Implements the same query surface generation consumes from
    :class:`~repro.core.dataflow.DataFlowIndex` —
    :meth:`iter_overlaps`, :meth:`overlap_addresses`,
    :meth:`total_flow_count` — but streams every answer off sorted run
    segments instead of an in-memory dict product.
    """

    def __init__(self, directory: Optional[str] = None,
                 run_points: int = DEFAULT_RUN_POINTS):
        if run_points < 1:
            raise ValueError("run_points must be >= 1")
        self._owns_dir = directory is None
        self._directory = (tempfile.mkdtemp(prefix="kit-accessindex-")
                           if directory is None else directory)
        os.makedirs(self._directory, exist_ok=True)
        self._stacks: Dict[int, Stack] = {}
        self._writes = _RunWriter(self._directory, "w", run_points,
                                  self._stacks)
        self._reads = _RunWriter(self._directory, "r", run_points,
                                 self._stacks)
        self._seq = 0
        self._sealed = False
        self._flow_count: Optional[int] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, profiles: Iterable[ProgramProfile], spec: Specification,
              directory: Optional[str] = None,
              run_points: int = DEFAULT_RUN_POINTS) -> "ColumnarAccessIndex":
        """Index a profile stream; *profiles* may be any iterable."""
        index = cls(directory, run_points=run_points)
        for profile in profiles:
            index.add_profile(profile, spec)
        index.seal()
        return index

    def add_profile(self, profile: ProgramProfile,
                    spec: Specification) -> None:
        if self._sealed:
            raise RuntimeError("index already sealed")
        for point in iter_write_points(profile):
            self._writes.add(self._seq, point)
            self._seq += 1
        for point in iter_read_points(profile, spec):
            self._reads.add(self._seq, point)
            self._seq += 1

    def seal(self) -> None:
        """Flush buffered points and persist the stack sidecar."""
        if self._sealed:
            return
        self._writes.spill()
        self._reads.spill()
        with open(os.path.join(self._directory, "stacks.pkl"),
                  "wb") as handle:
            pickle.dump(self._stacks, handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        self._sealed = True

    # -- telemetry -----------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def write_points(self) -> int:
        return self._writes.points

    @property
    def read_points(self) -> int:
        return self._reads.points

    @property
    def run_segments(self) -> int:
        return len(self._writes.paths) + len(self._reads.paths)

    def bytes_on_disk(self) -> int:
        paths = self._writes.paths + self._reads.paths
        return sum(os.path.getsize(path) for path in paths
                   if os.path.exists(path))

    # -- the merge-join ------------------------------------------------------

    def _merged(self, paths: List[str]) -> Iterator[Tuple[int, ...]]:
        cursors = [iter(_RunCursor(path)) for path in paths]
        # Runs are sorted by (addr, seq) and seq values never repeat, so
        # the heap merge is total and deterministic.
        return heapq.merge(*cursors)

    def _groups(self, paths: List[str]
                ) -> Iterator[Tuple[int, List[AccessPoint]]]:
        """Merge runs and group rows into per-address point lists."""
        addr: Optional[int] = None
        group: List[AccessPoint] = []
        for row in self._merged(paths):
            if row[0] != addr:
                if group:
                    yield addr, group  # type: ignore[misc]
                addr, group = row[0], []
            group.append(AccessPoint(
                prog_index=row[2], call_index=row[3], addr=row[0],
                width=row[4], ip=row[5], stack=self._stacks[row[6]]))
        if group:
            yield addr, group  # type: ignore[misc]

    def iter_overlaps(self) -> Iterator[Overlap]:
        """Stream (addr, writers, readers) join rows in address order.

        The classic sort-merge join: both sides arrive sorted by
        address, the two group iterators advance in lockstep, and only
        the current address's points are ever resident.  Point order
        within a group is seq order == the in-memory index's insertion
        order, so downstream sampling is byte-compatible.
        """
        if not self._sealed:
            raise RuntimeError("seal() the index before querying it")
        flows = 0
        writes = self._groups(self._writes.paths)
        reads = self._groups(self._reads.paths)
        write_row = next(writes, None)
        read_row = next(reads, None)
        while write_row is not None and read_row is not None:
            if write_row[0] < read_row[0]:
                write_row = next(writes, None)
            elif write_row[0] > read_row[0]:
                read_row = next(reads, None)
            else:
                flows += len(write_row[1]) * len(read_row[1])
                yield write_row[0], write_row[1], read_row[1]
                write_row = next(writes, None)
                read_row = next(reads, None)
        self._flow_count = flows

    # -- DataFlowIndex-compatible queries ------------------------------------

    def overlap_addresses(self) -> List[int]:
        return [addr for addr, __, __ in self.iter_overlaps()]

    def total_flow_count(self) -> int:
        if self._flow_count is None:
            for __ in self.iter_overlaps():
                pass
        return self._flow_count or 0

    def flows_at(self, addr: int
                 ) -> Iterator[Tuple[AccessPoint, AccessPoint]]:
        for overlap_addr, writers, readers in self.iter_overlaps():
            if overlap_addr != addr:
                continue
            for write_point in writers:
                for read_point in readers:
                    yield write_point, read_point
            return

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Delete the index's on-disk runs (owned temp dirs entirely)."""
        if self._owns_dir:
            shutil.rmtree(self._directory, ignore_errors=True)
            return
        for path in self._writes.paths + self._reads.paths:
            try:
                os.unlink(path)
            except OSError:
                pass

    def __enter__(self) -> "ColumnarAccessIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
