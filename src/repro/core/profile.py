"""Per-program kernel profiling (paper §4.1.1, §6.5).

"KIT executes each test program four times… KIT executes each test
program twice in both the sender and receiver container.  In one
execution KIT collects the system call trace and in another execution it
collects the execution trace… Two trace collections have to run
separately as collecting execution traces using instrumentation may
affect the system call trace."

Every run restores the VM snapshot first, so profiles are functions of
the program alone (the stable execution environment of §4.1.1).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import (Any, Dict, Iterable, Iterator, List, Optional, Sequence,
                    Tuple)

from ..corpus.program import TestProgram
from ..faults.plan import FaultPlan, call_with_fault_retries
from ..kernel.ktrace import KernelTracer
from ..vm.cluster import run_distributed
from ..vm.executor import CallAccesses, SyscallRecord
from ..vm.machine import RECEIVER, SENDER, Machine, MachineConfig


@dataclass
class ContainerProfile:
    """One container's view of a program: syscall trace + memory accesses."""

    records: List[Optional[SyscallRecord]]
    accesses: List[Optional[CallAccesses]]

    def total_accesses(self) -> int:
        return sum(len(a) for a in self.accesses if a is not None)


@dataclass
class ProgramProfile:
    """Both containers' profiles of one test program."""

    index: int
    program: TestProgram
    sender: ContainerProfile
    receiver: ContainerProfile


class Profiler:
    """Runs the 4-execution profiling protocol against a machine."""

    def __init__(self, machine: Machine):
        self._machine = machine
        self.runs_executed = 0

    def profile(self, program: TestProgram, index: int = 0) -> ProgramProfile:
        return ProgramProfile(
            index=index,
            program=program,
            sender=self._profile_container(SENDER, program),
            receiver=self._profile_container(RECEIVER, program),
        )

    def _profile_container(self, container: str,
                           program: TestProgram) -> ContainerProfile:
        machine = self._machine
        # Run 1: plain syscall trace, no instrumentation attached.
        machine.reset()
        plain = machine.run(container, program)
        self.runs_executed += 1
        # Run 2: execution trace under instrumentation.
        machine.reset()
        machine.attach_tracer(KernelTracer())
        traced = machine.run(container, program, profile=True)
        machine.attach_tracer(None)
        self.runs_executed += 1
        return ContainerProfile(records=plain.records,
                                accesses=traced.accesses or [])

    def profile_corpus(self, corpus: Sequence[TestProgram]) -> List[ProgramProfile]:
        return [self.profile(program, index) for index, program in enumerate(corpus)]


def iter_profiles_batched(profiler: Any, corpus: Iterable[TestProgram],
                          batch_size: int = 64) -> Iterator[ProgramProfile]:
    """Profile a program stream batch-wise, executions ordered by hash.

    Yields profiles in corpus order while, inside each batch, the actual
    profiling runs happen in ascending program-hash order — consecutive
    executions of hash-adjacent programs ride the sender-state cache and
    land in the same :class:`~repro.core.profile_store.ProfileStore`
    fan-out shard.  Safe because each profiling run restores the
    snapshot first: a profile is a pure function of the program, so
    execution order cannot change its content.  Peak memory is one
    batch of profiles, which is what lets a streamed corpus feed the
    columnar access index without materializing the profile list.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    batch: List[Tuple[int, TestProgram]] = []

    def drain() -> Iterator[ProgramProfile]:
        by_slot: Dict[int, ProgramProfile] = {}
        order = sorted(range(len(batch)),
                       key=lambda slot: batch[slot][1].hash_hex)
        for slot in order:
            index, program = batch[slot]
            by_slot[slot] = profiler.profile(program, index)
        for slot in range(len(batch)):
            yield by_slot[slot]
        batch.clear()

    for index, program in enumerate(corpus):
        batch.append((index, program))
        if len(batch) >= batch_size:
            yield from drain()
    if batch:
        yield from drain()


def profile_corpus_distributed(
        machine_config: MachineConfig, corpus: Sequence[TestProgram],
        workers: int, profile_dir: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
) -> Tuple[List[ProgramProfile], List[Any], List[Machine]]:
    """Profile *corpus* on a cluster worker pool (one job per program).

    Profiles are pure functions of (program, snapshot), and every worker
    restores the same snapshot, so fanning the corpus out over the pool
    is semantics-preserving — each worker lazily builds its own
    :class:`Profiler` (or :class:`~repro.core.profile_store
    .CachingProfiler` when *profile_dir* is set), keyed by the worker id
    the cluster stamps on its machine.  Results come back in corpus
    order regardless of scheduling.

    Returns ``(profiles, profilers, machines)`` so the caller can sum
    run counts and fold restore telemetry into the campaign stats.
    """
    profilers: Dict[int, Any] = {}
    lock = threading.Lock()

    def make_profiler(machine: Machine) -> Any:
        if profile_dir is not None:
            from .profile_store import CachingProfiler

            return CachingProfiler(machine, profile_dir)
        return Profiler(machine)

    def runner(machine: Machine, payload: Tuple[int, TestProgram]
               ) -> ProgramProfile:
        index, program = payload
        with lock:
            profiler = profilers.get(machine.cluster_worker_id)
            if profiler is None:
                profiler = make_profiler(machine)
                profilers[machine.cluster_worker_id] = profiler
        # Profiles feed generation, so there is no graceful degradation
        # here: an injected fault retries from a fresh restore (pure
        # function of the snapshot), and exhaustion fails the job loudly.
        return call_with_fault_retries(faults, profiler.profile, program,
                                       index, context=f"profile {index}")

    machines: List[Machine] = []
    job_results = run_distributed(machine_config, list(enumerate(corpus)),
                                  runner, workers=workers,
                                  machines_out=machines, faults=faults,
                                  max_job_retries=(faults.max_job_retries
                                                   if faults else 0))
    profiles: List[ProgramProfile] = []
    for job in job_results:
        if job.error is not None:
            raise RuntimeError(
                f"profiling failed on job {job.job_id}: {job.error}")
        profiles.append(job.outcome)
    with lock:
        return profiles, list(profilers.values()), machines
