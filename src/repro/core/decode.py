"""strace-style syscall trace decoding (paper §5.2).

KIT decodes syscall results to text "with a system call decoding library,
which we customize from strace".  The pipeline itself consumes the AST
form directly (:mod:`repro.core.trace_ast`), but human-readable traces
are what bug reports, logs, and the CLI show — this module renders them.

Example output::

    socket(0x11, 0x3, 0x3) = 3 <sock_packet>
    pread64(3</proc/net/ptype>, 0x1000, 0x0) = 129
      | Type Device      Function
      | ALL              packet_rcv
    connect(3<socket(UDP)>, 0xa000001, 0x1f90) = -1 EPERM
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from ..kernel.errno import errno_name
from ..vm.executor import SyscallRecord

#: Truncate rendered file contents beyond this many lines.
MAX_CONTENT_LINES = 12


def decode_record(record: SyscallRecord) -> str:
    """One record -> one strace-like line (plus indented content lines)."""
    arg_names = _arg_names(record)
    rendered_args = []
    for position, value in enumerate(record.args):
        name = arg_names[position] if position < len(arg_names) else None
        rendered_args.append(_render_arg(record, name, value))
    call = f"{record.name}({', '.join(rendered_args)})"

    if record.errno:
        line = f"{call} = -1 {errno_name(record.errno)}"
    else:
        line = f"{call} = {record.retval}"
        if record.ret_kind is not None:
            line += f" <{record.ret_kind}>"
    extras = _render_details(record)
    if extras:
        line += "\n" + "\n".join(extras)
    return line


def decode_trace(records: Sequence[Optional[SyscallRecord]]) -> str:
    """A whole execution -> multi-line strace-like text."""
    lines: List[str] = []
    for index, record in enumerate(records):
        if record is None:
            lines.append(f"# call {index} removed")
        else:
            lines.append(decode_record(record))
    return "\n".join(lines)


def _arg_names(record: SyscallRecord) -> List[str]:
    from ..kernel.syscalls import DECLS

    if record.name in DECLS:
        return [spec.name for spec in DECLS.get(record.name).args]
    return []


def _render_arg(record: SyscallRecord, name: Optional[str], value: Any) -> str:
    if isinstance(value, str):
        return '"' + value.replace('"', '\\"') + '"'
    rendered = hex(value) if isinstance(value, int) else repr(value)
    if name is not None and name in record.arg_kinds:
        subject = record.subjects.get(name)
        annotation = subject if subject else record.arg_kinds[name]
        # strace's fd annotation style: 3</proc/net/ptype>.
        return f"{value}<{annotation}>"
    return rendered


def _render_details(record: SyscallRecord) -> List[str]:
    lines: List[str] = []
    for key in sorted(record.details):
        value = record.details[key]
        if isinstance(value, str) and "\n" in value:
            content = value.rstrip("\n").split("\n")
            shown = content[:MAX_CONTENT_LINES]
            lines.extend(f"  | {line}" for line in shown)
            if len(content) > MAX_CONTENT_LINES:
                lines.append(f"  | ... ({len(content) - MAX_CONTENT_LINES} "
                             "more lines)")
        elif isinstance(value, dict):
            fields = ", ".join(f"{k}={v}" for k, v in sorted(value.items()))
            lines.append(f"  {key} = {{{fields}}}")
        elif isinstance(value, (list, tuple)):
            lines.append(f"  {key} = [{', '.join(map(str, value))}]")
        elif isinstance(value, str):
            lines.append(f"  {key} = \"{value}\"")
        else:
            lines.append(f"  {key} = {value}")
    return lines


def side_by_side(alone: Sequence[Optional[SyscallRecord]],
                 with_sender: Sequence[Optional[SyscallRecord]],
                 interfered: Iterable[int] = ()) -> str:
    """Two receiver traces, marking the interfered calls — report style."""
    marked = set(interfered)
    lines: List[str] = []
    for index in range(max(len(alone), len(with_sender))):
        marker = ">>" if index in marked else "  "
        record_a = alone[index] if index < len(alone) else None
        record_b = with_sender[index] if index < len(with_sender) else None
        first_a = decode_record(record_a).splitlines()[0] if record_a else "-"
        first_b = decode_record(record_b).splitlines()[0] if record_b else "-"
        lines.append(f"{marker} [{index}] alone: {first_a}")
        lines.append(f"{marker}     with-S: {first_b}")
    return "\n".join(lines)
