"""Test case clustering strategies (paper §4.1.2, §6.3).

"KIT clusters test cases that may trigger similar namespace behavior …
If two test cases can cause similar inter-container kernel data flows,
they are likely to trigger the same functional interference bug."

Two heuristics, as in the paper, plus the two baselines of Table 4:

* **DF-IA** — flows with the same write and read *instruction addresses*
  are similar.
* **DF-ST-k** — DF-IA plus the call-stack context of both instructions,
  with the stack depth limited to *k* frames "to avoid cluster
  explosion".
* **DF** — no clustering: every distinct flow is its own cluster (the
  234M-row baseline).
* **RAND** — no data-flow analysis at all; random program pairs (handled
  by the generator, not here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .dataflow import AccessPoint


class ClusteringStrategy:
    """Projects a data flow's endpoints onto a cluster key."""

    name: str = "abstract"

    def write_key(self, point: AccessPoint) -> Hashable:
        raise NotImplementedError

    def read_key(self, point: AccessPoint) -> Hashable:
        raise NotImplementedError

    def flow_key(self, write_point: AccessPoint,
                 read_point: AccessPoint) -> Hashable:
        return (self.write_key(write_point), self.read_key(read_point))


class DfIaStrategy(ClusteringStrategy):
    """Same write/read instruction addresses => same cluster."""

    name = "df-ia"

    def write_key(self, point: AccessPoint) -> Hashable:
        return point.ip

    def read_key(self, point: AccessPoint) -> Hashable:
        return point.ip


@dataclass
class DfStStrategy(ClusteringStrategy):
    """DF-IA refined by the call-stack context, depth-limited to *depth*."""

    depth: int = 1

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("call stack depth must be >= 1")
        self.name = f"df-st-{self.depth}"

    def write_key(self, point: AccessPoint) -> Hashable:
        return (point.ip, point.stack_suffix(self.depth))

    def read_key(self, point: AccessPoint) -> Hashable:
        return (point.ip, point.stack_suffix(self.depth))


class DfFullStrategy(ClusteringStrategy):
    """No clustering: every distinct flow endpoint pair is unique."""

    name = "df"

    def write_key(self, point: AccessPoint) -> Hashable:
        return (point.prog_index, point.call_index, point.addr, point.ip,
                point.stack)

    def read_key(self, point: AccessPoint) -> Hashable:
        return (point.prog_index, point.call_index, point.addr, point.ip,
                point.stack)


def strategy_by_name(name: str) -> ClusteringStrategy:
    """Resolve a Table-4 strategy name (``df-ia``, ``df-st-2``, ``df``)."""
    normalized = name.lower()
    if normalized == "df-ia":
        return DfIaStrategy()
    if normalized.startswith("df-st-"):
        return DfStStrategy(depth=int(normalized.rsplit("-", 1)[1]))
    if normalized == "df":
        return DfFullStrategy()
    raise ValueError(f"unknown clustering strategy {name!r} "
                     "(rand is a generation mode, not a clustering strategy)")
