"""Race-only bug scenarios (T1-T3): interference two-phase testing misses.

Each scenario pairs a sender whose syscall opens a *transient* global
window — shared kernel state perturbed and restored within one call —
with a receiver that can observe the window mid-flight.  Sequentially
the window is always closed by the time the receiver runs, so the
two-phase harness reports nothing on any corpus; only a controlled
interleaving (docs/SCHEDULING.md) that preempts the sender inside the
window exposes the bug.  This is the concurrency direction the paper's
§7 points at, packaged exactly like the Table-3 reproductions in
:mod:`repro.core.known_bugs`.

The windows (see :mod:`repro.kernel.bugs` ``RACE_BUGS``):

* **T1** — ``sendto`` charges in-flight fragment memory to a global
  counter and releases it after delivery; ``/proc/net/sockstat``'s
  ``FRAG`` line reads the counter.
* **T2** — ``msgget`` publishes the new key in a global pending table
  (``ipc_addid``-style early publish) before registration commits;
  ``/proc/sysvipc/msg`` lists pending entries.
* **T3** — ``register_netdev`` keeps the device name in a global
  pending set while delivering uevents; ``/proc/net/dev`` lists
  in-flight registrations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..corpus.program import TestProgram, prog
from ..corpus.seeds import seed_programs
from ..kernel.bugs import RACE_BUGS, known_race_kernel, race_kernel
from ..kernel.ipc import IPC_CREAT
from ..kernel.vfs import O_RDONLY
from ..vm.machine import MachineConfig
from .pipeline import CampaignConfig, CampaignResult, Kit


@dataclass(frozen=True)
class RaceScenario:
    """One race-only bug's reproduction setup."""

    bug_id: str
    description: str
    sender: TestProgram
    receiver: TestProgram
    #: The procfs surface the receiver observes the window through.
    observed_via: str


def race_scenarios() -> Dict[str, RaceScenario]:
    seeds = seed_programs()
    return {
        "T1": RaceScenario(
            "T1",
            "UDP send charges global fragment memory in flight",
            sender=seeds["udp_send"],
            receiver=seeds["read_sockstat"],
            observed_via=RACE_BUGS["T1"][2],
        ),
        "T2": RaceScenario(
            "T2",
            "msgget publishes the key globally before registration commits",
            sender=prog(("msgget", 0xAB, IPC_CREAT)),
            receiver=prog(
                ("open", "/proc/sysvipc/msg", O_RDONLY),
                ("pread64", "r0", 4096, 0),
            ),
            observed_via=RACE_BUGS["T2"][2],
        ),
        "T3": RaceScenario(
            "T3",
            "register_netdev keeps a global pending entry while delivering",
            sender=seeds["netdev_add"],
            receiver=seeds["read_net_dev"],
            observed_via=RACE_BUGS["T3"][2],
        ),
    }


def race_corpus(bug_ids: Optional[List[str]] = None) -> List[TestProgram]:
    """The campaign corpus for the selected scenarios (deduplicated)."""
    scenarios = race_scenarios()
    ids = bug_ids or sorted(scenarios)
    corpus: List[TestProgram] = []
    seen = set()
    for bug_id in ids:
        scenario = scenarios[bug_id.upper()]
        for program in (scenario.sender, scenario.receiver):
            if program.hash_hex not in seen:
                seen.add(program.hash_hex)
                corpus.append(program)
    return corpus


def race_machine_config(bug_id: Optional[str] = None) -> MachineConfig:
    """A machine with every race bug (default) or exactly one."""
    bugs = race_kernel() if bug_id is None else known_race_kernel(bug_id)
    return MachineConfig(bugs=bugs)


def race_campaign_config(bug_id: Optional[str] = None,
                         interleave: bool = True,
                         **knobs) -> CampaignConfig:
    """A ready-to-run campaign over the race corpus.

    Sequential by construction when ``interleave=False`` — the baseline
    every schedule-gate comparison starts from.  Extra *knobs* override
    any :class:`~repro.core.pipeline.CampaignConfig` field.
    """
    config = CampaignConfig(
        machine=race_machine_config(bug_id),
        corpus=race_corpus([bug_id] if bug_id is not None else None),
        interleave=interleave,
    )
    return replace(config, **knobs) if knobs else config


def reproduce_races(bug_id: Optional[str] = None, interleave: bool = True,
                    **knobs) -> CampaignResult:
    """Run the race-scenario campaign and return its result."""
    return Kit(race_campaign_config(bug_id, interleave, **knobs)).run()
