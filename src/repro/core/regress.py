"""Campaign regression diffing: compare namespace isolation across kernels.

The natural downstream use of a KIT-style tool is regression testing —
run the same campaign against two kernels (a release and a patched
build, or two versions) and ask *which interference appeared,
disappeared, or persisted*.  This module diffs two
:class:`~repro.core.pipeline.CampaignResult`\\ s by their AGG-RS group
signatures: the (receiver call, sender call) pair is the paper's
identity for "the same functional interference" (§4.4), so it is the
right join key across campaigns.

Typical use::

    before = Kit(CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                                corpus=corpus)).run()
    after = Kit(CampaignConfig(machine=MachineConfig(bugs=fixed_kernel()),
                               corpus=corpus)).run()
    diff = diff_campaigns(before, after)
    assert not diff.introduced, "the patch must not add interference"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .pipeline import CampaignResult
from .report import TestReport

GroupKey = Tuple[str, str]  # (receiver signature, sender signature)

#: Join levels for cross-campaign diffing.  AGG-RS keys carry the sender
#: signature too, but *which* sender represents a cluster is sampled per
#: campaign — the same underlying interference can resurface under a new
#: sender signature and masquerade as "introduced".  The receiver-level
#: key (AGG-R) identifies the observation point alone and is stable, so
#: gating decisions should use it; AGG-RS detail is for humans.
LEVEL_AGG_RS = "agg-rs"
LEVEL_AGG_R = "agg-r"


@dataclass
class CampaignDiff:
    """AGG-RS-level difference between two campaigns."""

    #: Present only in the "after" campaign: new interference.
    introduced: Dict[GroupKey, List[TestReport]] = field(default_factory=dict)
    #: Present only in the "before" campaign: fixed interference.
    resolved: Dict[GroupKey, List[TestReport]] = field(default_factory=dict)
    #: Present in both.
    persisting: Dict[GroupKey, List[TestReport]] = field(default_factory=dict)

    @property
    def clean_fix(self) -> bool:
        """True when everything was resolved and nothing new appeared."""
        return not self.introduced and not self.persisting

    def render(self) -> str:
        lines = [
            f"introduced: {len(self.introduced)} group(s)",
            f"resolved:   {len(self.resolved)} group(s)",
            f"persisting: {len(self.persisting)} group(s)",
        ]
        for title, groups in (("+ introduced", self.introduced),
                              ("- resolved", self.resolved),
                              ("= persisting", self.persisting)):
            for (receiver_sig, sender_sig) in sorted(groups):
                arrow = f"{sender_sig}  ->  " if sender_sig else ""
                lines.append(f"  {title}: {arrow}{receiver_sig}")
        return "\n".join(lines)


def diff_campaigns(before: CampaignResult, after: CampaignResult,
                   level: str = LEVEL_AGG_R) -> CampaignDiff:
    """Diff two campaigns by group signature.

    *level* selects the join key: ``"agg-r"`` (default, stable across
    campaigns — use for gating) or ``"agg-rs"`` (finer, representative-
    dependent — use for inspection).
    """
    if level == LEVEL_AGG_R:
        before_groups = {(key, ""): value
                         for key, value in before.groups.agg_r.items()}
        after_groups = {(key, ""): value
                        for key, value in after.groups.agg_r.items()}
    elif level == LEVEL_AGG_RS:
        before_groups = dict(before.groups.agg_rs)
        after_groups = dict(after.groups.agg_rs)
    else:
        raise ValueError(f"unknown diff level {level!r}")
    diff = CampaignDiff()
    for key, reports in after_groups.items():
        if key in before_groups:
            diff.persisting[key] = reports
        else:
            diff.introduced[key] = reports
    for key, reports in before_groups.items():
        if key not in after_groups:
            diff.resolved[key] = reports
    return diff
