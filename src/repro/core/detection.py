"""Functional interference bug detection (paper §4.3).

For each test case:

1. run both executions (§4.2) and build the receiver trace ASTs,
2. compare raw — no divergence means the case passes,
3. apply the receiver program's non-determinism marks (§4.3.2) and
   compare again — divergence that evaporates was timing noise,
4. keep only divergences on syscalls that access namespace-protected
   resources per the specification (§4.3.1),
5. what survives is a :class:`~repro.core.report.TestReport`.

The stage-by-stage outcome taxonomy feeds Table 5 (report filtering
effectiveness) directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..corpus.program import TestProgram
from ..vm.machine import Machine
from .execution import (
    BaselineCache,
    PreparedSenderState,
    SenderStateCache,
    TestCaseRunner,
)
from .generation import TestCase
from .nondet import NondetAnalyzer
from .report import TestReport
from .schedule import ScheduleExplorer
from .spec import Specification
from .trace_ast import (
    NodeDiff,
    apply_nondet_marks,
    build_trace_ast,
    syscall_trace_cmp,
)


class Outcome(enum.Enum):
    """What happened to one executed test case."""

    PASS = "pass"                      # no divergence at all
    FILTERED_NONDET = "nondet"        # divergence was non-deterministic
    FILTERED_RESOURCE = "resource"    # divergence on unprotected resources
    REPORT = "report"                  # functional interference detected
    #: The case could not be executed because infrastructure faults
    #: exhausted their retry budget; it carries no verdict about the
    #: kernel and must never surface as a bug report.
    INFRA_FAILED = "infra_failed"
    #: The case was quarantined as a poison pair: it killed the worker
    #: running it ``poison_after`` times and is never retried — not in
    #: this run and (via the campaign journal) not in a resumed one.
    #: Like ``INFRA_FAILED`` it carries no verdict about the kernel.
    POISONED = "poisoned"


@dataclass
class DetectionResult:
    """Outcome of checking one test case."""

    case: TestCase
    outcome: Outcome
    report: Optional[TestReport] = None
    raw_diff_count: int = 0
    #: Interleaved schedules executed for this case (0 when the case was
    #: not explored — sequential report, unselected pair, or a campaign
    #: without ``--interleave``).
    schedules_run: int = 0


class Detector:
    """The §4.3 detection pipeline bound to one machine."""

    def __init__(self, machine: Machine, spec: Specification,
                 nondet: Optional[NondetAnalyzer] = None,
                 baselines: Optional[BaselineCache] = None,
                 sender_states: Optional[SenderStateCache] = None,
                 explorer: Optional[ScheduleExplorer] = None):
        self._machine = machine
        self._spec = spec
        # *baselines* and *sender_states* may be shared across the
        # detectors of a worker pool: both are keyed by
        # snapshot-relative program state.
        self._runner = TestCaseRunner(machine, baselines=baselines,
                                      sender_states=sender_states)
        self._nondet = nondet or NondetAnalyzer(machine)
        # Optional controlled-interleaving exploration: cases that are
        # clean sequentially get their bounded schedule set run too,
        # and any witnessing schedule upgrades them to a report.
        self._explorer = explorer

    @property
    def machine(self) -> Machine:
        return self._machine

    @property
    def runner(self) -> TestCaseRunner:
        return self._runner

    @property
    def nondet(self) -> NondetAnalyzer:
        return self._nondet

    # -- public API -------------------------------------------------------------

    def check_case(self, case: TestCase) -> DetectionResult:
        (interfered, diffs, raw_count,
         sender_result, alone_result, with_result) = self._analyze(
            case.sender, case.receiver)
        if interfered:
            protected_diffs = [d for d in diffs if d.call_index in interfered]
            report = TestReport(
                case=case,
                interfered_indices=sorted(interfered),
                diffs=protected_diffs,
                sender_records=sender_result.records,
                receiver_alone_records=alone_result.records,
                receiver_with_records=with_result.records,
            )
            return DetectionResult(case, Outcome.REPORT, report=report,
                                   raw_diff_count=raw_count)
        if raw_count == 0:
            sequential = DetectionResult(case, Outcome.PASS)
        elif not diffs:
            sequential = DetectionResult(case, Outcome.FILTERED_NONDET,
                                         raw_diff_count=raw_count)
        else:
            sequential = DetectionResult(case, Outcome.FILTERED_RESOURCE,
                                         raw_diff_count=raw_count)
        return self._explore_schedules(case, sequential, sender_result,
                                       alone_result)

    def _explore_schedules(self, case: TestCase, sequential: DetectionResult,
                           sender_result, alone_result) -> DetectionResult:
        """Quantify Algorithm 1 over the bounded schedule set (§7).

        Runs only for sequentially-clean cases the policy selects; a
        witnessing schedule upgrades the case to ``REPORT`` with the
        culprit :class:`~repro.core.schedule.ScheduleId` recorded for
        replay.
        """
        if self._explorer is None or \
                not self._explorer.selects(case.sender, case.receiver):
            return sequential
        exploration = self._explorer.explore(case.sender, case.receiver,
                                             alone_result.records)
        sequential.schedules_run = exploration.schedules_run
        if not exploration.found:
            return sequential
        report = TestReport(
            case=case,
            interfered_indices=exploration.interfered,
            diffs=exploration.culprit_diffs,
            sender_records=sender_result.records,
            receiver_alone_records=alone_result.records,
            receiver_with_records=exploration.culprit_records,
            witnesses=exploration.witnesses,
            culprit_schedule=exploration.culprit,
        )
        return DetectionResult(case, Outcome.REPORT, report=report,
                               raw_diff_count=sequential.raw_diff_count,
                               schedules_run=exploration.schedules_run)

    def interference_set(self, sender: TestProgram, receiver: TestProgram,
                         prepared: Optional[PreparedSenderState] = None
                         ) -> Set[int]:
        """Protected-interfered receiver call indices for (sender, receiver).

        This is ``TestFuncI`` in Algorithm 2 — diagnosis re-runs modified
        senders through the same full filter chain.  When *prepared*
        carries that sender variant's memoized prefix state, the sender
        is not replayed: the machine restores the prefix delta instead.
        """
        interfered, *_ = self._analyze(sender, receiver, prepared=prepared)
        return interfered

    # -- internals ----------------------------------------------------------------

    def _analyze(self, sender: TestProgram, receiver: TestProgram,
                 prepared: Optional[PreparedSenderState] = None
                 ) -> Tuple[Set[int], List[NodeDiff], int, object, object, object]:
        alone_result = self._runner.receiver_alone(receiver)
        if prepared is not None:
            sender_result, with_result = self._runner.run_prepared(
                prepared, receiver)
        else:
            sender_result, with_result = self._runner.run_with_sender(
                sender, receiver)

        tree_alone = build_trace_ast(alone_result.records)
        tree_with = build_trace_ast(with_result.records)
        raw_diffs = syscall_trace_cmp(tree_alone, tree_with)
        if not raw_diffs:
            return set(), [], 0, sender_result, alone_result, with_result

        marks = self._nondet.nondet_paths(receiver)
        apply_nondet_marks(tree_alone, marks)
        apply_nondet_marks(tree_with, marks)
        diffs = syscall_trace_cmp(tree_alone, tree_with)
        if not diffs:
            return set(), [], len(raw_diffs), sender_result, alone_result, with_result

        interfered: Set[int] = set()
        for diff in diffs:
            index = diff.call_index
            if index is None:
                continue
            if self._call_protected(alone_result.records, with_result.records,
                                    index):
                interfered.add(index)
        return (interfered, diffs, len(raw_diffs),
                sender_result, alone_result, with_result)

    def _call_protected(self, alone_records, with_records, index: int) -> bool:
        for records in (with_records, alone_records):
            if 0 <= index < len(records):
                record = records[index]
                if record is not None and self._spec.call_accesses_protected(record):
                    return True
        return False
