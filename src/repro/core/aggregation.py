"""Test report aggregation (paper §4.4, Table 6).

"KIT aggregates test reports based on the identified system call pairs
that trigger and detect the functional interference.  KIT first
aggregates test reports by grouping them by the interfered receiver
system call (AGG-R).  In each AGG-R group, KIT further aggregates test
reports by grouping them on the culprit sender system call (AGG-RS)…
The system call is represented using its name and the file descriptors
used by the system call."

A call's signature is its name plus the resource descriptors it used —
for opened files, the path behind the descriptor (so ``pread64`` of
``/proc/net/ptype`` and of ``/proc/net/sockstat`` land in different
groups, as they detect different interference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..vm.executor import SyscallRecord
from .report import TestReport


def call_signature(record: Optional[SyscallRecord]) -> str:
    """Name + descriptor representation of one executed call."""
    if record is None:
        return "<unknown>"
    descriptor_parts = []
    for arg_name in sorted(record.arg_kinds):
        kind = record.arg_kinds[arg_name]
        subject = record.subjects.get(arg_name, "")
        descriptor_parts.append(f"{kind}:{subject}" if subject else kind)
    if record.ret_kind is not None:
        subject = record.subjects.get("ret", "")
        descriptor_parts.append(
            f"ret={record.ret_kind}:{subject}" if subject else f"ret={record.ret_kind}"
        )
    inner = ", ".join(descriptor_parts)
    return f"{record.name}({inner})"


def receiver_signature(report: TestReport) -> str:
    """Signature of the interfered receiver call (first culprit pair)."""
    if report.culprit_pairs:
        index = report.culprit_pairs[0].receiver_index
    elif report.interfered_indices:
        index = report.interfered_indices[0]
    else:
        return "<none>"
    return call_signature(report.receiver_record(index))


def sender_signature(report: TestReport) -> str:
    """Signature of the culprit sender call (first culprit pair)."""
    if not report.culprit_pairs:
        return "<undiagnosed>"
    index = report.culprit_pairs[0].sender_index
    return call_signature(report.record_for(report.sender_records, index))


@dataclass
class ReportGroups:
    """AGG-R and AGG-RS groupings of a report set."""

    agg_r: Dict[str, List[TestReport]] = field(default_factory=dict)
    agg_rs: Dict[Tuple[str, str], List[TestReport]] = field(default_factory=dict)

    @property
    def agg_r_count(self) -> int:
        return len(self.agg_r)

    @property
    def agg_rs_count(self) -> int:
        return len(self.agg_rs)

    def drop_agg_r(self, receiver_sig: str) -> List[TestReport]:
        """The user triage action of §6.4: dismiss a whole AGG-R group
        (e.g. after confirming one of its reports is a false positive)."""
        dropped = self.agg_r.pop(receiver_sig, [])
        for key in [k for k in self.agg_rs if k[0] == receiver_sig]:
            del self.agg_rs[key]
        return dropped


def aggregate(reports: List[TestReport]) -> ReportGroups:
    """Group *reports* by receiver signature, then by sender signature."""
    groups = ReportGroups()
    for report in reports:
        r_sig = receiver_signature(report)
        s_sig = sender_signature(report)
        groups.agg_r.setdefault(r_sig, []).append(report)
        groups.agg_rs.setdefault((r_sig, s_sig), []).append(report)
    return groups
