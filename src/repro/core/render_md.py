"""Render a campaign result as a self-contained markdown document.

The artifact a campaign leaves behind for humans: the funnel, the group
table, one decoded representative per AGG-RS group, and (when available)
culprit pairs.  Pairs with :mod:`repro.core.persist` — save the JSON for
machines, the markdown for the review thread.
"""

from __future__ import annotations

from typing import List, Optional

from .decode import decode_record
from .oracle import classify
from .pipeline import CampaignResult


def campaign_markdown(result: CampaignResult,
                      title: str = "KIT campaign report") -> str:
    stats = result.stats
    lines: List[str] = [f"# {title}", ""]

    lines += [
        "## Summary",
        "",
        f"- corpus: **{stats.corpus_size}** programs "
        f"({stats.profile_runs} profiling runs)",
        f"- strategy: **{result.generation.strategy}** — "
        f"{stats.flow_count} candidate flows, "
        f"{stats.cluster_count} clusters, "
        f"{stats.cases_total} test cases executed",
        f"- funnel: {stats.initial_reports} candidates → "
        f"{stats.after_nondet} after non-det filtering → "
        f"**{stats.after_resource} reports**",
        f"- aggregation: **{result.groups.agg_rs_count} AGG-RS** / "
        f"**{result.groups.agg_r_count} AGG-R** groups",
        "",
    ]

    lines += ["## Groups", "",
              "| # | label | sender syscall | receiver syscall | reports |",
              "|---|-------|----------------|------------------|---------|"]
    ordered = sorted(result.groups.agg_rs.items(),
                     key=lambda item: (classify(item[1][0]), item[0]))
    for number, ((receiver_sig, sender_sig), members) in enumerate(ordered, 1):
        label = classify(members[0])
        lines.append(f"| {number} | {label} | `{sender_sig}` | "
                     f"`{receiver_sig}` | {len(members)} |")
    lines.append("")

    lines += ["## Representative reports", ""]
    for number, ((receiver_sig, sender_sig), members) in enumerate(ordered, 1):
        report = members[0]
        lines += [f"### Group {number}: `{sender_sig}` → `{receiver_sig}`",
                  "",
                  f"- oracle label: **{classify(report)}**",
                  f"- interfered receiver calls: "
                  f"{report.interfered_indices}",
                  "",
                  "```",
                  "# sender",
                  report.case.sender.serialize(),
                  "# receiver",
                  report.case.receiver.serialize(),
                  "```",
                  ""]
        first = report.first_interfered_record()
        alone = report.record_for(report.receiver_alone_records,
                                  report.interfered_indices[0]) \
            if report.interfered_indices else None
        if first is not None and alone is not None:
            lines += ["interfered call, receiver alone vs with sender:",
                      "",
                      "```",
                      decode_record(alone),
                      "--- vs ---",
                      decode_record(first),
                      "```",
                      ""]
    return "\n".join(lines)


def save_campaign_markdown(result: CampaignResult, path: str,
                           title: Optional[str] = None) -> None:
    with open(path, "w") as handle:
        handle.write(campaign_markdown(result, title or "KIT campaign report"))
        handle.write("\n")
