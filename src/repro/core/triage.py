"""Triage sessions: the §6.4 report-analysis workflow as an API.

The paper's authors spent ~30 person-hours triaging reports, working
group by group: examine one report per AGG-RS group, label the group
(confirmed bug / false positive / still investigating), and — once a
report is confirmed FP — drop its whole AGG-RS or AGG-R group to
suppress the redundant siblings.

:class:`TriageSession` captures that workflow so decisions are explicit,
auditable, and persistable alongside the campaign: every verdict names
its group; dropping cascades exactly as §6.4 describes; the summary says
how much of the campaign is settled.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .aggregation import ReportGroups
from .report import TestReport

GroupKey = Tuple[str, str]


class Verdict(enum.Enum):
    """The triager's decision for one AGG-RS group."""

    CONFIRMED_BUG = "confirmed-bug"
    FALSE_POSITIVE = "false-positive"
    INVESTIGATING = "investigating"


@dataclass
class GroupDecision:
    verdict: Verdict
    note: str = ""


@dataclass
class TriageSession:
    """Stateful triage over one campaign's report groups."""

    groups: ReportGroups
    decisions: Dict[GroupKey, GroupDecision] = field(default_factory=dict)

    # -- examination -------------------------------------------------------

    def pending_groups(self) -> List[GroupKey]:
        """AGG-RS groups without a settled verdict, stable order."""
        return [key for key in sorted(self.groups.agg_rs)
                if self.decisions.get(key) is None
                or self.decisions[key].verdict is Verdict.INVESTIGATING]

    def representative(self, key: GroupKey) -> TestReport:
        """One report per group is all a triager needs to read (§6.4)."""
        return self.groups.agg_rs[key][0]

    # -- verdicts ------------------------------------------------------------

    def confirm_bug(self, key: GroupKey, note: str = "") -> None:
        self._decide(key, Verdict.CONFIRMED_BUG, note)

    def mark_investigating(self, key: GroupKey, note: str = "") -> None:
        self._decide(key, Verdict.INVESTIGATING, note)

    def drop_false_positive(self, key: GroupKey, note: str = "",
                            whole_receiver: bool = False) -> List[GroupKey]:
        """Mark *key* FP; optionally cascade over its whole AGG-R group.

        Returns every group key the decision settled — the §6.4 payoff:
        "once the user confirms one false positive test report, the
        entire AGG-RS group it belongs to can be dropped… users can even
        drop the entire AGG-R group."
        """
        settled = [key]
        self._decide(key, Verdict.FALSE_POSITIVE, note)
        if whole_receiver:
            receiver_sig = key[0]
            for other in sorted(self.groups.agg_rs):
                if other[0] == receiver_sig and other != key and \
                        other not in self.decisions:
                    self._decide(other, Verdict.FALSE_POSITIVE,
                                 f"cascaded from {key[1]}: {note}")
                    settled.append(other)
        return settled

    def _decide(self, key: GroupKey, verdict: Verdict, note: str) -> None:
        if key not in self.groups.agg_rs:
            raise KeyError(f"no such AGG-RS group: {key}")
        self.decisions[key] = GroupDecision(verdict, note)

    # -- bookkeeping --------------------------------------------------------

    def confirmed(self) -> List[GroupKey]:
        return [key for key, decision in sorted(self.decisions.items())
                if decision.verdict is Verdict.CONFIRMED_BUG]

    def dropped(self) -> List[GroupKey]:
        return [key for key, decision in sorted(self.decisions.items())
                if decision.verdict is Verdict.FALSE_POSITIVE]

    def reports_to_examine(self) -> int:
        """How many reports triage actually requires: one per open group."""
        return len(self.pending_groups())

    def summary(self) -> str:
        total = self.groups.agg_rs_count
        return (f"{total} AGG-RS groups: "
                f"{len(self.confirmed())} confirmed, "
                f"{len(self.dropped())} dropped as FP, "
                f"{len(self.pending_groups())} pending")

    # -- persistence ------------------------------------------------------------

    def save(self, path: str) -> None:
        payload = [
            {"receiver": key[0], "sender": key[1],
             "verdict": decision.verdict.value, "note": decision.note}
            for key, decision in sorted(self.decisions.items())
        ]
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1)

    def load(self, path: str) -> int:
        """Re-apply saved decisions to matching groups; returns how many."""
        with open(path) as handle:
            payload = json.load(handle)
        applied = 0
        for entry in payload:
            key = (entry["receiver"], entry["sender"])
            if key in self.groups.agg_rs:
                self.decisions[key] = GroupDecision(
                    Verdict(entry["verdict"]), entry.get("note", ""))
                applied += 1
        return applied
