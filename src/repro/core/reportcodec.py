"""JSON codecs for syscall records, reports, and detection results.

Shared by :mod:`repro.core.persist` (whole-campaign JSON documents) and
:mod:`repro.store` (the write-ahead campaign journal), which must not
import the pipeline module — keeping the codec here breaks the cycle.

The encoding round-trips everything detection and aggregation consume:
decoded reports re-aggregate into the same AGG-R / AGG-RS groups and
render byte-identically to the originals.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..corpus.program import TestProgram
from ..vm.executor import SyscallRecord
from .generation import TestCase
from .report import CulpritPair, TestReport
from .trace_ast import NodeDiff


def encode_record(record: Optional[SyscallRecord]) -> Optional[Dict[str, Any]]:
    if record is None:
        return None
    return {
        "index": record.index,
        "name": record.name,
        "args": list(record.args),
        "retval": record.retval,
        "errno": record.errno,
        "details": record.details,
        "arg_kinds": record.arg_kinds,
        "ret_kind": record.ret_kind,
        "subjects": record.subjects,
    }


def decode_record(data: Optional[Dict[str, Any]]) -> Optional[SyscallRecord]:
    if data is None:
        return None
    return SyscallRecord(
        index=data["index"],
        name=data["name"],
        args=tuple(data["args"]),
        retval=data["retval"],
        errno=data["errno"],
        details=data["details"],
        arg_kinds=data["arg_kinds"],
        ret_kind=data["ret_kind"],
        subjects=data["subjects"],
    )


def encode_report(report: TestReport) -> Dict[str, Any]:
    return {
        "sender": report.case.sender.serialize(),
        "receiver": report.case.receiver.serialize(),
        "sender_index": report.case.sender_index,
        "receiver_index": report.case.receiver_index,
        "interfered_indices": report.interfered_indices,
        "diffs": [
            {"path": list(d.path), "label": d.label,
             "value_a": d.value_a, "value_b": d.value_b}
            for d in report.diffs
        ],
        "sender_records": [encode_record(r) for r in report.sender_records],
        "receiver_alone_records": [
            encode_record(r) for r in report.receiver_alone_records],
        "receiver_with_records": [
            encode_record(r) for r in report.receiver_with_records],
        "culprit_pairs": [
            {"sender_index": p.sender_index, "receiver_index": p.receiver_index}
            for p in report.culprit_pairs
        ],
        "witnesses": {encoded: list(indices)
                      for encoded, indices in report.witnesses.items()},
        "culprit_schedule": report.culprit_schedule,
    }


def decode_report(data: Dict[str, Any],
                  case: Optional[TestCase] = None) -> TestReport:
    """Rebuild a report; *case*, when given, replaces the serialized pair.

    Journal replay passes the freshly regenerated :class:`TestCase` so
    the restored report aliases the same case object the rest of the
    resumed campaign uses (cluster keys included) — aggregation then
    cannot tell a restored report from a fresh one.
    """
    if case is None:
        case = TestCase(
            sender_index=data["sender_index"],
            receiver_index=data["receiver_index"],
            sender=TestProgram.parse(data["sender"]),
            receiver=TestProgram.parse(data["receiver"]),
        )
    report = TestReport(
        case=case,
        interfered_indices=list(data["interfered_indices"]),
        diffs=[
            NodeDiff(tuple(d["path"]), d["label"], d["value_a"], d["value_b"])
            for d in data["diffs"]
        ],
        sender_records=[decode_record(r) for r in data["sender_records"]],
        receiver_alone_records=[
            decode_record(r) for r in data["receiver_alone_records"]],
        receiver_with_records=[
            decode_record(r) for r in data["receiver_with_records"]],
    )
    report.culprit_pairs = [
        CulpritPair(p["sender_index"], p["receiver_index"])
        for p in data["culprit_pairs"]
    ]
    # Schedule evidence postdates the first journal format: tolerate its
    # absence so pre-existing journals still replay.
    report.witnesses = {encoded: list(indices) for encoded, indices
                        in (data.get("witnesses") or {}).items()}
    report.culprit_schedule = data.get("culprit_schedule")
    return report
