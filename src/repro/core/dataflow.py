"""Inter-container data-flow analysis (paper §4.1.1, §5.1).

"KIT uses a multi-dimensional map to process the kernel memory accesses
made by test programs.  The keys of the map include width, read/write
flag, memory address, instruction address, and call stack hash.  The
value of the map is a list of test programs."

The index here is that map, split by direction: for every kernel address,
the distinct *write points* observed while profiling each program in the
**sender** container, and the distinct *read points* observed in the
**receiver** container.  A write point and a read point at the same
address form a candidate inter-container data flow.

Per §4.1.1, read points only count when the reading syscall accesses a
namespace-protected resource (the specification gate): a reader that
cannot observe protected state cannot witness a namespace bug, so flows
into it are not worth testing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from .profile import ProgramProfile
from .spec import Specification

Stack = Tuple[int, ...]


def stack_sha1(stack: Stack) -> str:
    """SHA-1 of the function-ID sequence, as the paper's map key uses."""
    payload = b",".join(str(fid).encode() for fid in stack)
    return hashlib.sha1(payload).hexdigest()


@dataclass(frozen=True)
class AccessPoint:
    """One deduplicated (program, site) access to a kernel address."""

    prog_index: int
    call_index: int
    addr: int
    width: int
    ip: int
    stack: Stack

    def stack_suffix(self, depth: int) -> Stack:
        """The innermost *depth* frames (call-stack-depth limiting, §4.1.2)."""
        if depth <= 0:
            return ()
        return self.stack[-depth:]


def iter_write_points(profile: ProgramProfile) -> Iterator[AccessPoint]:
    """One profile's deduplicated sender-side write points, in trace order.

    The canonical extraction: both the in-memory :class:`DataFlowIndex`
    and the on-disk :class:`~repro.core.accessindex.ColumnarAccessIndex`
    consume this iterator, so the two backends see byte-identical point
    sets by construction.
    """
    seen: Set[Tuple[int, int, Stack, int]] = set()
    for call_index, accesses in enumerate(profile.sender.accesses):
        if accesses is None:
            continue
        for access, stack in accesses:
            if not access.is_write:
                continue
            key = (access.addr, access.ip, stack, access.width)
            if key in seen:
                continue
            seen.add(key)
            yield AccessPoint(profile.index, call_index, access.addr,
                              access.width, access.ip, stack)


def iter_read_points(profile: ProgramProfile,
                     spec: Specification) -> Iterator[AccessPoint]:
    """One profile's deduplicated, spec-gated receiver read points."""
    seen: Set[Tuple[int, int, Stack, int]] = set()
    for call_index, accesses in enumerate(profile.receiver.accesses):
        if accesses is None:
            continue
        record = (profile.receiver.records[call_index]
                  if call_index < len(profile.receiver.records) else None)
        # §4.1.1's gate: the reader syscall must access a protected
        # resource, otherwise it cannot detect namespace interference.
        if record is None or not spec.call_accesses_protected(record):
            continue
        for access, stack in accesses:
            if access.is_write:
                continue
            key = (access.addr, access.ip, stack, access.width)
            if key in seen:
                continue
            seen.add(key)
            yield AccessPoint(profile.index, call_index, access.addr,
                              access.width, access.ip, stack)


#: (address, write points at it, read points at it) — the join row both
#: index backends produce for generation.
Overlap = Tuple[int, List[AccessPoint], List[AccessPoint]]


class DataFlowIndex:
    """Write/read points per kernel address, across a profiled corpus."""

    def __init__(self) -> None:
        self.writers: Dict[int, List[AccessPoint]] = {}
        self.readers: Dict[int, List[AccessPoint]] = {}

    @classmethod
    def build(cls, profiles: Sequence[ProgramProfile],
              spec: Specification) -> "DataFlowIndex":
        index = cls()
        for profile in profiles:
            for point in iter_write_points(profile):
                index.writers.setdefault(point.addr, []).append(point)
            for point in iter_read_points(profile, spec):
                index.readers.setdefault(point.addr, []).append(point)
        return index

    # -- queries ------------------------------------------------------------

    def overlap_addresses(self) -> List[int]:
        """Addresses written by some sender and read by some receiver."""
        return sorted(set(self.writers) & set(self.readers))

    def iter_overlaps(self) -> Iterator[Overlap]:
        """Join rows in ascending address order.

        Point lists keep insertion order (corpus order, then trace
        order) — the order generation's reservoir sampling consumes its
        RNG in, so every backend must reproduce it exactly.
        """
        for addr in self.overlap_addresses():
            yield addr, self.writers[addr], self.readers[addr]

    def total_flow_count(self) -> int:
        """Candidate data flows = Σ_addr |writers| × |readers|.

        This is the unclustered "DF" test-case count of Table 4 — the
        quantity that explodes (234M in the paper) and that clustering
        exists to tame.
        """
        total = 0
        for addr in self.overlap_addresses():
            total += len(self.writers[addr]) * len(self.readers[addr])
        return total

    def flows_at(self, addr: int) -> Iterable[Tuple[AccessPoint, AccessPoint]]:
        for write_point in self.writers.get(addr, ()):
            for read_point in self.readers.get(addr, ()):
                yield write_point, read_point
