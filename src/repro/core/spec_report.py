"""Specification coverage: which spec entries earn their keep.

The specification is refined *interactively* (§3.2): users add resource
kinds and checkers as they triage.  Refinement needs feedback — which
entries actually selected the calls behind this campaign's reports, and
which never fired at all (dead weight, or coverage the corpus is not
exercising yet).

:func:`spec_coverage` answers both from a finished campaign: per-entry
report counts, the entries behind each report, and the never-fired
remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from .pipeline import CampaignResult
from .report import TestReport
from .spec import Specification


@dataclass
class SpecCoverage:
    """How the specification's entries participated in a campaign."""

    #: entry (kind or checker name) -> number of reports it admitted.
    fired: Dict[str, int] = field(default_factory=dict)
    #: entries that admitted no report at all.
    unused: List[str] = field(default_factory=list)
    #: report index -> entries that admitted its interfered calls.
    per_report: Dict[int, Set[str]] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["spec entries by reports admitted:"]
        for entry, count in sorted(self.fired.items(),
                                   key=lambda item: (-item[1], item[0])):
            lines.append(f"  {count:>4}  {entry}")
        lines.append(f"never fired ({len(self.unused)}):")
        for entry in self.unused:
            lines.append(f"        {entry}")
        return "\n".join(lines)


def _all_entries(spec: Specification) -> List[str]:
    return sorted(spec.protected_kinds) + \
        [checker.__name__ for checker in spec.checkers]


def spec_coverage(result: CampaignResult,
                  spec: Specification) -> SpecCoverage:
    """Analyse which spec entries admitted each report's interfered calls."""
    coverage = SpecCoverage()
    seen: Dict[str, int] = {entry: 0 for entry in _all_entries(spec)}
    for index, report in enumerate(result.reports):
        entries = _entries_for_report(report, spec)
        coverage.per_report[index] = entries
        for entry in entries:
            seen[entry] = seen.get(entry, 0) + 1
    coverage.fired = {entry: count for entry, count in seen.items() if count}
    coverage.unused = sorted(entry for entry, count in seen.items()
                             if not count)
    return coverage


def _entries_for_report(report: TestReport,
                        spec: Specification) -> Set[str]:
    entries: Set[str] = set()
    for index in report.interfered_indices:
        record = report.receiver_record(index)
        if record is not None:
            entries.update(spec.matching_entries(record))
    return entries
