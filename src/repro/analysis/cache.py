"""Incremental on-disk cache for the static analyses.

Every cached result is keyed by the **content digests** of the source
files it was computed from, so the cache never needs an invalidation
protocol: edit a file, its digest flips, and exactly the results that
read it recompute.  Two grains are stored:

per-module
    The concurrency lint (L1/L2/S1) analyzes each module
    independently, so its findings cache one file at a time — editing
    ``vm/shm.py`` re-lints only ``vm/shm.py``.
per-analysis
    The kernel-wide results (access maps joined into race-pair
    candidates) depend on every kernel source file at once; they cache
    under the digest set of the whole kernel tree plus a label for the
    bug configuration.

Entries are JSON files under the cache root (default
``.kit-analysis-cache/`` at the repo root, ignored by git).  Corrupt
or stale entries read as misses; writes are atomic (rename), so a
killed run can only lose cache, never corrupt results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence

from .accessmap import AccessMap, SyscallSummary
from .locations import Access, StateLocation
from .locksets import LockFinding
from .races import RaceCandidate


def _default_root() -> str:
    from .sources import _repo_src_dir
    return os.path.join(os.path.dirname(_repo_src_dir()),
                        ".kit-analysis-cache")


def kernel_paths(src_dir: Optional[str] = None) -> List[str]:
    """Every kernel source file, without parsing any of them.

    The digest set a kernel-wide cache entry is keyed by; mirrors the
    walk in :class:`~repro.analysis.sources.KernelSourceIndex` so a
    warm run never has to build the index at all.
    """
    if src_dir is None:
        from .sources import _repo_src_dir
        src_dir = _repo_src_dir()
    kernel_dir = os.path.join(src_dir, "repro", "kernel")
    paths: List[str] = []
    for root, __, files in os.walk(kernel_dir):
        for name in sorted(files):
            if name.endswith(".py"):
                paths.append(os.path.join(root, name))
    return sorted(paths)


def file_digest(path: str) -> str:
    """sha256 of a file's bytes ('' for a missing file)."""
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return ""


class AnalysisCache:
    """Digest-validated result store for the static analyses."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or _default_root()
        self.hits = 0
        self.misses = 0

    # -- generic digest-keyed entries --------------------------------------

    def _entry_path(self, key: str) -> str:
        safe = hashlib.sha256(key.encode()).hexdigest()[:24]
        slug = "".join(c if c.isalnum() or c in "-_" else "-"
                       for c in key)[:48]
        return os.path.join(self.root, f"{slug}-{safe}.json")

    def get(self, key: str, digests: Dict[str, str]) -> Optional[Any]:
        """The stored payload, or None if missing or any digest flipped."""
        try:
            with open(self._entry_path(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("digests") != digests:
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("payload")

    def put(self, key: str, digests: Dict[str, str], payload: Any) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self._entry_path(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({"digests": digests, "payload": payload}, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- per-module lint findings ------------------------------------------

    def get_lint(self, path: str) -> Optional[List[LockFinding]]:
        payload = self.get(f"lint:{path}", {path: file_digest(path)})
        if payload is None:
            return None
        try:
            return [LockFinding(**f) for f in payload]
        except TypeError:
            return None

    def put_lint(self, path: str, findings: Sequence[LockFinding]) -> None:
        self.put(f"lint:{path}", {path: file_digest(path)},
                 [asdict(f) for f in findings])

    # -- kernel-wide access maps -------------------------------------------

    def get_access_map(self, label: str,
                       paths: Sequence[str]) -> Optional[AccessMap]:
        """Cached access map for one bug configuration, or None."""
        digests = {p: file_digest(p) for p in sorted(paths)}
        payload = self.get(f"map:{label}", digests)
        if payload is None:
            return None
        try:
            return _access_map_from_dict(payload)
        except (TypeError, KeyError):
            return None

    def put_access_map(self, label: str, paths: Sequence[str],
                       access_map: AccessMap) -> None:
        digests = {p: file_digest(p) for p in sorted(paths)}
        self.put(f"map:{label}", digests, _access_map_to_dict(access_map))

    # -- kernel-wide race candidates ---------------------------------------

    def get_races(self, label: str,
                  paths: Sequence[str]) -> Optional[List[RaceCandidate]]:
        """Cached candidates for one bug configuration, or None."""
        digests = {p: file_digest(p) for p in sorted(paths)}
        payload = self.get(f"races:{label}", digests)
        if payload is None:
            return None
        try:
            return [_candidate_from_dict(c) for c in payload]
        except (TypeError, KeyError):
            return None

    def put_races(self, label: str, paths: Sequence[str],
                  candidates: Sequence[RaceCandidate]) -> None:
        digests = {p: file_digest(p) for p in sorted(paths)}
        self.put(f"races:{label}", digests,
                 [asdict(c) for c in candidates])


def _access_from_dict(entry: Dict[str, Any]) -> Access:
    entry = dict(entry)
    entry["location"] = StateLocation(**entry["location"])
    entry["locks"] = tuple(entry.get("locks") or ())
    return Access(**entry)


def _candidate_from_dict(data: Dict[str, Any]) -> RaceCandidate:
    data = dict(data)
    data["access_a"] = _access_from_dict(data["access_a"])
    data["access_b"] = _access_from_dict(data["access_b"])
    return RaceCandidate(**data)


def _summary_to_dict(summary: SyscallSummary) -> Dict[str, Any]:
    return {"name": summary.name,
            "proc_wildcard": summary.proc_wildcard,
            "accesses": [asdict(a) for a in summary.accesses]}


def _summary_from_dict(data: Dict[str, Any]) -> SyscallSummary:
    return SyscallSummary(
        name=data["name"],
        proc_wildcard=data["proc_wildcard"],
        accesses=tuple(_access_from_dict(a) for a in data["accesses"]))


def _access_map_to_dict(access_map: AccessMap) -> Dict[str, Any]:
    return {
        "syscalls": {k: _summary_to_dict(v)
                     for k, v in access_map.syscalls.items()},
        "proc_reads": {k: _summary_to_dict(v)
                       for k, v in access_map.proc_reads.items()},
        "proc_writes": {k: _summary_to_dict(v)
                        for k, v in access_map.proc_writes.items()},
        "dispatch": (_summary_to_dict(access_map.dispatch)
                     if access_map.dispatch is not None else None),
    }


def _access_map_from_dict(data: Dict[str, Any]) -> AccessMap:
    return AccessMap(
        syscalls={k: _summary_from_dict(v)
                  for k, v in data["syscalls"].items()},
        proc_reads={k: _summary_from_dict(v)
                    for k, v in data["proc_reads"].items()},
        proc_writes={k: _summary_from_dict(v)
                     for k, v in data["proc_writes"].items()},
        dispatch=(_summary_from_dict(data["dispatch"])
                  if data["dispatch"] is not None else None),
    )
