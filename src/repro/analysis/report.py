"""Human-readable and JSON reports for ``repro analyze``.

:func:`analyze` runs the full static pipeline for one kernel version —
access-map extraction, the namespace-escape lint, the concurrency
lint, optionally the race-pair join, and (optionally) the differential
bug rediscovery — and the two renderers turn the result into a
terminal report or a JSON document for tooling.

Finding order is fully deterministic — escape findings sort by
(rule, file, line, entry) and lock findings by (code, file, line,
name) — so two ``--json`` reports from the same tree diff empty.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .accessmap import AccessMap, extract_access_map
from .escape import (
    DEFAULT_SUPPRESSIONS,
    EscapeFinding,
    EscapeLinter,
    RediscoveryReport,
    rediscover_bugs,
)
from .locks import LockFinding, check_lock_discipline
from .races import RaceCandidate, find_race_candidates
from .sources import KernelSourceIndex


@dataclass
class AnalysisReport:
    """Everything one ``repro analyze`` run produced."""

    kernel: str
    access_map: AccessMap
    escape_findings: List[EscapeFinding]
    lock_findings: List[LockFinding]
    rediscovery: Optional[RediscoveryReport] = None
    races: Optional[List[RaceCandidate]] = None

    def unsuppressed(self) -> List[EscapeFinding]:
        return [f for f in self.escape_findings if not f.suppressed]

    def clean(self) -> bool:
        """No unsuppressed escape findings and no lock violations."""
        return not self.unsuppressed() and not self.lock_findings


def _escape_sort_key(finding: EscapeFinding):
    return (finding.rule, finding.access.file, finding.access.line,
            finding.entry)


def _lock_sort_key(finding: LockFinding):
    return (finding.code, finding.file, finding.line, finding.name)


def analyze(bugs=None, kernel_name: str = "", spec=None,
            src_dir: Optional[str] = None,
            rediscovery: bool = False,
            races: bool = False,
            suppressions=DEFAULT_SUPPRESSIONS,
            cache=None) -> AnalysisReport:
    """Run the static analyses for the kernel version *bugs* selects.

    *races* adds the lockset race-pair join; *cache* (an
    :class:`~repro.analysis.cache.AnalysisCache`) makes every kernel-
    wide result incremental across runs — a warm run with unchanged
    kernel sources deserializes the access map instead of re-walking
    the handler bodies, and never builds the source index at all.
    """
    kernel = kernel_name or (", ".join(bugs.enabled()) if bugs is not None
                             and bugs.enabled() else "fixed")
    index: Optional[KernelSourceIndex] = None
    access_map: Optional[AccessMap] = None
    paths: List[str] = []
    if cache is not None:
        from .cache import kernel_paths
        paths = kernel_paths(src_dir)
        access_map = cache.get_access_map(kernel, paths)
    if access_map is None:
        index = KernelSourceIndex(src_dir)
        access_map = extract_access_map(bugs, index)
        if cache is not None:
            cache.put_access_map(kernel, paths, access_map)
    linter = EscapeLinter(access_map, spec, suppressions=suppressions)
    report = AnalysisReport(
        kernel=kernel,
        access_map=access_map,
        escape_findings=sorted(linter.run(), key=_escape_sort_key),
        lock_findings=sorted(check_lock_discipline(cache=cache),
                             key=_lock_sort_key),
    )
    if races:
        report.races = _race_candidates(kernel, access_map, paths, cache)
    if rediscovery:
        report.rediscovery = rediscover_bugs(
            index or KernelSourceIndex(src_dir), spec)
    return report


def _race_candidates(kernel: str, access_map: AccessMap,
                     paths: List[str], cache) -> List[RaceCandidate]:
    if cache is None:
        return find_race_candidates(access_map)
    cached = cache.get_races(kernel, paths)
    if cached is not None:
        return cached
    candidates = find_race_candidates(access_map)
    cache.put_races(kernel, paths, candidates)
    return candidates


# -- text -------------------------------------------------------------------

def render_text(report: AnalysisReport, verbose: bool = False) -> str:
    """The terminal report."""
    entries = report.access_map.entries()
    shared = sum(1 for s in entries.values() if s.shared_accesses())
    lines = [
        f"static interference analysis — kernel: {report.kernel}",
        "",
        f"access map: {len(report.access_map.syscalls)} syscalls, "
        f"{len(report.access_map.proc_reads)} proc read keys, "
        f"{len(report.access_map.proc_writes)} proc write keys, "
        f"{len(report.access_map.paths())} state paths "
        f"({shared} entries touch shared-scope state)",
    ]
    if verbose:
        for name, summary in sorted(entries.items()):
            lines.append(f"  {name}: {len(summary.reads())}r/"
                         f"{len(summary.writes())}w")
            for access in summary.accesses:
                lines.append(f"    {access}")

    unsuppressed = report.unsuppressed()
    suppressed = len(report.escape_findings) - len(unsuppressed)
    lines += ["",
              f"namespace-escape lint: {len(unsuppressed)} finding(s)"
              + (f" ({suppressed} suppressed)" if suppressed else "")]
    for finding in report.escape_findings:
        if finding.suppressed and not verbose:
            continue
        lines.append(f"  {finding.render()}")

    lines += ["",
              f"lock discipline: {len(report.lock_findings)} finding(s)"]
    for finding in report.lock_findings:
        lines.append(f"  {finding.render()}")

    if report.races is not None:
        by_rank: Dict[str, int] = {}
        for candidate in report.races:
            by_rank[candidate.code] = by_rank.get(candidate.code, 0) + 1
        summary = ", ".join(f"{code}={count}"
                            for code, count in sorted(by_rank.items()))
        lines += ["",
                  f"race-pair candidates: {len(report.races)}"
                  + (f" ({summary})" if summary else "")]
        shown = (report.races if verbose
                 else [c for c in report.races if c.rank == 0])
        for candidate in shown:
            lines.append(f"  {candidate.render()}")
        hidden = len(report.races) - len(shown)
        if hidden:
            lines.append(f"  ... {hidden} more (use --verbose)")

    if report.rediscovery is not None:
        r = report.rediscovery
        lines += ["",
                  f"bug rediscovery: {len(r.found)}/{len(r.per_bug)} "
                  f"({100 * r.rate():.0f}%), expectations "
                  + ("matched" if r.matches_expectations() else "VIOLATED")]
        for flag, outcome in sorted(r.per_bug.items()):
            status = "FOUND" if outcome.found else (
                "miss (by design)" if not outcome.expected else "MISSED")
            path = " @path" if outcome.hit_expected_path else ""
            lines.append(f"  {flag}: {status}{path}")
    return "\n".join(lines)


# -- json -------------------------------------------------------------------

def _finding_json(finding: EscapeFinding) -> Dict[str, Any]:
    return {
        "rule": finding.rule,
        "entry": finding.entry,
        "path": finding.access.path,
        "scope": finding.access.scope,
        "kind": finding.access.kind,
        "function": finding.access.function,
        "site": finding.access.site(),
        "spec_entries": list(finding.spec_entries),
        "suppressed": finding.suppressed,
        "message": finding.message,
    }


def render_json(report: AnalysisReport, indent: int = 2) -> str:
    """The machine-readable report."""
    entries = report.access_map.entries()
    doc: Dict[str, Any] = {
        "kernel": report.kernel,
        "access_map": {
            name: {
                "proc_wildcard": summary.proc_wildcard,
                "accesses": [
                    {
                        "path": access.path,
                        "scope": access.scope,
                        "kind": access.kind,
                        "function": access.function,
                        "site": access.site(),
                        "traced": access.traced,
                        "observable": access.observable,
                        "guarded": access.guarded,
                    }
                    for access in summary.accesses
                ],
            }
            for name, summary in sorted(entries.items())
        },
        "escape_findings": [_finding_json(f) for f in report.escape_findings],
        "lock_findings": [
            {
                "code": f.code,
                "file": f.file, "line": f.line, "function": f.function,
                "lock": f.lock, "name": f.name, "kind": f.kind,
                "message": f.message,
            }
            for f in report.lock_findings
        ],
        "clean": report.clean(),
    }
    if report.races is not None:
        doc["races"] = [
            {
                "code": c.code,
                "path": c.path,
                "scope": c.scope,
                "entries": [c.entry_a, c.entry_b],
                "rule": c.rule,
                "evidence": [
                    {"kind": a.kind, "site": a.site(),
                     "locks": list(a.locks)}
                    for a in (c.access_a, c.access_b)
                ],
            }
            for c in report.races
        ]
    if report.rediscovery is not None:
        doc["rediscovery"] = {
            "rate": report.rediscovery.rate(),
            "matches_expectations":
                report.rediscovery.matches_expectations(),
            "per_bug": {
                flag: {
                    "found": outcome.found,
                    "expected": outcome.expected,
                    "hit_expected_path": outcome.hit_expected_path,
                    "findings": [f.message for f in outcome.findings],
                }
                for flag, outcome in sorted(
                    report.rediscovery.per_bug.items())
            },
        }
    return json.dumps(doc, indent=indent)
