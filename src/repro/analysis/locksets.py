"""Flow- and alias-aware lockset lint for the pipeline's shared state.

The engine behind :func:`repro.analysis.locks.check_lock_discipline`.
It keeps the lexical contract PR 2 validated — a structure mutated
under ``with <lock>:`` anywhere in its scope is *guarded*, and every
other access must hold one of its guard locks — and layers three
precision upgrades on top:

flow
    ``lock.acquire()`` / ``lock.release()`` statement pairs toggle the
    held set between them, so hand-rolled critical sections count the
    same as ``with`` blocks.
aliases (L2)
    ``view = self._results`` binds a local alias of a guarded
    structure; accesses through the alias are accesses to the
    structure and are checked against its guard set.  Copies
    (``list(self._results)``) do not alias.  Violations through an
    alias render as ``L2``.
helper contexts (L2)
    A private helper (single-underscore method) inherits the
    *intersection* of the locksets held at its intra-class call sites,
    propagated to a fixpoint through helper-to-helper calls.  An
    unlocked access in a helper is clean when every caller holds the
    guard — and an ``L2`` finding when some call path reaches it
    without the lock.  Public methods are assumed callable from
    anywhere and get an empty entry context, exactly the lexical rule.

A separate pass checks the shared-memory segment lifecycle (S1):
every ``SharedMemory(..., create=True)`` must be *settled* — closed or
unlinked in an exception-proof position (a ``finally``/handler), or
handed off (stored, returned, passed on) — before any statement that
can raise runs while the fresh segment is still only held by a local.
An unsettled or at-risk creation renders as ``S1``: the segment (and
its ``/dev/shm`` name) may outlive the function on an exception path.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Constructors recognized as lock objects.
_LOCK_CTORS = {"Lock", "RLock"}

#: Method names that mutate their receiver (enough for this codebase's
#: containers: dict/list/set/deque plus the cache APIs built on them).
_MUTATING_METHODS = {
    "append", "appendleft", "add", "insert", "extend", "remove", "discard",
    "pop", "popleft", "popitem", "clear", "update", "setdefault", "sort",
}

#: Calls that settle a fresh shared-memory segment by releasing it.
_SEGMENT_RELEASE = {"close", "unlink"}


@dataclass(frozen=True)
class LockFinding:
    """One concurrency-lint finding (L1, L2, or S1)."""

    file: str
    line: int
    function: str
    lock: str       #: the guarding lock ("self._lock"); "" for S1
    name: str       #: the guarded structure / segment variable
    kind: str       #: "read" | "write" | "leak"
    message: str
    code: str = "L1"

    def render(self) -> str:
        return f"{self.code} {self.message}"


@dataclass(frozen=True)
class LintSuppression:
    """Silence one vetted false positive of the L1/L2/S1 lint."""

    file: str                      #: path suffix match
    name: str                      #: the structure / segment variable
    function: Optional[str] = None
    code: Optional[str] = None
    reason: str = ""

    def matches(self, finding: LockFinding) -> bool:
        if not finding.file.endswith(self.file):
            return False
        if self.name != finding.name:
            return False
        if self.function is not None and self.function != finding.function:
            return False
        return self.code is None or self.code == finding.code


#: Vetted false positives.  Empty: every finding the current engine
#: raises on the repo's own modules was either fixed or never fired.
DEFAULT_LINT_SUPPRESSIONS: Tuple[LintSuppression, ...] = ()


def _is_lock_ctor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_CTORS
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_CTORS
    return False


def _is_fresh_container(value: ast.AST) -> bool:
    """A container literal/constructor: initializing, not publishing."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp, ast.Constant)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in {"dict", "list", "set", "defaultdict",
                                 "deque", "Queue"} | _LOCK_CTORS
    return False


class _Access:
    __slots__ = ("name", "line", "kind", "function", "method", "under",
                 "init", "mutation", "alias")

    def __init__(self, name: str, line: int, kind: str, function: str,
                 method: Optional[str], under: Tuple[str, ...], init: bool,
                 mutation: bool, alias: Optional[str] = None):
        self.name = name
        self.line = line
        self.kind = kind              # read | write
        self.function = function
        self.method = method          # enclosing top-level method
        self.under = under            # locks held at the access
        self.init = init              # __init__ / fresh-container store
        self.mutation = mutation
        self.alias = alias            # local alias the access went through


class _Call:
    __slots__ = ("callee", "method", "under")

    def __init__(self, callee: str, method: Optional[str],
                 under: Tuple[str, ...]):
        self.callee = callee
        self.method = method
        self.under = under


def _collect_locks(nodes: Sequence[ast.AST], self_attrs: bool) -> Set[str]:
    """Pre-scan a scope for lock definitions, so definition order and
    acquire()/release() recognition never depend on walk order."""
    locks: Set[str] = set()
    for top in nodes:
        for node in ast.walk(top):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_lock_ctor(value):
                continue
            for target in targets:
                if self_attrs and isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    locks.add(f"self.{target.attr}")
                elif not self_attrs and isinstance(target, ast.Name):
                    locks.add(target.id)
    return locks


class _ScopeWalker(ast.NodeVisitor):
    """Collects accesses, aliases, and helper calls within one scope.

    A scope is either a class (tracking ``self.<attr>`` names across
    all its methods) or a function with its nested functions (tracking
    local names closed over by workers).
    """

    def __init__(self, self_attrs: bool, locks: Set[str]):
        self._self_attrs = self_attrs
        self.locks = locks
        self.accesses: List[_Access] = []
        self.calls: List[_Call] = []
        self.methods: Set[str] = set()
        self._held: List[str] = []
        self._flow_held: List[str] = []
        self._aliases: Dict[str, str] = {}
        self._function = "<module>"
        self._method: Optional[str] = None
        self._depth = 0
        self._in_init = False

    # -- naming ------------------------------------------------------------

    def _direct_name(self, node: ast.AST) -> Optional[str]:
        if self._self_attrs:
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                return f"self.{node.attr}"
            return None
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _resolve(self, node: ast.AST) -> Optional[Tuple[str, Optional[str]]]:
        """(canonical structure name, alias used) for an access base."""
        direct = self._direct_name(node)
        if direct is not None:
            return direct, None
        if self._self_attrs and isinstance(node, ast.Name) \
                and node.id in self._aliases:
            return self._aliases[node.id], node.id
        return None

    def _held_now(self) -> Tuple[str, ...]:
        return tuple(self._held + self._flow_held)

    def _record(self, name: str, line: int, kind: str, mutation: bool,
                init: bool = False, alias: Optional[str] = None) -> None:
        self.accesses.append(_Access(
            name, line, kind, self._function, self._method,
            self._held_now(), init or self._in_init, mutation, alias))

    # -- structure ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        previous, self._function = self._function, node.name
        was_init = self._in_init
        was_method = self._method
        saved_aliases, self._aliases = self._aliases, {}
        saved_flow, self._flow_held = self._flow_held, []
        self._depth += 1
        if self._self_attrs and self._depth == 1:
            self._method = node.name
            self.methods.add(node.name)
            if node.name == "__init__":
                self._in_init = True
        self.generic_visit(node)
        self._depth -= 1
        self._function, self._in_init = previous, was_init
        self._method = was_method
        self._aliases = saved_aliases
        self._flow_held = saved_flow

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_With(self, node: ast.With) -> None:
        entered: List[str] = []
        for item in node.items:
            name = self._direct_name(item.context_expr)
            if name is not None and name in self.locks:
                entered.append(name)
            else:
                self.visit(item.context_expr)
        self._held.extend(entered)
        for stmt in node.body:
            self.visit(stmt)
        if entered:
            del self._held[-len(entered):]

    # -- definitions and accesses -----------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            name = self._direct_name(target)
            if name is not None:
                if _is_lock_ctor(node.value):
                    pass  # pre-collected in self.locks
                elif self._self_attrs and name.startswith("self."):
                    self._record(name, node.lineno, "write", mutation=True,
                                 init=_is_fresh_container(node.value))
                # A bare-name store in function scope is a local
                # rebinding — thread-confined, neither a guard-defining
                # mutation nor a checkable access.
            else:
                self._visit_store_target(target)
        # Alias bookkeeping: ``x = self._foo`` binds x to the structure
        # itself; any other store to x kills a previous alias.
        if self._self_attrs:
            source = self._direct_name(node.value)
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if source is not None and source not in self.locks:
                    self._aliases[target.id] = source
                else:
                    self._aliases.pop(target.id, None)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = self._direct_name(node.target)
        if name is not None and node.value is not None:
            if _is_lock_ctor(node.value):
                pass
            elif self._self_attrs and name.startswith("self."):
                self._record(name, node.lineno, "write", mutation=True,
                             init=_is_fresh_container(node.value))
        elif node.value is not None:
            self._visit_store_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        resolved = self._resolve(node.target)
        if resolved is not None:
            name, alias = resolved
            self._record(name, node.lineno, "write", mutation=True,
                         alias=alias)
        else:
            self._visit_store_target(node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._visit_store_target(target)

    def _visit_store_target(self, target: ast.AST) -> None:
        # Subscript stores mutate the *base* structure and establish its
        # guard: ``detectors[k] = v`` / ``del self._memory[k]``.  An
        # attribute store (``stats.count = n``) is a write the guard
        # must cover if one exists, but incidental writes inside a lock
        # block must not claim the structure for that lock.
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            resolved = self._resolve(target.value)
            if resolved is not None:
                name, alias = resolved
                self._record(name, target.lineno, "write",
                             mutation=isinstance(target, ast.Subscript),
                             alias=alias)
                if isinstance(target, ast.Subscript):
                    self.visit(target.slice)
                return
        self.visit(target)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = self._direct_name(node)
        if name is not None:
            if name not in self.locks:
                self._record(name, node.lineno, "read", mutation=False)
            return
        resolved = self._resolve(node.value)
        if resolved is not None and resolved[0] not in self.locks:
            # ``<name>.attr`` — a load through the structure.
            self._record(resolved[0], node.lineno, "read", mutation=False,
                         alias=resolved[1])
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self._self_attrs:
            if isinstance(node.ctx, ast.Load) and node.id in self._aliases:
                self._record(self._aliases[node.id], node.lineno, "read",
                             mutation=False, alias=node.id)
            return
        if isinstance(node.ctx, ast.Load) and node.id not in self.locks:
            self._record(node.id, node.lineno, "read", mutation=False)

    def visit_Expr(self, node: ast.Expr) -> None:
        # acquire()/release() as statements toggle the flow-held set.
        call = node.value
        if isinstance(call, ast.Call) and isinstance(call.func,
                                                     ast.Attribute):
            base = self._direct_name(call.func.value)
            if base is not None and base in self.locks:
                if call.func.attr == "acquire":
                    self._flow_held.append(base)
                    return
                if call.func.attr == "release":
                    if base in self._flow_held:
                        self._flow_held.remove(base)
                    return
        self.visit(call)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            resolved = self._resolve(node.func.value)
            if resolved is not None and resolved[0] not in self.locks:
                name, alias = resolved
                mutation = node.func.attr in _MUTATING_METHODS
                self._record(name, node.lineno,
                             "write" if mutation else "read", mutation,
                             alias=alias)
                for arg in list(node.args) + [kw.value for kw in
                                              node.keywords]:
                    self.visit(arg)
                return
            # Intra-class helper call: ``self._m(...)``.
            if self._self_attrs and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "self":
                self.calls.append(_Call(node.func.attr, self._method,
                                        self._held_now()))
        self.generic_visit(node)


def _is_helper(name: str) -> bool:
    return name.startswith("_") and not name.startswith("__")


def _entry_contexts(walker: _ScopeWalker) -> Dict[str, Set[str]]:
    """Fixpoint of the must-held entry lockset per method.

    Public methods (and dunders) can be called from anywhere: empty
    context.  Private helpers inherit the intersection over their
    intra-class call sites of (caller context | locks held at the
    site); helpers with no call sites get the empty context, same as
    the lexical rule.
    """
    called = {c.callee for c in walker.calls}
    entry: Dict[str, Optional[Set[str]]] = {}
    for method in walker.methods | called:
        if _is_helper(method) and method in called:
            entry[method] = None        # top: not yet constrained
        else:
            entry[method] = set()
    for _ in range(len(entry) + 1):
        changed = False
        for call in walker.calls:
            if call.callee not in entry or entry[call.callee] == set():
                continue
            caller_ctx = entry.get(call.method or "", set())
            if caller_ctx is None:
                continue                # caller itself unresolved: skip
            ctx = set(call.under) | caller_ctx
            current = entry[call.callee]
            new = ctx if current is None else (current & ctx)
            if new != current:
                entry[call.callee] = new
                changed = True
        if not changed:
            break
    # Helpers only reachable through unresolved cycles: no context.
    return {m: (ctx if ctx is not None else set())
            for m, ctx in entry.items()}


def _check_scope(walker: _ScopeWalker, file: str,
                 findings: List[LockFinding]) -> None:
    if not walker.locks:
        return
    # name -> locks it was mutated under (its guard set).  Direct,
    # lexically-held mutations only: an alias mutation must not claim
    # the structure for whatever lock happened to be held.
    guards: Dict[str, Set[str]] = {}
    for access in walker.accesses:
        if access.mutation and not access.init and access.alias is None:
            held = set(access.under) & walker.locks
            if held:
                guards.setdefault(access.name, set()).update(held)
    entry = _entry_contexts(walker)
    for access in walker.accesses:
        guard_locks = guards.get(access.name)
        if not guard_locks or access.init:
            continue
        effective = set(access.under)
        if access.method is not None:
            effective |= entry.get(access.method, set())
        if effective & guard_locks:
            continue
        lock = sorted(guard_locks)[0]
        if access.alias is not None:
            code = "L2"
            message = (f"{file}:{access.line}: {access.kind} of "
                       f"{access.name} via alias '{access.alias}' in "
                       f"{access.function} outside 'with {lock}:' "
                       f"(structure is guarded elsewhere)")
        elif access.method is not None and _is_helper(access.method) \
                and any(c.callee == access.method for c in walker.calls):
            code = "L2"
            message = (f"{file}:{access.line}: {access.kind} of "
                       f"{access.name} in helper {access.function} "
                       f"reachable without 'with {lock}:' (some call "
                       f"site does not hold the lock)")
        else:
            code = "L1"
            message = (f"{file}:{access.line}: {access.kind} of "
                       f"{access.name} in {access.function} outside "
                       f"'with {lock}:' (structure is guarded elsewhere)")
        findings.append(LockFinding(
            file=file, line=access.line, function=access.function,
            lock=lock, name=access.name, kind=access.kind,
            message=message, code=code,
        ))


# -- S1: shared-memory segment lifecycle --------------------------------------

def _shm_create_target(stmt: ast.stmt) -> Optional[str]:
    """Name bound by ``X = SharedMemory(..., create=True, ...)``."""
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)):
        return None
    func = stmt.value.func
    ctor = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    if ctor != "SharedMemory":
        return None
    for kw in stmt.value.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant) \
                and kw.value.value is True:
            return stmt.targets[0].id
    return None


def _settles(node: ast.AST, name: str) -> bool:
    """Does *node* contain a statement that settles segment *name*?

    Settling = releasing (``name.close()`` / ``name.unlink()``), or
    handing off so another owner's lifecycle covers it: storing into a
    subscript/attribute, returning it, or passing it to a call.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == name \
                    and func.attr in _SEGMENT_RELEASE:
                return True
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                for part in ast.walk(arg):
                    if isinstance(part, ast.Name) and part.id == name:
                        return True
        elif isinstance(sub, ast.Return) and sub.value is not None:
            for part in ast.walk(sub.value):
                if isinstance(part, ast.Name) and part.id == name:
                    return True
        elif isinstance(sub, ast.Assign):
            if any(isinstance(t, (ast.Subscript, ast.Attribute))
                   for t in sub.targets):
                for part in ast.walk(sub.value):
                    if isinstance(part, ast.Name) and part.id == name:
                        return True
    return False


def _is_safe_stmt(stmt: ast.stmt) -> bool:
    """Statements that cannot raise while a fresh segment is live."""
    if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal, ast.Import,
                         ast.ImportFrom, ast.Break, ast.Continue)):
        return True
    if isinstance(stmt, ast.Assign):
        return all(isinstance(t, ast.Name) for t in stmt.targets) \
            and isinstance(stmt.value, (ast.Constant, ast.Name))
    return False


def _check_s1_function(funcdef: ast.FunctionDef, file: str,
                       findings: List[LockFinding]) -> None:
    seen: Set[int] = set()
    for body in _statement_lists(funcdef):
        for i, stmt in enumerate(body):
            found = _creation_in(stmt)
            if found is None:
                continue
            name, assign = found
            # A creation inside a try is claimed once, at the Try level
            # (where the fall-through continuation is visible), not
            # again when its own statement list is scanned.
            if id(assign) in seen:
                continue
            seen.add(id(assign))
            risk_line = _scan_after(body[i + 1:], name)
            if risk_line is None:
                continue
            line = getattr(assign, "lineno", 0)
            if risk_line < 0:
                message = (f"{file}:{line}: shared-memory segment "
                           f"'{name}' created here is never closed, "
                           f"unlinked, or handed off on some path")
            else:
                message = (f"{file}:{line}: shared-memory segment "
                           f"'{name}' may leak: line {risk_line} can "
                           f"raise before the segment is closed, "
                           f"unlinked, or handed off")
            findings.append(LockFinding(
                file=file, line=line, function=funcdef.name, lock="",
                name=name, kind="leak", message=message, code="S1",
            ))


def _creation_in(stmt: ast.stmt) -> Optional[Tuple[str, ast.stmt]]:
    """The (name, assignment) *stmt* creates and leaves live afterwards.

    A bare creation assignment counts; so does a Try whose body creates
    the segment without a finally/handler release (the idiomatic
    ``try: X = SharedMemory(create=True) except FileExistsError:
    return`` — on the fall-through path the segment is live).
    """
    direct = _shm_create_target(stmt)
    if direct is not None:
        return direct, stmt
    if isinstance(stmt, ast.Try):
        for inner in stmt.body:
            name = _shm_create_target(inner)
            if name is None:
                continue
            protected = any(_settles(f, name) for f in stmt.finalbody) or \
                any(_settles(h, name) for h in stmt.handlers)
            if not protected:
                return name, inner
    return None


def _scan_after(rest: Sequence[ast.stmt], name: str) -> Optional[int]:
    """Scan the statements after a live creation.

    Returns None when the segment is settled exception-safely, the
    line number of the first risky statement that can raise before a
    settle, or -1 when nothing ever settles the segment.
    """
    for stmt in rest:
        if isinstance(stmt, ast.Try):
            caught = any(_settles(f, name) for f in stmt.finalbody) or \
                any(_settles(h, name) for h in stmt.handlers)
            if caught:
                return None  # finally/handler runs on every path
        if _settles(stmt, name):
            # Settled — but only if nothing before this could raise,
            # which the loop below guarantees (risky statements return
            # early), and the settling statement's own prefix cannot
            # fail before the release: accept.
            return None
        if not _is_safe_stmt(stmt):
            return getattr(stmt, "lineno", 0)
    return -1


def _statement_lists(funcdef: ast.FunctionDef):
    """Every statement list in the function, outermost first."""
    out = [funcdef.body]
    for node in ast.walk(funcdef):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if node is not funcdef and isinstance(block, list) and block \
                    and all(isinstance(s, ast.stmt) for s in block):
                out.append(block)
        for handler in getattr(node, "handlers", []) or []:
            out.append(handler.body)
    return out


# -- module driver -------------------------------------------------------------

def lint_module(path: str, rel: str) -> List[LockFinding]:
    """All L1/L2/S1 findings for one module (unsuppressed and not)."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    findings: List[LockFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            locks = _collect_locks(node.body, self_attrs=True)
            walker = _ScopeWalker(self_attrs=True, locks=locks)
            for item in node.body:
                walker.visit(item)
            _check_scope(walker, rel, findings)
        elif isinstance(node, ast.FunctionDef):
            # Function-local locks shared with nested closures
            # (``detectors_lock`` in the distributed executor).
            locks = _collect_locks(
                [stmt for stmt in node.body if isinstance(stmt, ast.Assign)],
                self_attrs=False)
            if locks:
                walker = _ScopeWalker(self_attrs=False, locks=locks)
                walker._function = node.name
                for stmt in node.body:
                    walker.visit(stmt)
                _check_scope(walker, rel, findings)
            _check_s1_function(node, rel, findings)
    findings.sort(key=lambda f: (f.file, f.line, f.code, f.name))
    return findings


def lint_modules(src_dir: Optional[str] = None,
                 modules: Sequence[str] = (),
                 suppressions: Sequence[LintSuppression]
                 = DEFAULT_LINT_SUPPRESSIONS,
                 cache=None) -> List[LockFinding]:
    """Lint *modules*, dropping vetted false positives.

    *modules* are paths relative to *src_dir* (default: this repo's
    ``src``); absolute paths are taken as-is so tests can point the
    linter at synthetic files.  *cache*, if given, is an
    :class:`~repro.analysis.cache.AnalysisCache`: per-module results
    are keyed by content digest, so only edited files re-analyze.
    """
    if src_dir is None:
        from .sources import _repo_src_dir
        src_dir = _repo_src_dir()
    findings: List[LockFinding] = []
    for module in modules:
        if os.path.isabs(module):
            path, rel = module, os.path.basename(module)
        else:
            path = os.path.join(src_dir, module)
            rel = os.path.join("src", module)
        if not os.path.exists(path):
            continue
        module_findings: Optional[List[LockFinding]] = None
        if cache is not None:
            module_findings = cache.get_lint(path)
        if module_findings is None:
            module_findings = lint_module(path, rel)
            if cache is not None:
                cache.put_lint(path, module_findings)
        findings.extend(module_findings)
    findings = [f for f in findings
                if not any(s.matches(f) for s in suppressions)]
    findings.sort(key=lambda f: (f.file, f.line, f.code, f.name))
    return findings
