"""The namespace-escape lint.

Three rules over the static access map, each flagging an access that can
carry state across container boundaries without namespace mediation:

``E1`` — unguarded shared-scope read
    A handler reads ``GLOBAL`` state without a namespace guard in the
    reading function.  If the entry point is one the specification
    selects as touching protected resources, the value can surface in a
    cross-container trace divergence — exactly the interference class
    KIT detects dynamically.
``E2`` — broadcast access
    A handler reads or writes state reached by *enumerating* namespaces
    or tasks (``kernel.namespaces.live(...)``, ``tasks.all_tasks()``):
    one container's syscall touches every other container's instance.
``E3`` — init-namespace read
    A handler resolves state through a ``kernel.init_*`` escape hatch
    instead of ``task.nsproxy`` — it reads the init namespace's
    instance on behalf of a task that may live in a different one.

A *namespace guard* is an ``is``/``is not`` comparison between
namespace values, a PID translation, or a namespace-membership filter
in the accessing function (see :mod:`repro.analysis.interp`); guarded
accesses are deliberate cross-namespace filtering, not escapes.

Findings are suppressible by location path (optionally narrowed to one
function).  The default suppressions cover the fresh-id allocator
pattern — global counters whose values are never compared across
namespaces, the paper's §6.4 device-number false-positive class.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .accessmap import (
    PROC_READ_PREFIX,
    PROC_WRITE_PREFIX,
    AccessMap,
    extract_access_map,
)
from .locations import BROADCAST, INIT, SHARED_SCOPES, Access
from .sources import KernelSourceIndex

#: Generic descriptor kinds: a declared ``fd``/``sock`` argument can
#: hold any concrete descriptor kind at runtime, so the syscall may
#: touch protected resources and the lint must consider it selected.
WILDCARD_KINDS = frozenset({"fd", "sock"})


@dataclass(frozen=True)
class Suppression:
    """Silence findings on one location path (optionally one function)."""

    path: str
    function: Optional[str] = None  #: None = any function.
    reason: str = ""

    def matches(self, access: Access) -> bool:
        if self.path != access.path:
            return False
        return self.function is None or self.function == access.function


#: The allocator-pattern suppressions validated against the clean
#: kernel: global id counters whose freshly drawn values never collide
#: across namespaces (§6.4's device-number class), plus the close-path
#: unbind that only deletes the closing socket's own registry entry.
DEFAULT_SUPPRESSIONS: Tuple[Suppression, ...] = (
    Suppression("kernel.vfs.anon_dev_next",
                reason="global anon-dev allocator; fresh ids are never "
                       "compared across namespaces (§6.4 FP class)"),
    Suppression("kernel.vfs.mnt_id_next",
                reason="global mount-id allocator; same fresh-id argument"),
    Suppression("kernel.net.unix.ino_next",
                reason="global unix-inode allocator; same fresh-id argument"),
    Suppression("kernel.net.unix.by_ino", function="NetSubsystem.release",
                reason="close-path unbind removes only the closing "
                       "socket's own entry"),
)


@dataclass(frozen=True)
class EscapeFinding:
    """One namespace-escape lint finding."""

    rule: str                       #: E1 | E2 | E3
    entry: str                      #: syscall name or proc:<key> entry
    access: Access
    spec_entries: Tuple[str, ...]   #: spec entries selecting the entry
    message: str
    suppressed: bool = False

    def key(self) -> Tuple[str, str, str, str, str]:
        """Identity for diffing maps across kernel versions."""
        return (self.entry, self.access.path, self.access.scope,
                self.access.kind, self.access.site())

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.rule} {self.message}{mark}"


class _StaticRecord:
    """The slice of a SyscallRecord the spec checkers actually read."""

    def __init__(self, name: str, kinds: Sequence[str] = ()):
        self.name = name
        self._kinds = list(kinds)

    def resource_kinds(self) -> List[str]:
        return self._kinds


def proc_key_kind(key: str) -> str:
    """Resource kind of an fd open on ``/proc/<key>`` (mirrors
    ``OpenFile.resource_kind``)."""
    if key.startswith("net/"):
        return "fd_proc_net"
    if key.startswith("sys/net/"):
        return "fd_proc_sys_net"
    if key.startswith("sys/kernel/"):
        return "fd_proc_sys_kernel"
    if key.startswith("sys/"):
        return "fd_proc_sys"
    return "fd_proc"


def declared_kinds(name: str, decls=None) -> Set[str]:
    """Statically declared resource kinds of syscall *name*."""
    if decls is None:
        from ..kernel.syscalls.table import DECLS as decls
    if name not in decls:
        return set()
    decl = decls.get(name)
    kinds = {arg.resource for arg in decl.args if arg.resource}
    if decl.ret_resource:
        kinds.add(decl.ret_resource)
    return kinds


class EscapeLinter:
    """Runs the escape rules over one kernel version's access map."""

    def __init__(self, access_map: AccessMap, spec=None, decls=None,
                 suppressions: Sequence[Suppression] = DEFAULT_SUPPRESSIONS):
        if spec is None:
            from ..core.spec import default_specification
            spec = default_specification()
        if decls is None:
            from ..kernel.syscalls.table import DECLS as decls
        self._map = access_map
        self._spec = spec
        self._decls = decls
        self._suppressions = tuple(suppressions)

    # -- spec selection ----------------------------------------------------

    def spec_entries_for(self, entry: str) -> Tuple[str, ...]:
        """The spec entries selecting *entry*, empty when unprotected.

        Static protectedness over-approximates the dynamic gate: a
        generic ``fd``/``sock`` descriptor argument may refine to a
        protected kind at runtime, so it selects the entry here.
        """
        if entry.startswith(PROC_READ_PREFIX):
            kinds = {proc_key_kind(entry[len(PROC_READ_PREFIX):])}
            name = "read"
        elif entry.startswith(PROC_WRITE_PREFIX):
            kinds = {proc_key_kind(entry[len(PROC_WRITE_PREFIX):])}
            name = "write"
        else:
            kinds = declared_kinds(entry, self._decls)
            name = entry
        selected = sorted(kinds & self._spec.protected_kinds)
        selected += sorted(f"{kind} (any descriptor)"
                           for kind in kinds & WILDCARD_KINDS)
        record = _StaticRecord(name)
        selected += [checker.__name__ for checker in self._spec.checkers
                     if checker(record)]
        return tuple(selected)

    # -- rules -------------------------------------------------------------

    @staticmethod
    def rule_for(access: Access) -> Optional[str]:
        """Which escape rule (if any) an access is a candidate for."""
        if access.guarded or access.scope not in SHARED_SCOPES:
            return None
        if access.scope == BROADCAST:
            return "E2"
        if access.is_write():
            # GLOBAL/INIT writes always pair with a read candidate (the
            # injected bugs are all observed through reads); the read
            # side carries the finding, keeping the clean-kernel rule
            # set exactly the validated one.
            return None
        return "E3" if access.scope == INIT else "E1"

    def run(self) -> List[EscapeFinding]:
        """All findings, suppressed ones flagged (not dropped)."""
        findings: List[EscapeFinding] = []
        for entry, summary in sorted(self._map.entries().items()):
            spec_entries = self.spec_entries_for(entry)
            if not spec_entries:
                continue
            seen: Set[Tuple[str, str, str, str, str]] = set()
            for access in summary.accesses:
                rule = self.rule_for(access)
                if rule is None:
                    continue
                suppressed = any(s.matches(access)
                                 for s in self._suppressions)
                finding = EscapeFinding(
                    rule=rule,
                    entry=entry,
                    access=access,
                    spec_entries=spec_entries,
                    message=(f"{entry}: {access.kind} of {access.path} "
                             f"[{access.scope}] in {access.function} at "
                             f"{access.site()} without a namespace guard "
                             f"(spec: {', '.join(spec_entries)})"),
                    suppressed=suppressed,
                )
                if finding.key() in seen:
                    continue
                seen.add(finding.key())
                findings.append(finding)
        return findings

    def unsuppressed(self) -> List[EscapeFinding]:
        return [f for f in self.run() if not f.suppressed]


# -- bug rediscovery ---------------------------------------------------------

@dataclass
class BugRediscovery:
    """Per-injected-bug outcome of the static differential lint."""

    flag: str
    expected: bool              #: statically detectable per the registry
    found: bool
    hit_expected_path: bool     #: a finding names the registered path
    findings: Tuple[EscapeFinding, ...] = ()


@dataclass
class RediscoveryReport:
    """The Table-2/3 rediscovery summary."""

    per_bug: Dict[str, BugRediscovery] = field(default_factory=dict)

    @property
    def found(self) -> List[str]:
        return sorted(f for f, r in self.per_bug.items() if r.found)

    @property
    def missed(self) -> List[str]:
        return sorted(f for f, r in self.per_bug.items() if not r.found)

    def rate(self) -> float:
        if not self.per_bug:
            return 0.0
        return len(self.found) / len(self.per_bug)

    def matches_expectations(self) -> bool:
        return all(r.found == r.expected for r in self.per_bug.values())


def rediscover_bugs(index: Optional[KernelSourceIndex] = None, spec=None,
                    src_dir: Optional[str] = None) -> RediscoveryReport:
    """Differentially lint every single-bug kernel against the clean one.

    For each injected-bug flag, the access map of the kernel with only
    that bug is extracted (the abstract interpreter folds the flag's
    conditionals to the buggy branch) and linted; findings absent from
    the clean kernel's lint are the bug's static signature.
    """
    from ..kernel import bugs as bugs_mod

    index = index or KernelSourceIndex(src_dir)
    clean_map = extract_access_map(bugs_mod.fixed_kernel(), index)
    clean_keys = {f.key() for f in EscapeLinter(clean_map, spec).run()}

    specs = {s.flag: s for s in bugs_mod.BUG_SPECS}
    report = RediscoveryReport()
    for flag_field in dataclasses.fields(bugs_mod.BugFlags):
        flag = flag_field.name
        buggy_map = extract_access_map(
            bugs_mod.BugFlags(**{flag: True}), index)
        fresh = tuple(
            f for f in EscapeLinter(buggy_map, spec).run()
            if f.key() not in clean_keys and not f.suppressed
        )
        bug_spec = specs.get(flag)
        expected = bug_spec.statically_detectable if bug_spec else True
        hit = bool(bug_spec) and any(
            f.access.path == bug_spec.state_path for f in fresh)
        report.per_bug[flag] = BugRediscovery(
            flag=flag, expected=expected, found=bool(fresh),
            hit_expected_path=hit, findings=fresh,
        )
    return report
