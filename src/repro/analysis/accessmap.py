"""Syscall -> kernel-state access maps (the static DataFlowIndex).

For every syscall registered in :mod:`repro.kernel.syscalls.table` (and
for every constant ``/proc`` key the procfs dispatcher handles), the
extractor walks the handler with the abstract interpreter and emits its
read/write set over the location lattice.  The result is directly
comparable to what dynamic profiling plus
:class:`repro.core.generation.DataFlowIndex` computes from memory
traces — same state, located by name instead of by address.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .interp import AbstractInterpreter
from .locations import Access, FunctionSummary
from .sources import KernelSourceIndex

#: Handler entry names for the two procfs surfaces.
PROC_READ_PREFIX = "proc:"
PROC_WRITE_PREFIX = "procw:"


@dataclass
class SyscallSummary:
    """The static access set of one entry point."""

    name: str
    accesses: Tuple[Access, ...] = ()
    #: The walk hit procfs dispatch with a non-constant key; the entry
    #: may additionally perform any proc-file accesses (resolved
    #: per-program by the pre-filter).
    proc_wildcard: bool = False

    def reads(self) -> List[Access]:
        return [a for a in self.accesses if a.is_read()]

    def writes(self) -> List[Access]:
        return [a for a in self.accesses if a.is_write()]

    def shared_accesses(self) -> List[Access]:
        return [a for a in self.accesses if a.location.is_shared()]


@dataclass
class AccessMap:
    """Access summaries for every static entry point of the kernel."""

    syscalls: Dict[str, SyscallSummary] = field(default_factory=dict)
    #: proc key ("net/ptype", ...) -> summary of ProcFs.render.
    proc_reads: Dict[str, SyscallSummary] = field(default_factory=dict)
    #: proc key -> summary of ProcFs.write.
    proc_writes: Dict[str, SyscallSummary] = field(default_factory=dict)
    #: The Kernel.syscall dispatch preamble (bookkeeping accesses).
    dispatch: Optional[SyscallSummary] = None

    def entries(self) -> Dict[str, SyscallSummary]:
        out: Dict[str, SyscallSummary] = dict(self.syscalls)
        for key, summary in self.proc_reads.items():
            out[PROC_READ_PREFIX + key] = summary
        for key, summary in self.proc_writes.items():
            out[PROC_WRITE_PREFIX + key] = summary
        return out

    def paths(self) -> List[str]:
        seen = set()
        for summary in self.entries().values():
            for access in summary.accesses:
                seen.add(access.path)
        return sorted(seen)


def discover_handlers(index: KernelSourceIndex
                      ) -> Dict[str, ast.FunctionDef]:
    """Map syscall name -> handler FunctionDef from the table's AST.

    Handlers are declared as ``@syscall(SyscallDecl("<name>", ...))``;
    the declaration's first positional argument is the name.
    """
    module = index.modules.get("repro.kernel.syscalls.table")
    if module is None:
        raise RuntimeError("repro.kernel.syscalls.table not found")
    handlers: Dict[str, ast.FunctionDef] = {}
    for funcdef in module.functions.values():
        for decorator in funcdef.decorator_list:
            if not (isinstance(decorator, ast.Call)
                    and isinstance(decorator.func, ast.Name)
                    and decorator.func.id == "syscall"
                    and decorator.args):
                continue
            decl = decorator.args[0]
            if (isinstance(decl, ast.Call) and decl.args
                    and isinstance(decl.args[0], ast.Constant)
                    and isinstance(decl.args[0].value, str)):
                handlers[decl.args[0].value] = funcdef
    return handlers


def discover_proc_keys(index: KernelSourceIndex,
                       method: str = "render") -> List[str]:
    """Constant /proc keys the dispatcher compares against."""
    found = index.method_def("ProcFs", method)
    if found is None:
        return []
    __, funcdef = found
    keys: List[str] = []
    for node in ast.walk(funcdef):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.In)):
            continue
        sides = [node.left] + node.comparators
        names = [s for s in sides if isinstance(s, ast.Name)]
        if not any(n.id == "key" for n in names):
            continue
        for side in sides:
            if isinstance(side, ast.Constant) and isinstance(side.value,
                                                             str):
                keys.append(side.value)
            elif isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                keys.extend(e.value for e in side.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str))
    seen = set()
    ordered = []
    for key in keys:
        if key not in seen:
            seen.add(key)
            ordered.append(key)
    return ordered


def _to_summary(name: str, summary: FunctionSummary) -> SyscallSummary:
    return SyscallSummary(name, summary.accesses, summary.proc_wildcard)


def extract_access_map(bugs: Any = None,
                       index: Optional[KernelSourceIndex] = None,
                       src_dir: Optional[str] = None) -> AccessMap:
    """Build the full static access map for one kernel version.

    *bugs* is a :class:`repro.kernel.bugs.BugFlags` (folding each
    injected-bug conditional to that version's branch) or None for
    union mode, where both branches of every bug conditional are
    walked and the map over-approximates all versions at once.
    """
    index = index or KernelSourceIndex(src_dir)
    interp = AbstractInterpreter(index, bugs)
    table = index.modules["repro.kernel.syscalls.table"]
    out = AccessMap()

    for name, funcdef in sorted(discover_handlers(index).items()):
        summary = interp.walk_handler(table, funcdef, funcdef.name)
        out.syscalls[name] = _to_summary(name, summary)

    procfs_found = index.method_def("ProcFs", "render")
    if procfs_found is not None:
        procfs_cls, render = procfs_found
        for key in discover_proc_keys(index, "render"):
            summary = interp.walk_method(
                procfs_cls, render,
                ("inst", "ProcFs", "kernel.procfs", "global"),
                {"task": ("task", "own"), "key": ("const", key)},
                qualname="ProcFs.render")
            out.proc_reads[key] = _to_summary(key, summary)
    write_found = index.method_def("ProcFs", "write")
    if write_found is not None:
        procfs_cls, write = write_found
        for key in discover_proc_keys(index, "write"):
            summary = interp.walk_method(
                procfs_cls, write,
                ("inst", "ProcFs", "kernel.procfs", "global"),
                {"task": ("task", "own"), "key": ("const", key),
                 "data": None},
                qualname="ProcFs.write")
            out.proc_writes[key] = _to_summary(key, summary)

    kernel_found = index.method_def("Kernel", "syscall")
    if kernel_found is not None:
        kernel_cls, syscall = kernel_found
        summary = interp.walk_method(
            kernel_cls, syscall, ("kernel",),
            {"task": ("task", "own"), "name": None, "args": ("args",)},
            qualname="Kernel.syscall")
        out.dispatch = _to_summary("(dispatch)", summary)
    return out
