"""Static race-pair candidates from lockset-annotated access maps.

The abstract interpreter (:mod:`repro.analysis.interp`) stamps every
:class:`~repro.analysis.locations.Access` with the *must-held* lockset
at that program point — the ``KLock`` objects whose ``with`` blocks
enclose it, propagated through inlined helpers.  This module joins
those annotated summaries across entry-point pairs:

    (entry_a, entry_b, location) is a **race-pair candidate** when both
    entries touch the location, at least one access is a write, and the
    two accesses' held-lockset intersection is empty.

Must-held is exact for the model (``with`` is lexical), so a non-empty
intersection is a proof of mutual exclusion and the pair is dropped;
an empty intersection is only a *candidate* — the runtime may still
serialize the pair some other way, which is exactly why the output
feeds the dynamic layers (the candidate-pair pre-filter and, per
ROADMAP item 2, interleaved campaigns) rather than a verdict.

Candidates are ranked by how interesting the location is for
*namespace isolation*:

``R0``
    Shared-scope location on which an escape rule
    (:meth:`~repro.analysis.escape.EscapeLinter.rule_for`) fires — the
    race crosses a namespace boundary, KIT's target class.
``R1``
    Shared-scope location with no escape fact (guarded or allocator
    pattern) — a kernel-wide race that namespace mediation does not
    excuse.
``R2``
    Namespace-scope location — both entries must run in the *same*
    container to collide; only an interleaving campaign can exercise
    it.

Self-pairs (``entry_a == entry_b``) are included: two concurrent
invocations of one syscall race the same way two different syscalls do.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .accessmap import AccessMap, extract_access_map
from .escape import EscapeLinter
from .locations import (
    BROADCAST,
    GLOBAL,
    INIT,
    NAMESPACE,
    TASK,
    WRITE,
    Access,
)
from .sources import KernelSourceIndex

#: Ranks, smallest first in reports.
RANK_BOUNDARY = 0   #: shared scope, escape rule fires (R0)
RANK_SHARED = 1     #: shared scope, no escape fact (R1)
RANK_SAME_NS = 2    #: namespace scope, same-container only (R2)

#: Scope width order for naming a mixed-scope pair's collision scope.
_SCOPE_WIDTH = {BROADCAST: 4, INIT: 3, GLOBAL: 2, NAMESPACE: 1, TASK: 0}


def _scopes_alias(sa: str, sb: str) -> bool:
    """Can two accesses to the same path hit the same allocation?

    Mirrors the arena's aliasing semantics: a BROADCAST access
    *enumerates* instances, so it aliases every scope of the path
    (``task.uid`` read via ``all_tasks()`` collides with each task's
    own TASK-scope write); the INIT instance is one of the per-ns
    instances, so INIT aliases NAMESPACE; same-scope pairs alias except
    TASK — two tasks' own structs are distinct allocations.
    """
    if BROADCAST in (sa, sb):
        return True
    if sa == sb:
        return sa != TASK
    return {sa, sb} == {INIT, NAMESPACE}


@dataclass(frozen=True)
class RaceCandidate:
    """One (entry_a, entry_b, location) static race-pair candidate."""

    path: str
    scope: str
    entry_a: str                #: sorted: entry_a <= entry_b
    entry_b: str
    access_a: Access            #: representative access from entry_a
    access_b: Access            #: representative access from entry_b
    rank: int
    rule: Optional[str] = None  #: escape rule evidencing the boundary

    def key(self) -> Tuple[str, str, str, str, int]:
        """Identity for diffing candidate sets across kernel versions.

        Scope and rank are part of the identity: an injected bug often
        does not create a *new* (pair, path) triple but flips an
        existing one across a namespace boundary — a per-ns write that
        becomes a broadcast (scope change), or a guarded read that
        loses its namespace check (rank change R1 -> R0).  Those flips
        are exactly the bug's static race signature.
        """
        return (self.path, self.scope, self.entry_a, self.entry_b,
                self.rank)

    @property
    def code(self) -> str:
        return f"R{self.rank}"

    def render(self) -> str:
        def side(access: Access) -> str:
            held = ("{" + ", ".join(access.locks) + "}" if access.locks
                    else "no lock")
            return f"{access.kind} at {access.site()} holds {held}"

        boundary = f" [{self.rule}]" if self.rule else ""
        return (f"{self.code} {self.entry_a} <-> {self.entry_b}: "
                f"{self.path} [{self.scope}]{boundary} — "
                f"{side(self.access_a)}; {side(self.access_b)}")


def _relevant(access: Access) -> bool:
    """Can this access participate in an inter-invocation race?

    ``new.*`` paths name objects allocated by the current call — fresh
    per invocation, so two invocations never share them.  TASK-scope
    accesses stay in: they alias a BROADCAST enumeration of the same
    path (and nothing else — :func:`_scopes_alias` gates the pairing).
    """
    return not access.path.startswith("new.")


def _disjoint(a: Access, b: Access) -> bool:
    return not (set(a.locks) & set(b.locks))


def _pick_pair(accs_a: List[Access],
               accs_b: List[Access]) -> Optional[Tuple[Access, Access]]:
    """First aliasing (write, any) pair with disjoint locksets.

    Both lists arrive sorted writes-first; scanning in order makes the
    representative stable across runs and prefers write/write evidence.
    """
    for x in accs_a:
        for y in accs_b:
            if x.kind != WRITE and y.kind != WRITE:
                continue
            if _scopes_alias(x.scope, y.scope) and _disjoint(x, y):
                return x, y
    return None


def _sort_key(access: Access) -> Tuple[int, int, int, str, int]:
    return (0 if access.kind == WRITE else 1, len(access.locks),
            -_SCOPE_WIDTH.get(access.scope, 0), access.file, access.line)


def find_race_candidates(access_map: AccessMap) -> List[RaceCandidate]:
    """Join the annotated map into ranked race-pair candidates.

    Dispatch-layer bookkeeping (``AccessMap.dispatch``) is excluded:
    every syscall funnels through it, so pairing it would only restate
    "any two syscalls share the dispatcher".
    """
    by_path: Dict[str, Dict[str, List[Access]]] = {}
    for entry, summary in access_map.entries().items():
        for access in summary.accesses:
            if not _relevant(access):
                continue
            slot = by_path.setdefault(access.path, {})
            slot.setdefault(entry, []).append(access)

    candidates: List[RaceCandidate] = []
    for path, per_entry in sorted(by_path.items()):
        for entry in per_entry:
            # Dedup identical (kind, scope, lockset) facts; order
            # writes-first (widest scope, fewest locks) so _pick_pair's
            # first hit is the strongest evidence.
            unique: Dict[Tuple[str, str, Tuple[str, ...]], Access] = {}
            for access in sorted(per_entry[entry], key=_sort_key):
                unique.setdefault(
                    (access.kind, access.scope, access.locks), access)
            per_entry[entry] = list(unique.values())
        entries = sorted(per_entry)
        for i, entry_a in enumerate(entries):
            for entry_b in entries[i:]:
                pair = _pick_pair(per_entry[entry_a], per_entry[entry_b])
                if pair is None:
                    continue
                access_a, access_b = pair
                scope = max((access_a.scope, access_b.scope),
                            key=lambda s: _SCOPE_WIDTH.get(s, 0))
                rule = next(
                    (r for r in map(EscapeLinter.rule_for,
                                    per_entry[entry_a] + per_entry[entry_b])
                     if r is not None), None)
                if scope == NAMESPACE:
                    rank = RANK_SAME_NS
                elif rule is not None:
                    rank = RANK_BOUNDARY
                else:
                    rank = RANK_SHARED
                candidates.append(RaceCandidate(
                    path=path, scope=scope,
                    entry_a=entry_a, entry_b=entry_b,
                    access_a=access_a, access_b=access_b,
                    rank=rank, rule=rule,
                ))
    candidates.sort(key=lambda c: (c.rank, c.path, c.entry_a, c.entry_b))
    return candidates


# -- bug rediscovery ----------------------------------------------------------

@dataclass
class RaceRediscovery:
    """Per-injected-bug outcome of the differential race join."""

    flag: str
    expected: bool              #: statically detectable per the registry
    found: bool                 #: any fresh candidate vs the clean kernel
    hit_expected_path: bool     #: a fresh candidate names the bug's path
    candidates: Tuple[RaceCandidate, ...] = ()


@dataclass
class RaceRediscoveryReport:
    """Differential race-candidate rediscovery across single-bug kernels."""

    per_bug: Dict[str, RaceRediscovery] = field(default_factory=dict)

    @property
    def found(self) -> List[str]:
        return sorted(f for f, r in self.per_bug.items() if r.found)

    @property
    def missed(self) -> List[str]:
        return sorted(f for f, r in self.per_bug.items() if not r.found)

    def rate(self) -> float:
        if not self.per_bug:
            return 0.0
        return len(self.found) / len(self.per_bug)

    def matches_expectations(self) -> bool:
        return all(r.found == r.expected for r in self.per_bug.values())


def rediscover_races(index: Optional[KernelSourceIndex] = None,
                     src_dir: Optional[str] = None) -> RaceRediscoveryReport:
    """Differentially join every single-bug kernel against the clean one.

    Mirror of :func:`repro.analysis.escape.rediscover_bugs`: candidates
    present with only one bug flag set and absent from the clean
    kernel's candidate set are that bug's static race signature.
    """
    from ..kernel import bugs as bugs_mod

    index = index or KernelSourceIndex(src_dir)
    clean = find_race_candidates(
        extract_access_map(bugs_mod.fixed_kernel(), index))
    clean_keys = {c.key() for c in clean}

    specs = {s.flag: s for s in bugs_mod.BUG_SPECS}
    report = RaceRediscoveryReport()
    for flag_field in dataclasses.fields(bugs_mod.BugFlags):
        flag = flag_field.name
        buggy = find_race_candidates(extract_access_map(
            bugs_mod.BugFlags(**{flag: True}), index))
        fresh = tuple(c for c in buggy if c.key() not in clean_keys)
        bug_spec = specs.get(flag)
        expected = bug_spec.statically_detectable if bug_spec else True
        hit = bool(bug_spec) and any(
            c.path == bug_spec.state_path for c in fresh)
        report.per_bug[flag] = RaceRediscovery(
            flag=flag, expected=expected, found=bool(fresh),
            hit_expected_path=hit, candidates=fresh,
        )
    return report
