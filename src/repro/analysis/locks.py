"""Lock-discipline checking for the pipeline's shared structures.

The distributed campaign shares a handful of mutable structures across
worker threads — the baseline cache, the non-determinism store, the
cluster server's result list, the per-worker detector/profiler maps.
Each is guarded by a ``threading.Lock``/``RLock``, and the discipline is
purely lexical: every access to a guarded structure happens inside a
``with <lock>:`` block.

This checker verifies that discipline over the AST, with no aliasing or
interprocedural reasoning — which is exactly why the codebase keeps the
discipline lexical:

1. A *lock* is ``self.X = threading.Lock()`` (or ``RLock``) in a class
   ``__init__``, or ``X = threading.Lock()`` bound to a function local.
2. A structure is *guarded by* a lock if it is **mutated** (assigned,
   aug-assigned, subscript-stored, deleted, or passed through a mutating
   method such as ``append``/``setdefault``/``clear``) under a ``with``
   on that lock, anywhere in the lock's scope (the class body, or the
   defining function and its nested functions).
3. Every other access to a guarded structure — read or write, in any
   method of the class / any nested function — must also sit under a
   ``with`` on one of its locks.  ``__init__`` is exempt (the object is
   not yet published), as are initializing assignments of fresh
   container literals.

Violations carry file:line and render as ``L1`` findings.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Constructors recognized as lock objects.
_LOCK_CTORS = {"Lock", "RLock"}

#: Method names that mutate their receiver (enough for this codebase's
#: containers: dict/list/set/deque plus the cache APIs built on them).
_MUTATING_METHODS = {
    "append", "appendleft", "add", "insert", "extend", "remove", "discard",
    "pop", "popleft", "popitem", "clear", "update", "setdefault", "sort",
}

#: Default scan set, relative to the source dir: the modules hosting the
#: pipeline's cross-thread shared state.
DEFAULT_LOCK_MODULES = (
    os.path.join("repro", "core", "pipeline.py"),
    os.path.join("repro", "core", "execution.py"),
    os.path.join("repro", "core", "nondet.py"),
    os.path.join("repro", "core", "profile.py"),
    os.path.join("repro", "core", "concurrent.py"),
    os.path.join("repro", "vm", "cluster.py"),
)


@dataclass(frozen=True)
class LockFinding:
    """One access to a lock-guarded structure outside its lock."""

    file: str
    line: int
    function: str
    lock: str       #: the guarding lock ("self._lock", "detectors_lock")
    name: str       #: the guarded structure ("self._results", "detectors")
    kind: str       #: "read" | "write"
    message: str

    def render(self) -> str:
        return f"L1 {self.message}"


def _is_lock_ctor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_CTORS
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_CTORS
    return False


def _is_fresh_container(value: ast.AST) -> bool:
    """A container literal/constructor: initializing, not publishing."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp, ast.Constant)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in {"dict", "list", "set", "defaultdict",
                                 "deque", "Queue"} | _LOCK_CTORS
    return False


class _Access:
    __slots__ = ("name", "line", "kind", "function", "under", "init",
                 "mutation")

    def __init__(self, name: str, line: int, kind: str, function: str,
                 under: Tuple[str, ...], init: bool, mutation: bool):
        self.name = name
        self.line = line
        self.kind = kind              # read | write
        self.function = function
        self.under = under            # locks lexically held at the access
        self.init = init              # __init__ / fresh-container store
        self.mutation = mutation


class _ScopeWalker(ast.NodeVisitor):
    """Collects lock definitions and accesses within one lock scope.

    A scope is either a class (tracking ``self.<attr>`` names across all
    its methods) or a function with its nested functions (tracking
    local names closed over by workers).
    """

    def __init__(self, self_attrs: bool):
        self._self_attrs = self_attrs
        self.locks: Set[str] = set()
        self.accesses: List[_Access] = []
        self._held: List[str] = []
        self._function = "<module>"
        self._in_init = False

    # -- naming ------------------------------------------------------------

    def _target_name(self, node: ast.AST) -> Optional[str]:
        if self._self_attrs:
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                return f"self.{node.attr}"
            return None
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _record(self, name: str, line: int, kind: str,
                mutation: bool, init: bool = False) -> None:
        self.accesses.append(_Access(
            name, line, kind, self._function, tuple(self._held),
            init or self._in_init, mutation))

    # -- structure ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        previous, self._function = self._function, node.name
        was_init = self._in_init
        if self._self_attrs and node.name == "__init__":
            self._in_init = True
        self.generic_visit(node)
        self._function, self._in_init = previous, was_init

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_With(self, node: ast.With) -> None:
        entered: List[str] = []
        for item in node.items:
            name = self._target_name(item.context_expr)
            if name is not None:
                entered.append(name)
            else:
                self.visit(item.context_expr)
        self._held.extend(entered)
        for stmt in node.body:
            self.visit(stmt)
        if entered:
            del self._held[-len(entered):]

    # -- definitions and accesses -----------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            name = self._target_name(target)
            if name is not None:
                if _is_lock_ctor(node.value):
                    self.locks.add(name)
                elif self._self_attrs:
                    self._record(name, node.lineno, "write", mutation=True,
                                 init=_is_fresh_container(node.value))
                # A bare-name store in function scope is a local
                # rebinding — thread-confined, neither a guard-defining
                # mutation nor a checkable access.
            else:
                self._visit_store_target(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = self._target_name(node.target)
        if name is not None and node.value is not None:
            if _is_lock_ctor(node.value):
                self.locks.add(name)
            elif self._self_attrs:
                self._record(name, node.lineno, "write", mutation=True,
                             init=_is_fresh_container(node.value))
        elif node.value is not None:
            self._visit_store_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = self._target_name(node.target)
        if name is not None:
            self._record(name, node.lineno, "write", mutation=True)
        else:
            self._visit_store_target(node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._visit_store_target(target)

    def _visit_store_target(self, target: ast.AST) -> None:
        # Subscript stores mutate the *base* structure and establish its
        # guard: ``detectors[k] = v`` / ``del self._memory[k]``.  An
        # attribute store (``stats.count = n``) is a write the guard
        # must cover if one exists, but incidental writes inside a lock
        # block must not claim the structure for that lock.
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            name = self._target_name(target.value)
            if name is not None:
                self._record(name, target.lineno, "write",
                             mutation=isinstance(target, ast.Subscript))
                if isinstance(target, ast.Subscript):
                    self.visit(target.slice)
                return
        self.visit(target)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = self._target_name(node)
        if name is not None:
            if name not in self.locks:
                self._record(name, node.lineno, "read", mutation=False)
            return
        base = self._target_name(node.value)
        if base is not None and base not in self.locks:
            # ``<name>.attr`` — a load through the structure.
            self._record(base, node.lineno, "read", mutation=False)
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self._self_attrs:
            return
        if isinstance(node.ctx, ast.Load) and node.id not in self.locks:
            self._record(node.id, node.lineno, "read", mutation=False)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            base = self._target_name(node.func.value)
            if base is not None and base not in self.locks:
                mutation = node.func.attr in _MUTATING_METHODS
                self._record(base, node.lineno,
                             "write" if mutation else "read", mutation)
                for arg in list(node.args) + [kw.value for kw in
                                              node.keywords]:
                    self.visit(arg)
                return
        self.generic_visit(node)


def _check_scope(walker: _ScopeWalker, file: str,
                 findings: List[LockFinding]) -> None:
    if not walker.locks:
        return
    # name -> locks it was mutated under (its guard set).
    guards: Dict[str, Set[str]] = {}
    for access in walker.accesses:
        if access.mutation and not access.init:
            held = set(access.under) & walker.locks
            if held:
                guards.setdefault(access.name, set()).update(held)
    for access in walker.accesses:
        guard_locks = guards.get(access.name)
        if not guard_locks or access.init:
            continue
        if set(access.under) & guard_locks:
            continue
        lock = sorted(guard_locks)[0]
        findings.append(LockFinding(
            file=file, line=access.line, function=access.function,
            lock=lock, name=access.name, kind=access.kind,
            message=(f"{file}:{access.line}: {access.kind} of "
                     f"{access.name} in {access.function} outside "
                     f"'with {lock}:' (structure is guarded elsewhere)"),
        ))


def _check_module(path: str, rel: str,
                  findings: List[LockFinding]) -> None:
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            walker = _ScopeWalker(self_attrs=True)
            for item in node.body:
                walker.visit(item)
            _check_scope(walker, rel, findings)
        elif isinstance(node, ast.FunctionDef):
            # Function-local locks shared with nested closures
            # (``detectors_lock`` in the distributed executor).
            if not any(_is_lock_ctor(stmt.value)
                       for stmt in node.body
                       if isinstance(stmt, ast.Assign)):
                continue
            walker = _ScopeWalker(self_attrs=False)
            walker._function = node.name
            for stmt in node.body:
                walker.visit(stmt)
            _check_scope(walker, rel, findings)


def check_lock_discipline(src_dir: Optional[str] = None,
                          modules: Sequence[str] = DEFAULT_LOCK_MODULES
                          ) -> List[LockFinding]:
    """Check the lexical lock discipline of the given modules.

    *modules* are paths relative to *src_dir* (default: this repo's
    ``src``); absolute paths are taken as-is so tests can point the
    checker at synthetic files.
    """
    if src_dir is None:
        from .sources import _repo_src_dir
        src_dir = _repo_src_dir()
    findings: List[LockFinding] = []
    for module in modules:
        if os.path.isabs(module):
            path, rel = module, os.path.basename(module)
        else:
            path = os.path.join(src_dir, module)
            rel = os.path.join("src", module)
        if not os.path.exists(path):
            continue
        _check_module(path, rel, findings)
    findings.sort(key=lambda f: (f.file, f.line))
    return findings
