"""Lock-discipline checking for the pipeline's shared structures.

The distributed campaign shares a handful of mutable structures across
worker threads — the baseline cache, the non-determinism store, the
cluster server's result list, the per-worker detector/profiler maps,
the shared-memory segment store.  Each is guarded by a
``threading.Lock``/``RLock``, and every access to a guarded structure
must hold one of its guard locks.

The checking core lives in :mod:`repro.analysis.locksets` — a flow-
and alias-aware lockset walk that subsumes the original lexical rule:

``L1``
    Direct access to a guarded structure without the lock (the
    original lexical finding, now also discharged by
    ``acquire()``/``release()`` flow and by helper entry contexts —
    a private helper whose every intra-class call site holds the lock
    is clean without retaking it).
``L2``
    A guarded structure reached *around* the discipline: through a
    local alias (``view = self._results``) or through a private helper
    that some call path enters without the lock.
``S1``
    Shared-memory segment lifecycle: a ``SharedMemory(create=True)``
    that an exception path can leak before it is closed, unlinked, or
    handed off to a tracked owner.

This module keeps the stable entry point and the default scan set.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from .locksets import (          # noqa: F401  (re-exported API)
    DEFAULT_LINT_SUPPRESSIONS,
    LintSuppression,
    LockFinding,
    lint_modules,
)

#: Default scan set, relative to the source dir: the modules hosting the
#: pipeline's cross-thread shared state (plus the shard-pool supervisor
#: and the shared-memory store, which own the process-shared segments).
DEFAULT_LOCK_MODULES = (
    os.path.join("repro", "core", "pipeline.py"),
    os.path.join("repro", "core", "execution.py"),
    os.path.join("repro", "core", "nondet.py"),
    os.path.join("repro", "core", "profile.py"),
    os.path.join("repro", "core", "concurrent.py"),
    os.path.join("repro", "vm", "cluster.py"),
    os.path.join("repro", "vm", "shardpool.py"),
    os.path.join("repro", "vm", "shm.py"),
)


def check_lock_discipline(src_dir: Optional[str] = None,
                          modules: Sequence[str] = DEFAULT_LOCK_MODULES,
                          suppressions: Sequence[LintSuppression]
                          = DEFAULT_LINT_SUPPRESSIONS,
                          cache=None) -> List[LockFinding]:
    """Check the lock discipline of the given modules.

    *modules* are paths relative to *src_dir* (default: this repo's
    ``src``); absolute paths are taken as-is so tests can point the
    checker at synthetic files.  Findings suppressed as vetted false
    positives are dropped.  *cache* (an
    :class:`~repro.analysis.cache.AnalysisCache`) makes the scan
    incremental: unchanged modules reuse their cached findings.
    """
    return lint_modules(src_dir=src_dir, modules=modules,
                        suppressions=suppressions, cache=cache)
