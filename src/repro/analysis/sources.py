"""Source indexing for the static analyzer.

Parses the simulated kernel's modules once and answers the structural
questions the abstract interpreter asks while walking handler bodies:

* which class does ``kernel.<attr>`` name (from ``Kernel.__init__``'s
  ``self.net = NetSubsystem(self)`` wiring),
* which class implements a namespace type (``NS_TYPE`` declarations),
* where is the definition of a given function / method (following
  base classes and ``from x import y`` aliases),
* what container kind does ``self.<attr>`` hold inside a class
  (``KList`` / ``KDict`` / ``KCell`` / traced struct / plain Python),
* the value of module-level integer/string constants (for folding
  comparisons like ``family == AF_UNIX``).

Everything is derived from the AST alone — the index never imports the
kernel, so it can analyze a tree that does not run.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Container constructors that allocate from the traced arena.
_ARENA_KINDS = {"KList": "klist", "KDict": "kdict", "KCell": "kcell",
                "JumpLabel": "kcell"}


@dataclass
class ClassInfo:
    """One parsed class definition."""

    name: str
    module: str
    bases: Tuple[str, ...]
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: self.<attr> -> container kind ("klist" | "kdict" | "kcell" |
    #: "plain") as assigned in __init__.
    attr_kinds: Dict[str, str] = field(default_factory=dict)
    #: self.<attr> -> name of the class constructed into it.
    attr_classes: Dict[str, str] = field(default_factory=dict)
    #: KStruct FIELDS declared on this class.
    fields: Tuple[str, ...] = ()
    #: NamespaceType name for Namespace subclasses ("net", "uts", ...).
    ns_type: Optional[str] = None


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str
    path: str
    tree: ast.Module
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: imported name -> (source module, original name).
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level NAME = <int|str> constants.
    constants: Dict[str, object] = field(default_factory=dict)


def _repo_src_dir() -> str:
    # .../src/repro/analysis/sources.py -> .../src
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _resolve_relative(module: str, node: ast.ImportFrom) -> str:
    """Turn ``from ..memory import KCell`` into an absolute module name."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # level=1 strips the module's own name, each extra level one package.
    base = parts[:len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base)


class KernelSourceIndex:
    """Parsed view of ``repro.kernel`` (and friends) for the analyzer."""

    def __init__(self, src_dir: Optional[str] = None):
        self.src_dir = src_dir or _repo_src_dir()
        self.modules: Dict[str, ModuleInfo] = {}
        #: class name -> ClassInfo (kernel-wide; names are unique here).
        self.classes: Dict[str, ClassInfo] = {}
        #: kernel.<attr> -> class name, from Kernel.__init__.
        self.subsystems: Dict[str, str] = {}
        #: NamespaceType name -> ClassInfo of its implementation.
        self.namespace_classes: Dict[str, ClassInfo] = {}
        self._load()

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        kernel_dir = os.path.join(self.src_dir, "repro", "kernel")
        for root, __, files in os.walk(kernel_dir):
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                rel = os.path.relpath(path, self.src_dir)
                module = rel[:-3].replace(os.sep, ".")
                if module.endswith(".__init__"):
                    module = module[:-len(".__init__")]
                self._parse(module, path)
        self._wire_kernel()

    def _parse(self, module: str, path: str) -> None:
        with open(path) as handle:
            tree = ast.parse(handle.read(), filename=path)
        info = ModuleInfo(module, path, tree)
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                info.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                info.classes[node.name] = self._parse_class(node, module)
            elif isinstance(node, ast.ImportFrom):
                source = _resolve_relative(module, node)
                for alias in node.names:
                    info.imports[alias.asname or alias.name] = (
                        source, alias.name)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and \
                        isinstance(node.value, ast.Constant):
                    info.constants[target.id] = node.value.value
        self.modules[module] = info
        for cls in info.classes.values():
            self.classes[cls.name] = cls
            if cls.ns_type is not None:
                self.namespace_classes[cls.ns_type] = cls

    def _parse_class(self, node: ast.ClassDef, module: str) -> ClassInfo:
        bases = tuple(
            b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
            for b in node.bases
        )
        info = ClassInfo(node.name, module, bases)
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                info.methods[item.name] = item
            elif isinstance(item, ast.Assign) and len(item.targets) == 1:
                target = item.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "FIELDS" and isinstance(item.value, ast.Dict):
                    info.fields = tuple(
                        k.value for k in item.value.keys
                        if isinstance(k, ast.Constant)
                    )
                if target.id == "NS_TYPE" and \
                        isinstance(item.value, ast.Attribute):
                    info.ns_type = item.value.attr.lower()
        init = info.methods.get("__init__")
        if init is not None:
            self._parse_init(init, info)
        return info

    def _parse_init(self, init: ast.FunctionDef, info: ClassInfo) -> None:
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            value = stmt.value
            if isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Name):
                ctor = value.func.id
                info.attr_kinds[target.attr] = _ARENA_KINDS.get(ctor, "plain")
                info.attr_classes[target.attr] = ctor
            else:
                info.attr_kinds.setdefault(target.attr, "plain")

    def _wire_kernel(self) -> None:
        kernel_cls = self.classes.get("Kernel")
        if kernel_cls is None:  # pragma: no cover - defensive
            return
        for attr, ctor in kernel_cls.attr_classes.items():
            if ctor in self.classes:
                self.subsystems[attr] = ctor

    # -- lookups ----------------------------------------------------------

    def module_of_class(self, class_name: str) -> Optional[ModuleInfo]:
        cls = self.classes.get(class_name)
        return self.modules.get(cls.module) if cls else None

    def method_def(self, class_name: str, method: str
                   ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        """Find *method* on *class_name*, chasing base classes by name."""
        seen = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is None:
                continue
            if method in cls.methods:
                return cls, cls.methods[method]
            queue.extend(cls.bases)
        return None

    def attr_kind(self, class_name: str, attr: str) -> Optional[str]:
        """Container kind of ``self.<attr>``, chasing base classes."""
        seen = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is None:
                continue
            if attr in cls.attr_kinds:
                return cls.attr_kinds[attr]
            if attr in cls.fields:
                return "field"
            queue.extend(cls.bases)
        return None

    def function_def(self, module: str, name: str
                     ) -> Optional[Tuple[ModuleInfo, ast.FunctionDef]]:
        """Resolve a module-level function, following import aliases."""
        seen = set()
        current, target = module, name
        while (current, target) not in seen:
            seen.add((current, target))
            info = self.modules.get(current)
            if info is None:
                return None
            if target in info.functions:
                return info, info.functions[target]
            if target in info.imports:
                current, target = info.imports[target]
                continue
            return None
        return None

    def resolve_constant(self, module: str, name: str) -> Optional[object]:
        """Module-level constant value, following import aliases."""
        seen = set()
        current, target = module, name
        while (current, target) not in seen:
            seen.add((current, target))
            info = self.modules.get(current)
            if info is None:
                return None
            if target in info.constants:
                return info.constants[target]
            if target in info.imports:
                current, target = info.imports[target]
                continue
            return None
        return None

    def is_class_name(self, module: str, name: str) -> bool:
        """Does *name* (possibly imported) refer to a known class?"""
        if name in self.classes:
            return True
        info = self.modules.get(module)
        if info and name in info.imports:
            return info.imports[name][1] in self.classes
        return False

    def relative_path(self, path: str) -> str:
        try:
            return os.path.relpath(path, os.path.dirname(self.src_dir))
        except ValueError:  # pragma: no cover - windows drives
            return path
