"""The kernel-state location lattice.

Every piece of mutable state the abstract interpreter can reach is
named by a :class:`StateLocation`: a dotted *path* plus a *scope* that
says which containers share the state.

Paths
-----

``kernel.<subsystem>.<field>``
    State hanging off a :class:`~repro.kernel.kernel.Kernel` subsystem
    attribute — ``kernel.net.sockets_used_global``,
    ``kernel.ptype.ptype_all``, ``kernel.vfs.anon_dev_next``.
``ns:<nstype>.<field>``
    State inside a namespace instance — ``ns:net.port_table``,
    ``ns:uts.hostname``, ``ns:ipc.msg_queues``.
``task.<field>``
    Per-task state — ``task.nice``, ``task.nsproxy``.
``fd.<field>``
    State inside an object reached through the caller's fd table
    (sockets, open files) — ``fd.rx_queue``, ``fd.offset``.

Scopes
------

The scope qualifies *whose instance* the path names:

``GLOBAL``
    A single kernel-wide allocation; every container aliases it.
``NAMESPACE``
    The instance belonging to the calling task's namespace; distinct
    containers resolve the same path to distinct allocations.
``TASK``
    The calling task's own struct, or an object owned by one of its
    fds; private to the container.
``BROADCAST``
    A path reached by *enumerating* instances across namespaces
    (``kernel.namespaces.live(...)``, ``tasks.all_tasks()``): one
    container's access touches every other container's instance.
``INIT``
    The init namespace's instance, reached through a
    ``kernel.init_*`` escape hatch rather than ``task.nsproxy``.

The lattice deliberately mirrors the arena's aliasing semantics
(:mod:`repro.kernel.memory`): GLOBAL/BROADCAST/INIT paths are the ones
whose runtime addresses can collide across containers, so only they can
carry inter-container interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple

GLOBAL = "global"
NAMESPACE = "namespace"
TASK = "task"
BROADCAST = "broadcast"
INIT = "init"

#: Scopes whose instances are shared (or reachable) across containers.
SHARED_SCOPES: FrozenSet[str] = frozenset({GLOBAL, BROADCAST, INIT})

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class StateLocation:
    """One canonical kernel-state location."""

    path: str
    scope: str

    def is_shared(self) -> bool:
        return self.scope in SHARED_SCOPES

    def __str__(self) -> str:
        return f"{self.path} [{self.scope}]"


@dataclass(frozen=True)
class Access:
    """One static access to a :class:`StateLocation`.

    ``traced``
        Whether the runtime access goes through the traced arena
        (``kget``/``kset``/container ops) or bypasses it
        (``peek``/``poke``, plain-Python containers).  Only traced
        accesses can appear in dynamic profiles.
    ``observable``
        Whether the *value* read can flow into the syscall's result.
        A read-modify-write whose result is discarded (a bare
        ``cell.add(n)`` statement) reads memory but can never surface
        in a trace divergence, so the pre-filter ignores it.  Always
        True for writes.
    ``guarded``
        Whether the enclosing function applies a namespace guard
        (an ``is``/``is not`` comparison against a namespace value, a
        PID translation, or a namespace-filtering comprehension) —
        the lint's evidence that a global read is deliberate
        filtering rather than an escape.
    ``locks``
        The *must-held* lockset at the access: canonical paths of
        every kernel lock object (``KLock``) whose ``with`` block
        lexically or interprocedurally encloses this program point.
        Exact (not may-held): ``with`` is lexically scoped, so a lock
        pushed on entry to the block is guaranteed held throughout.
    """

    location: StateLocation
    kind: str  # READ | WRITE
    file: str
    line: int
    function: str
    traced: bool = True
    observable: bool = True
    guarded: bool = False
    locks: Tuple[str, ...] = ()

    @property
    def path(self) -> str:
        return self.location.path

    @property
    def scope(self) -> str:
        return self.location.scope

    def is_read(self) -> bool:
        return self.kind == READ

    def is_write(self) -> bool:
        return self.kind == WRITE

    def site(self) -> str:
        return f"{self.file}:{self.line}"

    def __str__(self) -> str:
        flags = "".join((
            "" if self.traced else "u",
            "" if self.observable else "b",
            "g" if self.guarded else "",
        ))
        suffix = f" ({flags})" if flags else ""
        held = f" <{','.join(self.locks)}>" if self.locks else ""
        return (f"{self.kind:<5} {self.location} in {self.function} "
                f"at {self.site()}{suffix}{held}")


@dataclass
class FunctionSummary:
    """Everything one walked function contributed."""

    function: str
    accesses: Tuple[Access, ...] = ()
    #: A namespace guard was seen while walking (after flag folding).
    guarded: bool = False
    #: The walk hit a /proc render with a non-constant key: the
    #: function may read any proc file (resolved per-program by the
    #: pre-filter, treated as a boundary by the lint).
    proc_wildcard: bool = False


def merge_guard(summary: FunctionSummary) -> Tuple[Access, ...]:
    """Finalize a summary: stamp the function-level guard onto accesses."""
    if not summary.guarded:
        return summary.accesses
    return tuple(replace(a, guarded=True) for a in summary.accesses)
