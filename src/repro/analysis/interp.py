"""Abstract interpretation of kernel-model handler bodies.

The interpreter walks syscall-handler ``ast`` bodies with an abstract
environment that tracks *where state lives* instead of what it holds:
``task.nsproxy.get(NamespaceType.NET)`` evaluates to "the caller's net
namespace", ``self.sockets_used_global`` to "the traced cell at
``kernel.net.sockets_used_global``".  Method calls on those values emit
:class:`~repro.analysis.locations.Access` records; calls into other
kernel-model functions are inlined so a handler's summary covers its
whole dynamic extent (matching what the runtime tracer would see).

Precision choices mirror the runtime's aliasing semantics
(:mod:`repro.kernel.memory`):

* Bug flags (``kernel.bugs.<flag>``) fold to constants when the
  interpreter is given a :class:`~repro.kernel.bugs.BugFlags`, so each
  kernel version yields its own access map — the escape lint
  rediscovers injected bugs by diffing maps across versions.
* Branches whose condition cannot be folded are walked both ways and
  the environments joined; the map over-approximates reachable
  accesses, never misses them.
* Namespace *guards* — ``is``/``is not`` tests between namespace
  values, PID translation helpers, namespace-filtering comprehensions
  — are detected per function and stamped onto that function's own
  accesses only: a guard in a helper does not launder its callers.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from .locations import (
    BROADCAST,
    GLOBAL,
    INIT,
    NAMESPACE,
    READ,
    TASK,
    WRITE,
    Access,
    FunctionSummary,
    StateLocation,
)
from .sources import ClassInfo, KernelSourceIndex, ModuleInfo

# -- method classification ----------------------------------------------------

#: Traced container reads (value is returned to the caller).
_READ_METHODS = frozenset({
    "get", "lookup", "values", "keys", "items", "enabled", "index",
})
#: Untraced reads (peek family bypasses the arena tracer).
_PEEK_METHODS = frozenset({"peek", "peek_items", "peek_count"})
#: Container writes.
_WRITE_METHODS = frozenset({
    "set", "insert", "append", "remove", "delete", "clear", "extend",
    "sort", "appendleft",
})
#: Writes that also return the removed value (read + write).
_POP_METHODS = frozenset({"pop", "pop_front", "popleft"})
#: Read-modify-write scalar ops; the read half is observable only when
#: the result is used (a bare ``cell.add(1)`` statement is blind).
_RMW_METHODS = frozenset({"add", "inc", "dec"})
#: KStruct field accessors: first argument names the field.
_KSTRUCT_READS = frozenset({"kget", "peek"})
_KSTRUCT_WRITES = frozenset({"kset", "poke"})

#: Attribute names that hold namespace references on arbitrary objects.
_NS_ATTRS = {
    "ns": None, "netns": "net", "net_ns": "net", "pid_ns": "pid",
    "mnt_ns": "mnt", "ipc_ns": "ipc", "uts_ns": "uts", "time_ns": "time",
    "namespace": None,
}

#: Calls whose presence marks a function as namespace-guarded.
_GUARD_CALLS = frozenset({"vpid_in", "find_in_ns", "_translate_pid",
                          "shares_with"})

#: Container kinds allocated from the traced arena.
_TRACED_KINDS = frozenset({"kcell", "klist", "kdict"})

_MAX_DEPTH = 14

# Abstract values are tuples tagged by their first element:
#   ("kernel",)                      the Kernel instance
#   ("bugs",) ("config",) ("clock",) ("arena",)
#   ("tasktable",) ("registry",)     kernel.tasks / kernel.namespaces
#   ("task", origin)                 origin: own|enum|init|lookup
#   ("nsproxy", origin)
#   ("ns", nstype|None, origin)     origin: own|param|enum|init|other
#   ("fdtable", origin)
#   ("loc", path, scope, kind)       a state container
#   ("inst", cls|None, path, scope)  an object anchored at a path
#   ("class", name)                  a class object
#   ("nstype", name)                 a NamespaceType member
#   ("const", value)                 a Python constant
#   ("list", elem) ("tuple", (..))  sequences
#   ("multi", (v, w))               join of two values
#   None                             unknown


def _const(value: Any) -> Tuple[str, Any]:
    return ("const", value)


def _is_const(value: Any) -> bool:
    return isinstance(value, tuple) and value and value[0] == "const"


def _join(a: Any, b: Any) -> Any:
    """Join two abstract values after a branch merge."""
    if a == b:
        return a
    if a is None or b is None:
        return None
    if a[0] == "list" and b[0] == "list":
        return ("list", _join(a[1], b[1]))
    return ("multi", (a, b))


def _flatten(value: Any) -> List[Any]:
    """Expand ``multi`` joins into the set of possible values."""
    if isinstance(value, tuple) and value and value[0] == "multi":
        out: List[Any] = []
        for item in value[1]:
            out.extend(_flatten(item))
        return out
    return [value]


def _narrow_enum(value: Any) -> Any:
    """Narrow enumeration-origin values to namespace scope.

    Applied to the return value of a *namespace-guarded* helper: a
    function that enumerates tasks/namespaces but filters them through
    a guard (``vpid_in``, membership tests) returns the caller-visible
    subset, so consumers touch NAMESPACE-scoped instances, not a
    broadcast.  The helper's own accesses keep their broadcast scope
    (plus the guard stamp) — only what it hands back is narrowed.
    """
    if not isinstance(value, tuple) or not value:
        return value
    if value[0] == "task" and value[1] == "enum":
        return ("task", "lookup")
    if value[0] == "ns" and value[2] == "enum":
        return ("ns", value[1], "other")
    if value[0] == "list":
        return ("list", _narrow_enum(value[1]))
    if value[0] == "tuple":
        return ("tuple", tuple(_narrow_enum(v) for v in value[1]))
    if value[0] == "multi":
        return ("multi", tuple(_narrow_enum(v) for v in value[1]))
    return value


def _ns_scope(origin: str) -> str:
    return {"enum": BROADCAST, "init": INIT}.get(origin, NAMESPACE)


def _task_scope(origin: str) -> str:
    return {"enum": BROADCAST, "init": INIT,
            "lookup": NAMESPACE}.get(origin, TASK)


class _Frame:
    """One walked function: its environment, accesses, and guard flag."""

    def __init__(self, module: ModuleInfo, qualname: str,
                 env: Dict[str, Any]):
        self.module = module
        self.qualname = qualname
        self.env = env
        self.own: List[Access] = []
        self.children: List[Access] = []
        self.guarded = False
        self.returns: Any = "__none__"  # sentinel: no return seen yet

    def add_return(self, value: Any) -> None:
        if self.returns == "__none__":
            self.returns = value
        else:
            self.returns = _join(self.returns, value)

    def finalize(self) -> Tuple[Access, ...]:
        own = tuple(
            replace(a, guarded=True) for a in self.own
        ) if self.guarded else tuple(self.own)
        return own + tuple(self.children)


class AbstractInterpreter:
    """Walks kernel-model functions and produces access summaries."""

    def __init__(self, index: KernelSourceIndex, bugs: Any = None):
        self.index = index
        #: BugFlags instance to fold ``kernel.bugs.<flag>`` against, or
        #: None for union mode (both branches of every bug conditional).
        self.bugs = bugs
        self._stack: List[int] = []
        self.proc_wildcard = False
        #: Must-held lockset stack: canonical paths of the KLock
        #: instances whose ``with`` blocks enclose the current point.
        self._held_locks: List[str] = []
        #: Interprocedural summary cache, keyed by (function identity,
        #: abstract arguments, entry-held lockset).  Persists across
        #: entry points so shared helpers are walked once per calling
        #: context; only truncation-free walks are cached, so cached
        #: summaries are exact and position-independent.
        self._summaries: Dict[Any, Tuple[Tuple[Access, ...], Any, bool]] = {}
        #: Depth/recursion truncation events — walks during which the
        #: counter moves are incomplete and must not populate the cache.
        self._truncations = 0

    # -- public entry points --------------------------------------------------

    def walk_handler(self, module: ModuleInfo, funcdef: ast.FunctionDef,
                     qualname: str) -> FunctionSummary:
        """Summarize a table.py handler ``(kernel, task, args)``."""
        env = {"kernel": ("kernel",), "task": ("task", "own"),
               "args": ("args",)}
        return self._walk_entry(module, funcdef, qualname, env)

    def walk_method(self, cls: ClassInfo, funcdef: ast.FunctionDef,
                    self_value: Any, params: Dict[str, Any],
                    qualname: Optional[str] = None) -> FunctionSummary:
        """Summarize a method called with the given abstract arguments."""
        module = self.index.modules[cls.module]
        env = dict(params)
        env.setdefault("self", self_value)
        return self._walk_entry(module, funcdef,
                                qualname or f"{cls.name}.{funcdef.name}", env)

    def _walk_entry(self, module: ModuleInfo, funcdef: ast.FunctionDef,
                    qualname: str, env: Dict[str, Any]) -> FunctionSummary:
        self.proc_wildcard = False
        self._stack = []
        self._held_locks = []
        frame = _Frame(module, qualname, env)
        self._stack.append(id(funcdef))
        try:
            self._walk_body(funcdef.body, frame)
        finally:
            self._stack.pop()
        return FunctionSummary(qualname, frame.finalize(), frame.guarded,
                               self.proc_wildcard)

    # -- access recording -----------------------------------------------------

    def _record(self, frame: _Frame, node: ast.AST, path: str, scope: str,
                kind: str, traced: bool, observable: bool = True) -> None:
        if path is None:
            return
        frame.own.append(Access(
            StateLocation(path, scope), kind,
            self.index.relative_path(frame.module.path),
            getattr(node, "lineno", 0), frame.qualname,
            traced, observable, False,
            tuple(sorted(set(self._held_locks))),
        ))

    # -- statements -----------------------------------------------------------

    def _walk_body(self, body: List[ast.stmt], frame: _Frame) -> None:
        for stmt in body:
            self._walk_stmt(stmt, frame)

    def _walk_stmt(self, stmt: ast.stmt, frame: _Frame) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, frame)
            for target in stmt.targets:
                self._assign(target, value, stmt, frame)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value, frame),
                             stmt, frame)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value, frame)
            # x += n reads and writes the target location.
            self._attr_access(stmt.target, frame, READ)
            self._assign(stmt.target, None, stmt, frame)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, frame, stmt_position=True)
        elif isinstance(stmt, ast.Return):
            frame.add_return(
                self._eval(stmt.value, frame) if stmt.value else _const(None))
        elif isinstance(stmt, ast.If):
            self._walk_if(stmt, frame)
        elif isinstance(stmt, ast.For):
            elem = self._iterate(self._eval(stmt.iter, frame), stmt.iter,
                                 frame)
            self._assign(stmt.target, elem, stmt, frame)
            self._walk_body(stmt.body, frame)
            self._walk_body(stmt.orelse, frame)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, frame)
            self._walk_body(stmt.body, frame)
            self._walk_body(stmt.orelse, frame)
        elif isinstance(stmt, ast.With):
            pushed = 0
            for item in stmt.items:
                value = self._eval(item.context_expr, frame)
                # A ``with <KLock>:`` adds the lock to the must-held
                # set for the (lexical) body.  Joined values only count
                # when every branch resolves to the same lock — must-
                # held may never over-claim protection.
                options = _flatten(value)
                paths = [opt[2] for opt in options
                         if isinstance(opt, tuple) and len(opt) == 4
                         and opt[0] == "inst" and opt[1] == "KLock"]
                if (paths and len(paths) == len(options)
                        and len(set(paths)) == 1):
                    self._held_locks.append(paths[0])
                    pushed += 1
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, stmt, frame)
            self._walk_body(stmt.body, frame)
            if pushed:
                del self._held_locks[-pushed:]
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, frame)
            for handler in stmt.handlers:
                self._walk_body(handler.body, frame)
            self._walk_body(stmt.orelse, frame)
            self._walk_body(stmt.finalbody, frame)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, frame)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    container = self._eval(target.value, frame)
                    self._container_effect(container, target, frame, WRITE)
        # pass/break/continue/assert/import: nothing to track.

    def _walk_if(self, stmt: ast.If, frame: _Frame) -> None:
        test = self._eval(stmt.test, frame)
        truth = self._truth(test)
        if truth is True:
            self._walk_body(stmt.body, frame)
            return
        if truth is False:
            self._walk_body(stmt.orelse, frame)
            return
        # Unknown condition: walk both branches on copies, then join.
        narrowed = self._isinstance_narrowing(stmt.test, frame)
        before = dict(frame.env)
        if narrowed:
            frame.env.update(narrowed)
        self._walk_body(stmt.body, frame)
        after_body = frame.env
        frame.env = dict(before)
        self._walk_body(stmt.orelse, frame)
        for name, value in after_body.items():
            if name in narrowed:
                frame.env[name] = before.get(name)
                continue
            if name not in frame.env:
                frame.env[name] = value
            elif frame.env[name] != value:
                frame.env[name] = _join(frame.env[name], value)

    def _isinstance_narrowing(self, test: ast.expr,
                              frame: _Frame) -> Dict[str, Any]:
        """``if isinstance(x, Cls):`` narrows x to Cls in the body."""
        if not (isinstance(test, ast.Call) and isinstance(test.func, ast.Name)
                and test.func.id == "isinstance" and len(test.args) == 2
                and isinstance(test.args[0], ast.Name)):
            return {}
        cls = self._eval(test.args[1], frame)
        value = frame.env.get(test.args[0].id)
        if (isinstance(cls, tuple) and cls[0] == "class"
                and isinstance(value, tuple) and value[0] == "inst"):
            return {test.args[0].id: ("inst", cls[1], value[2], value[3])}
        return {}

    def _assign(self, target: ast.expr, value: Any, stmt: ast.stmt,
                frame: _Frame) -> None:
        if isinstance(target, ast.Name):
            frame.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            parts = (value[1] if isinstance(value, tuple) and value
                     and value[0] == "tuple" else None)
            for i, elt in enumerate(target.elts):
                part = parts[i] if parts and i < len(parts) else None
                self._assign(elt, part, stmt, frame)
        elif isinstance(target, ast.Attribute):
            self._attr_access(target, frame, WRITE)
        elif isinstance(target, ast.Subscript):
            container = self._eval(target.value, frame)
            self._eval(target.slice, frame)
            self._container_effect(container, target, frame, WRITE)

    def _attr_access(self, target: ast.expr, frame: _Frame,
                     kind: str) -> None:
        """Record a plain-attribute store/load (``obj.attr = v``)."""
        if not isinstance(target, ast.Attribute):
            return
        base = self._eval(target.value, frame)
        attr = target.attr
        if attr.startswith("_") or base is None:
            return
        path_scope = self._instance_path(base)
        if path_scope is None:
            return
        path, scope = path_scope
        self._record(frame, target, f"{path}.{attr}", scope, kind,
                     traced=False)

    def _instance_path(self, value: Any) -> Optional[Tuple[str, str]]:
        """Anchor path/scope for plain-attribute access on a value."""
        for v in _flatten(value):
            if not isinstance(v, tuple):
                continue
            if v[0] == "inst":
                return v[2], v[3]
            if v[0] == "task":
                return "task", _task_scope(v[1])
            if v[0] == "ns":
                return f"ns:{v[1] or '?'}", _ns_scope(v[2])
            if v[0] == "kernel":
                return "kernel", GLOBAL
            if v[0] == "loc":
                return v[1], v[2]
        return None

    # -- expressions ----------------------------------------------------------

    def _eval(self, node: ast.expr, frame: _Frame,
              stmt_position: bool = False) -> Any:
        if isinstance(node, ast.Constant):
            return _const(node.value)
        if isinstance(node, ast.Name):
            return self._eval_name(node.id, frame)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, frame)
        if isinstance(node, ast.Call):
            return self._eval_call(node, frame, stmt_position)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, frame)
        if isinstance(node, ast.BoolOp):
            return self._eval_boolop(node, frame)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, frame)
            if isinstance(node.op, ast.Not):
                truth = self._truth(operand)
                return _const(not truth) if truth is not None else None
            if isinstance(node.op, ast.USub) and _is_const(operand):
                try:
                    return _const(-operand[1])
                except TypeError:
                    return None
            return None
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, frame)
            right = self._eval(node.right, frame)
            if _is_const(left) and _is_const(right):
                try:
                    return _const(self._fold_binop(node.op, left[1],
                                                   right[1]))
                except Exception:
                    return None
            if (isinstance(left, tuple) and left and left[0] == "list"
                    and isinstance(right, tuple) and right
                    and right[0] == "list"):
                return ("list", _join(left[1], right[1]))
            return None
        if isinstance(node, ast.IfExp):
            truth = self._truth(self._eval(node.test, frame))
            if truth is True:
                return self._eval(node.body, frame)
            if truth is False:
                return self._eval(node.orelse, frame)
            return _join(self._eval(node.body, frame),
                         self._eval(node.orelse, frame))
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, frame)
        if isinstance(node, (ast.List, ast.Set)):
            elem: Any = None
            first = True
            for elt in node.elts:
                value = self._eval(elt, frame)
                elem = value if first else _join(elem, value)
                first = False
            return ("list", elem)
        if isinstance(node, ast.Tuple):
            return ("tuple", tuple(self._eval(e, frame) for e in node.elts))
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, frame)
            for value in node.values:
                self._eval(value, frame)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, frame)
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                elem = self._iterate(self._eval(gen.iter, frame), node, frame)
                self._assign(gen.target, elem, ast.Pass(), frame)
                for cond in gen.ifs:
                    self._eval(cond, frame)
            self._eval(node.key, frame)
            self._eval(node.value, frame)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, frame)
            return None
        if isinstance(node, ast.FormattedValue):
            self._eval(node.value, frame)
            return None
        if isinstance(node, ast.Starred):
            return self._eval(node.value, frame)
        if isinstance(node, ast.Lambda):
            return None
        if isinstance(node, ast.Slice):
            return None
        return None

    @staticmethod
    def _fold_binop(op: ast.operator, left: Any, right: Any) -> Any:
        import operator
        table = {ast.Add: operator.add, ast.Sub: operator.sub,
                 ast.Mult: operator.mul, ast.FloorDiv: operator.floordiv,
                 ast.Mod: operator.mod, ast.BitOr: operator.or_,
                 ast.BitAnd: operator.and_, ast.BitXor: operator.xor}
        return table[type(op)](left, right)

    def _eval_comprehension(self, node: ast.expr, frame: _Frame) -> Any:
        for gen in node.generators:
            elem = self._iterate(self._eval(gen.iter, frame), node, frame)
            self._assign(gen.target, elem, ast.Pass(), frame)
            for cond in gen.ifs:
                self._eval(cond, frame)
        value = self._eval(node.elt, frame)
        return ("list", value)

    def _eval_name(self, name: str, frame: _Frame) -> Any:
        if name in frame.env:
            return frame.env[name]
        const = self.index.resolve_constant(frame.module.name, name)
        if const is not None:
            return _const(const)
        resolved = self._resolve_class_name(frame.module, name)
        if resolved is not None:
            return ("class", resolved)
        return None

    def _resolve_class_name(self, module: ModuleInfo,
                            name: str) -> Optional[str]:
        if name in module.classes:
            return name
        if name in module.imports:
            target = module.imports[name][1]
            if target in self.index.classes or target == "NamespaceType":
                return target
        if name in self.index.classes:
            return name
        return None

    # -- attributes -----------------------------------------------------------

    def _eval_attribute(self, node: ast.Attribute, frame: _Frame) -> Any:
        base = self._eval(node.value, frame)
        attr = node.attr
        results = [self._attr_on(v, attr, node, frame)
                   for v in _flatten(base)]
        out = results[0]
        for value in results[1:]:
            out = _join(out, value)
        return out

    def _attr_on(self, base: Any, attr: str, node: ast.Attribute,
                 frame: _Frame) -> Any:
        if not isinstance(base, tuple) or not base:
            # Unknown base: namespace-pointer attrs still resolve.
            if attr in _NS_ATTRS:
                return ("ns", _NS_ATTRS[attr], "other")
            if attr == "nsproxy":
                return ("nsproxy", "other")
            return None
        tag = base[0]
        if attr == "_kernel":
            return ("kernel",)
        if attr.startswith("_") and tag != "class":
            return None

        if tag == "kernel":
            return self._kernel_attr(attr, node, frame)
        if tag == "bugs":
            if self.bugs is not None and hasattr(self.bugs, attr):
                return _const(getattr(self.bugs, attr))
            return None
        if tag == "task":
            origin = base[1]
            if attr == "nsproxy":
                return ("nsproxy", origin)
            if attr == "fdtable":
                return ("fdtable", origin)
            if attr == "pid_ns":
                return ("ns", "pid",
                        {"own": "own", "init": "init",
                         "enum": "enum"}.get(origin, "other"))
            scope = _task_scope(origin)
            if attr in ("pid_numbers",):
                return ("loc", f"task.{attr}", scope, "plain")
            self._record(frame, node, f"task.{attr}", scope, READ,
                         traced=False)
            return None
        if tag == "nsproxy":
            return None
        if tag == "ns":
            return self._ns_attr(base, attr, node, frame)
        if tag == "inst":
            return self._inst_attr(base, attr, node, frame)
        if tag == "loc":
            # Attribute chase through a container value (rare).
            if attr in _NS_ATTRS:
                return ("ns", _NS_ATTRS[attr], "other")
            return None
        if tag == "class":
            return self._class_attr(base[1], attr)
        if tag == "const":
            return None
        if attr in _NS_ATTRS:
            return ("ns", _NS_ATTRS[attr], "other")
        return None

    def _kernel_attr(self, attr: str, node: ast.Attribute,
                     frame: _Frame) -> Any:
        if attr == "bugs":
            return ("bugs",)
        if attr == "config":
            return ("config",)
        if attr == "clock":
            return ("clock",)
        if attr == "arena":
            return ("arena",)
        if attr == "tasks":
            return ("tasktable",)
        if attr == "namespaces":
            return ("registry",)
        if attr == "init_mnt_ns":
            self._record(frame, node, "kernel.init_mnt_ns", INIT, READ,
                         traced=False)
            return ("ns", "mnt", "init")
        if attr == "init_net":
            self._record(frame, node, "kernel.init_net", INIT, READ,
                         traced=False)
            return ("ns", "net", "init")
        if attr == "init_nsproxy":
            return ("nsproxy", "init")
        if attr == "init_task":
            return ("task", "init")
        subsys = self.index.subsystems.get(attr)
        if subsys is not None:
            return ("inst", subsys, f"kernel.{attr}", GLOBAL)
        # Plain Kernel attribute (syscall_seq, ...): bookkeeping state.
        self._record(frame, node, f"kernel.{attr}", GLOBAL, READ,
                     traced=False)
        return None

    def _ns_attr(self, base: Any, attr: str, node: ast.Attribute,
                 frame: _Frame) -> Any:
        __, nstype, origin = base
        scope = _ns_scope(origin)
        path = f"ns:{nstype or '?'}.{attr}"
        if attr == "parent":
            return ("ns", nstype, "other")
        cls = self.index.namespace_classes.get(nstype) if nstype else None
        kind = self.index.attr_kind(cls.name, attr) if cls else None
        if kind in _TRACED_KINDS:
            return ("loc", path, scope, kind)
        if kind == "field" or (cls and attr in cls.fields):
            self._record(frame, node, path, scope, READ, traced=False)
            return None
        if attr == "inum":
            self._record(frame, node, path, scope, READ, traced=False)
            return None
        if attr == "veth_peers":
            self._record(frame, node, path, scope, READ, traced=False)
            return ("list", ("ns", "net", "other"))
        if attr == "mounts":
            self._record(frame, node, path, scope, READ, traced=False)
            return ("list", ("inst", "Mount", f"{path}[]", scope))
        if kind is not None:
            # Plain attribute container on the namespace.
            return ("loc", path, scope, "plain")
        return ("loc", path, scope, "plain")

    def _inst_attr(self, base: Any, attr: str, node: ast.Attribute,
                   frame: _Frame) -> Any:
        __, cls_name, path, scope = base
        if attr in _NS_ATTRS:
            return ("ns", _NS_ATTRS[attr], "other")
        if attr == "nsproxy":
            return ("nsproxy", "other")
        # Special anchors keeping vfs paths canonical.
        special = {
            ("Mount", "sb"): ("inst", "SuperBlock", "ns:mnt.sb", NAMESPACE),
            ("OpenFile", "mount"):
                ("inst", "Mount", "ns:mnt.mounts[]", NAMESPACE),
            ("OpenFile", "inode"):
                ("inst", "Inode", "ns:mnt.sb.files[]", NAMESPACE),
        }
        if (cls_name, attr) in special:
            return special[(cls_name, attr)]
        kind = self.index.attr_kind(cls_name, attr) if cls_name else None
        sub_path = f"{path}.{attr}"
        if kind in _TRACED_KINDS:
            return ("loc", sub_path, scope, kind)
        if kind == "field":
            self._record(frame, node, sub_path, scope, READ, traced=False)
            return None
        if cls_name:
            ctor = self.index.classes.get(cls_name)
            inner = ctor.attr_classes.get(attr) if ctor else None
            if inner and inner in self.index.classes:
                # e.g. NetSubsystem.unix -> UnixSocketTable instance.
                special_kind = self._pydict_kind(ctor, attr)
                if special_kind:
                    return ("loc", sub_path, scope, special_kind)
                return ("inst", inner, sub_path, scope)
            special_kind = self._pydict_kind(ctor, attr) if ctor else None
            if special_kind:
                return ("loc", sub_path, scope, special_kind)
        return ("inst", None, sub_path, scope)

    def _pydict_kind(self, cls: ClassInfo, attr: str) -> Optional[str]:
        """Detect ``self.x = {...KCell(...)...}`` plain dicts of cells."""
        init = cls.methods.get("__init__")
        if init is None:
            return None
        for stmt in ast.walk(init):
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == attr):
                continue
            if isinstance(value, ast.Dict):
                for v in value.values:
                    if (isinstance(v, ast.Call)
                            and isinstance(v.func, ast.Name)
                            and v.func.id == "KCell"):
                        return "pydict_kcell"
        return None

    def _class_attr(self, cls_name: str, attr: str) -> Any:
        if cls_name == "NamespaceType":
            return ("nstype", attr.lower())
        if attr == "NS_TYPE":
            cls = self.index.classes.get(cls_name)
            if cls is not None and cls.ns_type:
                return ("nstype", cls.ns_type)
        return None

    # -- comparisons, truth, guards -------------------------------------------

    def _eval_compare(self, node: ast.Compare, frame: _Frame) -> Any:
        left = self._eval(node.left, frame)
        values = [left] + [self._eval(c, frame) for c in node.comparators]
        if len(node.ops) == 1:
            op = node.ops[0]
            a, b = values
            self._detect_guard(op, a, b, frame)
            if isinstance(op, (ast.Is, ast.IsNot)):
                folded = self._fold_is(a, b)
                if folded is not None:
                    return _const(folded if isinstance(op, ast.Is)
                                  else not folded)
                return None
            if _is_const(a) and _is_const(b):
                try:
                    return _const(self._fold_compare(op, a[1], b[1]))
                except Exception:
                    return None
            if isinstance(op, (ast.In, ast.NotIn)):
                # Membership in a boot-constant dict of cells is a
                # config lookup, not a state read.
                if not any(isinstance(v, tuple) and v and v[0] == "loc"
                           and v[3] == "pydict_kcell"
                           for v in _flatten(b)):
                    self._container_effect(b, node, frame, READ)
        return None

    @staticmethod
    def _fold_compare(op: ast.cmpop, a: Any, b: Any) -> bool:
        import operator
        table = {ast.Eq: operator.eq, ast.NotEq: operator.ne,
                 ast.Lt: operator.lt, ast.LtE: operator.le,
                 ast.Gt: operator.gt, ast.GtE: operator.ge,
                 ast.In: lambda x, y: x in y,
                 ast.NotIn: lambda x, y: x not in y}
        return bool(table[type(op)](a, b))

    #: Value tags that are definitely not None at runtime.
    _DEFINITE = frozenset({"kernel", "ns", "nsproxy", "task", "tasktable",
                           "registry", "fdtable", "loc", "class", "nstype",
                           "list", "tuple", "bugs", "config", "clock"})

    def _fold_is(self, a: Any, b: Any) -> Optional[bool]:
        """Fold ``a is b`` where one side is the None constant."""
        for x, y in ((a, b), (b, a)):
            if _is_const(x) and x[1] is None:
                if _is_const(y):
                    return y[1] is None
                if isinstance(y, tuple) and y and y[0] in self._DEFINITE:
                    return False
        return None

    def _detect_guard(self, op: ast.cmpop, a: Any, b: Any,
                      frame: _Frame) -> None:
        if not isinstance(op, (ast.Is, ast.IsNot)):
            return
        if self._is_ns_value(a) and self._is_ns_value(b):
            frame.guarded = True

    @staticmethod
    def _is_ns_value(value: Any) -> bool:
        return any(isinstance(v, tuple) and v and v[0] == "ns"
                   for v in _flatten(value))

    def _eval_boolop(self, node: ast.BoolOp, frame: _Frame) -> Any:
        is_and = isinstance(node.op, ast.And)
        for value_node in node.values:
            value = self._eval(value_node, frame)
            truth = self._truth(value)
            if truth is None:
                # Unknown operand: remaining operands still evaluated
                # (their accesses are reachable), result unknown.
                continue
            if is_and and truth is False:
                return _const(False)
            if not is_and and truth is True:
                return _const(True)
        return None

    def _truth(self, value: Any) -> Optional[bool]:
        if _is_const(value):
            return bool(value[1])
        return None

    # -- subscripts and iteration ---------------------------------------------

    def _eval_subscript(self, node: ast.Subscript, frame: _Frame) -> Any:
        base = self._eval(node.value, frame)
        index = self._eval(node.slice, frame)
        for v in _flatten(base):
            if not isinstance(v, tuple) or not v:
                continue
            if v[0] == "tuple" and _is_const(index) \
                    and isinstance(index[1], int) and index[1] < len(v[1]):
                return v[1][index[1]]
            if v[0] == "list":
                return v[1]
            if v[0] == "loc":
                self._record_container(v, node, frame, READ)
                if v[3] == "pydict_kcell":
                    return ("loc", v[1], v[2], "kcell")
                return ("inst", None, f"{v[1]}[]", v[2])
            if v[0] == "args":
                return None
        return None

    def _iterate(self, value: Any, node: ast.AST, frame: _Frame) -> Any:
        out: Any = None
        first = True
        for v in _flatten(value):
            elem: Any = None
            if isinstance(v, tuple) and v:
                if v[0] == "list":
                    elem = v[1]
                elif v[0] == "tuple":
                    elem = None
                    for part in v[1]:
                        elem = part if elem is None else _join(elem, part)
                elif v[0] == "loc":
                    self._record_container(v, node, frame, READ)
                    elem = self._element_of(v)
            out = elem if first else _join(out, elem)
            first = False
        return out

    def _element_of(self, loc: Any) -> Any:
        return ("inst", None, f"{loc[1]}[]", loc[2])

    def _record_container(self, loc: Any, node: ast.AST, frame: _Frame,
                          kind: str, observable: bool = True) -> None:
        __, path, scope, container_kind = loc
        traced = container_kind in _TRACED_KINDS
        self._record(frame, node, path, scope, kind, traced, observable)

    def _container_effect(self, value: Any, node: ast.AST, frame: _Frame,
                          kind: str) -> None:
        for v in _flatten(value):
            if isinstance(v, tuple) and v and v[0] == "loc":
                self._record_container(v, node, frame, kind,
                                       observable=(kind == WRITE
                                                   or kind == READ))
            elif isinstance(v, tuple) and v and v[0] == "inst":
                self._record(frame, node, v[2], v[3], kind, traced=False)

    # -- calls ----------------------------------------------------------------

    def _eval_call(self, node: ast.Call, frame: _Frame,
                   stmt_position: bool = False) -> Any:
        if isinstance(node.func, ast.Attribute):
            return self._eval_method_call(node, frame, stmt_position)
        if isinstance(node.func, ast.Name):
            return self._eval_function_call(node, frame)
        self._eval(node.func, frame)
        self._eval_args(node, frame)
        return None

    def _eval_args(self, node: ast.Call, frame: _Frame
                   ) -> Tuple[List[Any], Dict[str, Any]]:
        args = [self._eval(a, frame) for a in node.args]
        kwargs = {k.arg: self._eval(k.value, frame)
                  for k in node.keywords if k.arg is not None}
        return args, kwargs

    def _eval_function_call(self, node: ast.Call, frame: _Frame) -> Any:
        name = node.func.id
        args, kwargs = self._eval_args(node, frame)
        if name == "isinstance":
            return self._fold_isinstance(args)
        if name in ("len", "abs", "bool", "id", "repr", "hash"):
            for a, value in zip(node.args, args):
                self._container_effect(value, a, frame, READ)
            return None
        if name in ("int", "str", "float"):
            return args[0] if args and _is_const(args[0]) else None
        if name in ("list", "sorted", "set", "tuple", "reversed"):
            if args:
                return ("list", self._iterate(args[0], node, frame))
            return ("list", None)
        if name in ("min", "max", "sum", "range", "enumerate", "zip",
                    "print", "getattr", "format"):
            return None
        # Local name bound to a value (e.g. a class passed as an arg)?
        local = frame.env.get(name)
        if isinstance(local, tuple) and local and local[0] == "class":
            return self._construct(local[1], node, args, kwargs, frame)
        resolved = self._resolve_class_name(frame.module, name)
        if resolved is not None:
            return self._construct(resolved, node, args, kwargs, frame)
        found = self.index.function_def(frame.module.name, name)
        if found is not None:
            module, funcdef = found
            return self._inline(module, funcdef, None, args, kwargs,
                                node, frame, name)
        # SyscallError and other unresolved callables.
        return None

    def _fold_isinstance(self, args: List[Any]) -> Any:
        if len(args) != 2:
            return None
        value, cls = args
        if not (isinstance(cls, tuple) and cls and cls[0] == "class"):
            return None
        for v in _flatten(value):
            if isinstance(v, tuple) and v and v[0] == "inst" and v[1]:
                if v[1] == cls[1]:
                    return _const(True)
                # Could still be a subclass instance; stay unknown when
                # the static class is a base of the tested class.
                if self._is_base_of(v[1], cls[1]):
                    return None
                if not self._is_base_of(cls[1], v[1]):
                    return _const(False)
        return None

    def _is_base_of(self, base: str, derived: str) -> bool:
        seen = set()
        queue = [derived]
        while queue:
            name = queue.pop(0)
            if name == base:
                return True
            if name in seen:
                continue
            seen.add(name)
            cls = self.index.classes.get(name)
            if cls is not None:
                queue.extend(cls.bases)
        return False

    def _construct(self, cls_name: str, node: ast.Call, args: List[Any],
                   kwargs: Dict[str, Any], frame: _Frame) -> Any:
        """Instantiate a known kernel class abstractly."""
        cls = self.index.classes.get(cls_name)
        if cls is None:
            return None
        if cls.ns_type is not None:
            value: Any = ("ns", cls.ns_type, "own")
        elif cls_name in ("KCell", "KList", "KDict"):
            from .sources import _ARENA_KINDS
            return ("loc", f"new.{cls_name}", TASK,
                    _ARENA_KINDS.get(cls_name, "plain"))
        else:
            value = ("inst", cls_name, f"new.{cls_name}", TASK)
        init = self.index.method_def(cls_name, "__init__")
        if init is not None:
            init_cls, funcdef = init
            self._inline(self.index.modules[init_cls.module], funcdef,
                         value, args, kwargs, node, frame,
                         f"{cls_name}.__init__")
        return value

    def _eval_method_call(self, node: ast.Call, frame: _Frame,
                          stmt_position: bool) -> Any:
        meth = node.func.attr
        base = self._eval(node.func.value, frame)
        args, kwargs = self._eval_args(node, frame)
        if meth in _GUARD_CALLS:
            frame.guarded = True
        # Accumulate elements into locally-built lists: ``xs.append(v)``
        # on a name bound to ("list", elem) rebinds it with v joined in,
        # so ``for x in helper_returning_accumulated_list():`` sees the
        # element values (the PRIO_USER pattern: collect enum tasks,
        # mutate each).  A None elem means "empty so far", not unknown.
        if (isinstance(node.func.value, ast.Name)
                and meth in ("append", "insert", "extend") and args
                and isinstance(base, tuple) and base and base[0] == "list"
                and frame.env.get(node.func.value.id) == base):
            item = (self._iterate(args[-1], node, frame)
                    if meth == "extend" else args[-1])
            elem = base[1]
            frame.env[node.func.value.id] = (
                "list", item if elem is None else _join(elem, item))
        results = [self._method_on(v, meth, node, args, kwargs, frame,
                                   stmt_position)
                   for v in _flatten(base)]
        out = results[0]
        for value in results[1:]:
            out = _join(out, value)
        return out

    def _method_on(self, base: Any, meth: str, node: ast.Call,
                   args: List[Any], kwargs: Dict[str, Any], frame: _Frame,
                   stmt_position: bool) -> Any:
        if not isinstance(base, tuple) or not base:
            if meth == "vpid_in":
                return None
            return None
        tag = base[0]

        if tag == "nsproxy":
            return self._nsproxy_method(base, meth, args)
        if tag == "tasktable":
            return self._tasktable_method(meth, node, args, frame)
        if tag == "registry":
            return self._registry_method(meth, node, args, frame)
        if tag == "fdtable":
            return self._fdtable_method(meth, args)
        if tag == "clock" or tag == "arena" or tag == "config":
            return None
        if tag == "task":
            return self._task_method(base, meth, node, args, frame)
        if tag == "ns":
            return self._ns_method(base, meth, node, args, kwargs, frame,
                                   stmt_position)
        if tag == "loc":
            return self._loc_method(base, meth, node, args, frame,
                                    stmt_position)
        if tag == "inst":
            return self._inst_method(base, meth, node, args, kwargs, frame,
                                     stmt_position)
        if tag == "kernel":
            return self._kernel_method(meth, node, args, kwargs, frame)
        if tag == "list":
            if meth in ("append", "extend", "insert", "remove", "sort"):
                return None
            if meth == "copy":
                return base
            if meth == "pop":
                return base[1]
            return None
        if tag == "const" and isinstance(base[1], str):
            return self._str_method(base[1], meth, args)
        return None

    def _str_method(self, value: str, meth: str, args: List[Any]) -> Any:
        const_args = [a[1] for a in args if _is_const(a)]
        if len(const_args) != len(args):
            return None
        try:
            return _const(getattr(value, meth)(*const_args))
        except Exception:
            return None

    def _nsproxy_method(self, base: Any, meth: str, args: List[Any]) -> Any:
        origin = base[1]
        if meth == "get":
            nstype = None
            for a in _flatten(args[0]) if args else [None]:
                if isinstance(a, tuple) and a and a[0] == "nstype":
                    nstype = a[1]
            ns_origin = {"own": "own", "init": "init"}.get(origin, "other")
            return ("ns", nstype, ns_origin)
        if meth == "copy_with":
            return ("nsproxy", origin)
        return None

    def _tasktable_method(self, meth: str, node: ast.Call, args: List[Any],
                          frame: _Frame) -> Any:
        if meth == "all_tasks":
            self._record(frame, node, "kernel.tasks", BROADCAST, READ,
                         traced=False)
            return ("list", ("task", "enum"))
        if meth == "find_in_ns":
            scope = NAMESPACE
            if args and self._is_ns_value(args[0]):
                for v in _flatten(args[0]):
                    if isinstance(v, tuple) and v and v[0] == "ns":
                        scope = _ns_scope(v[2])
            self._record(frame, node, "ns:pid.tasks", scope, READ,
                         traced=True)
            return ("task", "lookup")
        if meth in ("attach", "detach"):
            return None
        return None

    def _registry_method(self, meth: str, node: ast.Call, args: List[Any],
                         frame: _Frame) -> Any:
        if meth == "live":
            nstype = None
            for a in _flatten(args[0]) if args else [None]:
                if isinstance(a, tuple) and a and a[0] == "nstype":
                    nstype = a[1]
            self._record(frame, node, "kernel.namespaces", BROADCAST, READ,
                         traced=False)
            return ("list", ("ns", nstype, "enum"))
        return None

    def _fdtable_method(self, meth: str, args: List[Any]) -> Any:
        if meth in ("get", "remove"):
            return ("inst", "FileObject", "fd", TASK)
        if meth == "get_as":
            cls_name = "FileObject"
            if len(args) > 1:
                for v in _flatten(args[1]):
                    if isinstance(v, tuple) and v and v[0] == "class":
                        cls_name = v[1]
            return ("inst", cls_name, "fd", TASK)
        if meth == "open_fds":
            return ("list", None)
        return None

    def _task_method(self, base: Any, meth: str, node: ast.Call,
                     args: List[Any], frame: _Frame) -> Any:
        origin = base[1]
        scope = _task_scope(origin)
        if meth in _KSTRUCT_READS or meth in _KSTRUCT_WRITES:
            field = args[0][1] if args and _is_const(args[0]) else "?"
            kind = READ if meth in _KSTRUCT_READS else WRITE
            self._record(frame, node, f"task.{field}", scope, kind,
                         traced=(meth in ("kget", "kset")))
            return None
        if meth == "vpid_in":
            self._record(frame, node, "task.pid_numbers", scope, READ,
                         traced=False)
            return None
        if meth == "capable":
            self._record(frame, node, "task.euid", scope, READ,
                         traced=False)
            return None
        found = self.index.method_def("Task", meth)
        if found is not None:
            cls, funcdef = found
            return self._inline(self.index.modules[cls.module], funcdef,
                                base, args, {}, node, frame,
                                f"Task.{meth}")
        return None

    def _ns_method(self, base: Any, meth: str, node: ast.Call,
                   args: List[Any], kwargs: Dict[str, Any], frame: _Frame,
                   stmt_position: bool) -> Any:
        __, nstype, origin = base
        scope = _ns_scope(origin)
        if meth in _KSTRUCT_READS or meth in _KSTRUCT_WRITES:
            field = args[0][1] if args and _is_const(args[0]) else "?"
            kind = READ if meth in _KSTRUCT_READS else WRITE
            self._record(frame, node, f"ns:{nstype or '?'}.{field}", scope,
                         kind, traced=(meth in ("kget", "kset")))
            return None
        if meth == "ancestry":
            return ("list", ("ns", nstype, "other"))
        cls = self.index.namespace_classes.get(nstype) if nstype else None
        if cls is not None:
            found = self.index.method_def(cls.name, meth)
            if found is not None:
                method_cls, funcdef = found
                return self._inline(
                    self.index.modules[method_cls.module], funcdef, base,
                    args, kwargs, node, frame, f"{cls.name}.{meth}")
        return None

    def _loc_method(self, base: Any, meth: str, node: ast.Call,
                    args: List[Any], frame: _Frame,
                    stmt_position: bool) -> Any:
        __, path, scope, kind = base
        traced = kind in _TRACED_KINDS
        if meth in _KSTRUCT_READS and args and _is_const(args[0]) \
                and isinstance(args[0][1], str) and kind not in _TRACED_KINDS:
            # peek("field") on an untyped struct-like value.
            self._record(frame, node, f"{path}.{args[0][1]}", scope, READ,
                         traced=False)
            return None
        if meth in _READ_METHODS:
            self._record(frame, node, path, scope, READ, traced)
            if meth == "lookup":
                return ("inst", None, f"{path}[]", scope)
            if meth in ("values", "items"):
                return ("list", ("inst", None, f"{path}[]", scope))
            return None
        if meth in _PEEK_METHODS:
            self._record(frame, node, path, scope, READ, traced=False)
            if meth == "peek_items":
                return ("list", ("inst", None, f"{path}[]", scope))
            return None
        if meth in _WRITE_METHODS:
            self._record(frame, node, path, scope, WRITE, traced)
            return None
        if meth in _POP_METHODS:
            self._record(frame, node, path, scope, READ, traced)
            self._record(frame, node, path, scope, WRITE, traced)
            return ("inst", None, f"{path}[]", scope)
        if meth in _RMW_METHODS:
            self._record(frame, node, path, scope, READ, traced,
                         observable=not stmt_position)
            self._record(frame, node, path, scope, WRITE, traced)
            return None
        if meth in _KSTRUCT_WRITES and args and _is_const(args[0]) \
                and isinstance(args[0][1], str):
            self._record(frame, node, f"{path}.{args[0][1]}", scope, WRITE,
                         traced=False)
            return None
        return None

    def _inst_method(self, base: Any, meth: str, node: ast.Call,
                     args: List[Any], kwargs: Dict[str, Any], frame: _Frame,
                     stmt_position: bool) -> Any:
        __, cls_name, path, scope = base
        if meth in _KSTRUCT_READS or meth in _KSTRUCT_WRITES:
            field = (args[0][1] if args and _is_const(args[0])
                     and isinstance(args[0][1], str) else "?")
            kind = READ if meth in _KSTRUCT_READS else WRITE
            self._record(frame, node, f"{path}.{field}", scope, kind,
                         traced=(meth in ("kget", "kset")))
            return None
        if cls_name == "ProcFs" and meth in ("render", "write"):
            return self._procfs_call(meth, node, args, kwargs, frame)
        if meth == "on_close":
            return self._on_close(base, node, args, frame)
        if cls_name is not None:
            found = self.index.method_def(cls_name, meth)
            if found is not None:
                method_cls, funcdef = found
                return self._inline(
                    self.index.modules[method_cls.module], funcdef, base,
                    args, kwargs, node, frame, f"{cls_name}.{meth}")
        # Untyped object: container-style methods fall back to untraced
        # accesses on the instance's own path.
        if meth in _READ_METHODS or meth in _PEEK_METHODS:
            self._record(frame, node, path, scope, READ, traced=False)
            return None
        if meth in _WRITE_METHODS:
            self._record(frame, node, path, scope, WRITE, traced=False)
            return None
        if meth in _POP_METHODS:
            self._record(frame, node, path, scope, READ, traced=False)
            self._record(frame, node, path, scope, WRITE, traced=False)
            return None
        if meth in _RMW_METHODS:
            self._record(frame, node, path, scope, READ, traced=False,
                         observable=not stmt_position)
            self._record(frame, node, path, scope, WRITE, traced=False)
            return None
        return None

    def _kernel_method(self, meth: str, node: ast.Call, args: List[Any],
                       kwargs: Dict[str, Any], frame: _Frame) -> Any:
        if meth in ("mark_dirty_object", "timer_tick"):
            return None
        found = self.index.method_def("Kernel", meth)
        if found is not None:
            cls, funcdef = found
            return self._inline(self.index.modules[cls.module], funcdef,
                                ("kernel",), args, kwargs, node, frame,
                                f"Kernel.{meth}")
        return None

    def _procfs_call(self, meth: str, node: ast.Call, args: List[Any],
                     kwargs: Dict[str, Any], frame: _Frame) -> Any:
        """procfs.render/write: fold constant keys, else mark wildcard."""
        key = args[1] if len(args) > 1 else kwargs.get("key")
        if not (_is_const(key) and isinstance(key[1], str)):
            self.proc_wildcard = True
            return None
        found = self.index.method_def("ProcFs", meth)
        if found is None:
            return None
        cls, funcdef = found
        return self._inline(self.index.modules[cls.module], funcdef,
                            ("inst", "ProcFs", "kernel.procfs", GLOBAL),
                            args, kwargs, node, frame, f"ProcFs.{meth}")

    def _on_close(self, base: Any, node: ast.Call, args: List[Any],
                  frame: _Frame) -> Any:
        """Inline every known on_close override for a generic fd object."""
        __, cls_name, path, scope = base
        overrides = []
        if cls_name in (None, "FileObject"):
            for cls in self.index.classes.values():
                if "on_close" in cls.methods and cls.name != "FileObject":
                    overrides.append(cls)
        else:
            found = self.index.method_def(cls_name, "on_close")
            if found is not None and found[1].name == "on_close" \
                    and found[0].name != "FileObject":
                overrides.append(found[0])
        out: Any = None
        for cls in overrides:
            funcdef = cls.methods["on_close"]
            value = ("inst", cls.name, path, scope)
            out = _join(out, self._inline(
                self.index.modules[cls.module], funcdef, value, args, {},
                node, frame, f"{cls.name}.on_close"))
        return out

    # -- inlining -------------------------------------------------------------

    def _inline(self, module: ModuleInfo, funcdef: ast.FunctionDef,
                self_value: Any, args: List[Any], kwargs: Dict[str, Any],
                node: ast.AST, frame: _Frame, qualname: str) -> Any:
        # Summary cache: a finished, truncation-free walk of this
        # function under the same abstract arguments and entry-held
        # lockset is exact — replay its accesses and return value.
        held_entry = tuple(sorted(set(self._held_locks)))
        try:
            key = (id(funcdef), self_value, tuple(args),
                   tuple(sorted(kwargs.items())), held_entry)
        except TypeError:  # unhashable abstract value: walk uncached
            key = None
        if key is not None:
            hit = self._summaries.get(key)
            if hit is not None:
                accesses, returns, wildcard = hit
                if wildcard:
                    self.proc_wildcard = True
                frame.children.extend(accesses)
                return returns
        if id(funcdef) in self._stack or len(self._stack) >= _MAX_DEPTH:
            self._truncations += 1
            return None
        params = [a.arg for a in funcdef.args.args]
        is_method = (self_value is not None and params
                     and params[0] == "self"
                     and not any(isinstance(d, ast.Name)
                                 and d.id == "staticmethod"
                                 for d in funcdef.decorator_list))
        env: Dict[str, Any] = {}
        positional = list(params)
        if is_method:
            env["self"] = self_value
            positional = positional[1:]
        defaults = funcdef.args.defaults
        default_offset = len(positional) - len(defaults)
        child = _Frame(module, qualname, env)
        for i, name in enumerate(positional):
            if i < len(args):
                env[name] = args[i]
            elif name in kwargs:
                env[name] = kwargs[name]
            elif i >= default_offset:
                env[name] = self._eval(defaults[i - default_offset], child)
            else:
                env[name] = None
        for kw_arg in funcdef.args.kwonlyargs:
            name = kw_arg.arg
            env[name] = kwargs.get(name)
        for name, value in kwargs.items():
            if name in positional:
                env.setdefault(name, value)
        self._stack.append(id(funcdef))
        prev_wildcard = self.proc_wildcard
        self.proc_wildcard = False
        before_truncations = self._truncations
        try:
            self._walk_body(funcdef.body, child)
        finally:
            self._stack.pop()
        child_wildcard = self.proc_wildcard
        self.proc_wildcard = prev_wildcard or child_wildcard
        accesses = child.finalize()
        returns = (child.returns if child.returns != "__none__"
                   else _const(None))
        if child.guarded:
            returns = _narrow_enum(returns)
        if key is not None and self._truncations == before_truncations:
            self._summaries[key] = (accesses, returns, child_wildcard)
        frame.children.extend(accesses)
        return returns
