"""The static candidate-pair pre-filter for test-case generation.

Profiling runs every corpus program separately from the same snapshot
with a deterministic bump allocator, so fresh runtime allocations from
*different* programs land at the very same arena addresses.  The dynamic
:class:`~repro.core.dataflow.DataFlowIndex` therefore reports candidate
flows between program pairs that never touch common kernel state — the
writer's freshly allocated object merely recycled the address of the
reader's.  Real interference channels ride state that is genuinely
shared *by name*: a global counter, a broadcast walk, an init-namespace
escape hatch.

This filter decides pair-wise, from the static access map alone,
whether a sender program could possibly influence a receiver program:

* the sender's traced write set and the receiver's traced observable
  read set are summarized per kernel-state *path* (fresh ``new.*``
  allocations dropped — they are private to one execution by
  construction),
* receiver reads are gated per call by the same specification test the
  dynamic index applies (``spec.call_accesses_protected``), with file
  descriptors refined through their statically known producer calls,
* a pair *may interfere* iff some path is written and read under
  colliding scopes: anything involving a broadcast walk; init-namespace
  state paired with non-task state; or global meeting global.

Everything unresolvable statically (unknown syscall, descriptor from a
non-constant producer) degrades to "may interfere" — the filter only
prunes pairs it can prove disjoint, so the detected-bug set of a
campaign is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .accessmap import AccessMap, SyscallSummary, extract_access_map
from .escape import WILDCARD_KINDS, _StaticRecord, proc_key_kind
from .locations import BROADCAST, GLOBAL, INIT, TASK

#: path -> scopes it is accessed under, for one program side.
PathScopes = Dict[str, Set[str]]


@dataclass
class PrefilterStats:
    """Telemetry of the static pre-filter, for CampaignStats/Table 4."""

    #: Distinct candidate (sender, receiver) pairs the generator saw.
    pairs_total: int = 0
    #: Of those, pairs pruned as provably disjoint.
    pairs_pruned: int = 0
    #: Full-corpus evaluation: pairs kept statically / seen dynamically.
    corpus_pairs: int = 0
    static_pairs: int = 0
    dynamic_pairs: int = 0
    static_and_dynamic: int = 0

    def pruned_rate(self) -> float:
        return self.pairs_pruned / self.pairs_total if self.pairs_total else 0.0

    def precision(self) -> float:
        """Fraction of statically kept pairs that have a dynamic flow."""
        return (self.static_and_dynamic / self.static_pairs
                if self.static_pairs else 0.0)

    def recall(self) -> float:
        """Fraction of dynamic candidate pairs kept statically."""
        return (self.static_and_dynamic / self.dynamic_pairs
                if self.dynamic_pairs else 1.0)


def _scopes_collide(write_scope: str, read_scope: str) -> bool:
    """Can a write under one scope reach a read under the other, across
    two different containers?"""
    if BROADCAST in (write_scope, read_scope):
        return True
    if INIT in (write_scope, read_scope):
        # Init-namespace state is one concrete instance; a TASK-scoped
        # partner stays private to its own task regardless.
        return TASK not in (write_scope, read_scope)
    return write_scope == GLOBAL and read_scope == GLOBAL


class StaticPreFilter:
    """Prunes provably disjoint sender/receiver pairs before clustering."""

    def __init__(self, access_map: Optional[AccessMap] = None, spec=None,
                 bugs=None, index=None, decls=None, races=None):
        if access_map is None:
            access_map = extract_access_map(bugs, index)
        if spec is None:
            from ..core.spec import default_specification
            spec = default_specification()
        if decls is None:
            from ..kernel.syscalls.table import DECLS as decls
        self._map = access_map
        self._spec = spec
        self._decls = decls
        #: program hash -> (writes, reads, has_unknown_syscall)
        self._summaries: Dict[str, Tuple[PathScopes, PathScopes, bool]] = {}
        self._verdicts: Dict[Tuple[str, str], bool] = {}
        #: (entry_a, entry_b) sorted -> race candidates, the ``race``
        #: fact channel (see :meth:`race_facts`).
        self._races: Dict[Tuple[str, str], list] = {}
        if races:
            for candidate in races:
                self._races.setdefault(
                    (candidate.entry_a, candidate.entry_b),
                    []).append(candidate)

    @classmethod
    def with_races(cls, access_map: Optional[AccessMap] = None, spec=None,
                   bugs=None, index=None, decls=None) -> "StaticPreFilter":
        """Build the filter with the race fact channel populated from
        the same access map (one join, shared with reporting)."""
        from .races import find_race_candidates

        if access_map is None:
            access_map = extract_access_map(bugs, index)
        return cls(access_map=access_map, spec=spec, decls=decls,
                   races=find_race_candidates(access_map))

    def _decl(self, name: str):
        """The declaration of *name*, or None (DECLS.get raises)."""
        return self._decls.get(name) if name in self._decls else None

    # -- descriptor refinement --------------------------------------------

    def _producer_kind(self, program, producer) -> Optional[str]:
        """Concrete resource kind of the fd/sock *producer* returns, or
        None when it cannot be resolved statically."""
        from ..corpus.program import ConstArg

        if producer.name == "socket":
            values = [arg.value for arg in producer.args
                      if isinstance(arg, ConstArg)]
            if len(values) == 3 and all(isinstance(v, int) for v in values):
                from ..kernel.net.socket import _resource_kind
                return _resource_kind(*values)
            return None
        if producer.name == "open":
            if (producer.args and isinstance(producer.args[0], ConstArg)
                    and isinstance(producer.args[0].value, str)):
                path = producer.args[0].value
                if path.startswith("/proc/self/ns/"):
                    return "fd_ns"
                if path.startswith("/proc/"):
                    return proc_key_kind(path[len("/proc/"):])
                return "fd_file"
            return None
        decl = self._decl(producer.name)
        if decl is None or decl.ret_resource is None:
            return None
        ret = decl.ret_resource
        # Generic descriptors need the runtime file object to refine.
        if ret in WILDCARD_KINDS or ret == "fd_file":
            return None
        return ret

    def _fd_kind(self, program, arg) -> Optional[str]:
        """Kind of the descriptor an fd-valued argument carries."""
        from ..corpus.program import ResultArg

        if isinstance(arg, ResultArg) and 0 <= arg.index < len(program.calls):
            producer = program.calls[arg.index]
            if producer is not None:
                return self._producer_kind(program, producer)
        return None

    def _call_protected(self, program, call) -> bool:
        """Static version of ``spec.call_accesses_protected``: True when
        the call may access a protected resource (conservative)."""
        decl = self._decl(call.name)
        if decl is None:
            return True
        kinds: Set[str] = set()
        for arg_spec, arg in zip(decl.args, call.args):
            if arg_spec.kind not in ("fd", "res"):
                continue
            resource = arg_spec.resource or ""
            if resource in WILDCARD_KINDS or resource == "fd_file":
                refined = self._fd_kind(program, arg)
                if refined is None:
                    return True
                kinds.add(refined)
            elif resource:
                kinds.add(resource)
        if decl.ret_resource is not None:
            if call.name in ("socket", "open"):
                refined = self._producer_kind(program, call)
                if refined is None:
                    return True
                kinds.add(refined)
            else:
                kinds.add(decl.ret_resource)
        return self._spec.call_accesses_protected(
            _StaticRecord(call.name, sorted(kinds)))

    # -- proc-wildcard resolution ------------------------------------------

    def _proc_summaries(self, program, call) -> List[SyscallSummary]:
        """The proc-file summaries a proc-wildcard call may reach."""
        from ..corpus.program import ConstArg

        table = (self._map.proc_writes if call.name == "write"
                 else self._map.proc_reads)
        decl = self._decl(call.name)
        if decl is None:
            return list(table.values())
        keys: Set[str] = set()
        for arg_spec, arg in zip(decl.args, call.args):
            if arg_spec.kind in ("path", "str"):
                # Direct path argument (io_uring_read reads by path).
                if not (isinstance(arg, ConstArg)
                        and isinstance(arg.value, str)):
                    return list(table.values())
                if arg.value.startswith("/proc/"):
                    keys.add(arg.value[len("/proc/"):])
                continue
            if arg_spec.kind != "fd":
                continue
            resource = arg_spec.resource or ""
            if resource not in WILDCARD_KINDS and resource != "fd_file":
                continue  # io_uring/ns/... descriptors are never procfs
            kind = self._fd_kind(program, arg)
            if kind is None:
                return list(table.values())
            if not kind.startswith("fd_proc"):
                continue
            producer = program.calls[arg.index]
            path = producer.args[0].value
            keys.add(path[len("/proc/"):])
        return [table[key] for key in sorted(keys) if key in table]

    # -- program summaries --------------------------------------------------

    def _summary(self, program) -> Tuple[PathScopes, PathScopes, bool]:
        cached = self._summaries.get(program.hash_hex)
        if cached is not None:
            return cached
        writes: PathScopes = {}
        reads: PathScopes = {}
        unknown = False
        dispatch = ([self._map.dispatch]
                    if self._map.dispatch is not None else [])
        for call in program.calls:
            if call is None:
                continue
            summary = self._map.syscalls.get(call.name)
            if summary is None:
                unknown = True
                continue
            summaries = [summary] + dispatch
            if summary.proc_wildcard:
                summaries += self._proc_summaries(program, call)
            protected = self._call_protected(program, call)
            for item in summaries:
                for access in item.accesses:
                    if not access.traced or access.path.startswith("new."):
                        continue
                    if access.is_write():
                        writes.setdefault(access.path, set()).add(access.scope)
                    if access.is_read() and access.observable and protected:
                        reads.setdefault(access.path, set()).add(access.scope)
        result = (writes, reads, unknown)
        self._summaries[program.hash_hex] = result
        return result

    # -- the verdict --------------------------------------------------------

    def may_interfere(self, sender, receiver) -> bool:
        """False only when the pair is *provably* disjoint."""
        key = (sender.hash_hex, receiver.hash_hex)
        cached = self._verdicts.get(key)
        if cached is not None:
            return cached
        writes, __, sender_unknown = self._summary(sender)
        __, reads, receiver_unknown = self._summary(receiver)
        verdict = sender_unknown or receiver_unknown
        if not verdict:
            for path, write_scopes in writes.items():
                read_scopes = reads.get(path)
                if not read_scopes:
                    continue
                if any(_scopes_collide(ws, rs)
                       for ws in write_scopes for rs in read_scopes):
                    verdict = True
                    break
        self._verdicts[key] = verdict
        return verdict

    # -- the race fact channel ----------------------------------------------

    def race_facts(self, sender, receiver) -> list:
        """Race-pair candidates linking any sender call to any receiver
        call, best (lowest) rank first.

        This is an *evidence* channel, not a pruning channel: a
        candidate means two concurrent invocations can interleave on
        the named path, which prioritizes the pair for interleaved
        scheduling — but its absence proves nothing about sequential
        sender-then-receiver data flow, so :meth:`may_interfere` never
        consults it.
        """
        if not self._races:
            return []
        sender_calls = {c.name for c in sender.calls if c is not None}
        receiver_calls = {c.name for c in receiver.calls if c is not None}
        facts = []
        seen = set()
        for a in sender_calls:
            for b in receiver_calls:
                key = (a, b) if a <= b else (b, a)
                if key in seen:
                    continue
                seen.add(key)
                facts.extend(self._races.get(key, ()))
        facts.sort(key=lambda c: (c.rank, c.path, c.entry_a, c.entry_b))
        return facts

    # -- static-vs-dynamic evaluation ---------------------------------------

    def evaluate(self, corpus: Sequence, index) -> PrefilterStats:
        """Corpus-wide precision/recall of the filter against the
        dynamic :class:`~repro.core.dataflow.DataFlowIndex`."""
        dynamic: Set[Tuple[int, int]] = set()
        for __, writers, readers in index.iter_overlaps():
            for write_point in writers:
                for read_point in readers:
                    dynamic.add((write_point.prog_index,
                                 read_point.prog_index))
        static: Set[Tuple[int, int]] = set()
        size = len(corpus)
        for i in range(size):
            for j in range(size):
                if self.may_interfere(corpus[i], corpus[j]):
                    static.add((i, j))
        return PrefilterStats(
            corpus_pairs=size * size,
            static_pairs=len(static),
            dynamic_pairs=len(dynamic),
            static_and_dynamic=len(static & dynamic),
        )
