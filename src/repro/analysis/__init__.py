"""Static interference analysis over the simulated kernel's source.

KIT computes the syscall -> kernel-state access relation *dynamically*,
by profiling memory accesses (paper §4.1).  This package computes the
same relation *statically*: an abstract interpreter walks the ``ast`` of
every syscall handler, resolves attribute chains to a canonical
kernel-state location lattice, and emits per-syscall read/write sets.

On top of the access maps sit three consumers:

* :mod:`repro.analysis.escape` — the namespace-escape lint, which flags
  handlers touching global state without a namespace guard and
  statically rediscovers the injected bugs of :mod:`repro.kernel.bugs`;
* :mod:`repro.analysis.prefilter` — a candidate-pair prior for
  :class:`repro.core.generation.TestCaseGenerator`, pruning program
  pairs whose static access sets are provably disjoint;
* :mod:`repro.analysis.races` — the lockset race analyzer, joining
  held-lockset-annotated access maps across syscall pairs into ranked
  static race-pair candidates;
* :mod:`repro.analysis.locks` — the concurrency lint (L1/L2/S1) for
  the pipeline's shared structures, built on the flow- and
  alias-aware engine in :mod:`repro.analysis.locksets`.

Results cache incrementally on disk via
:class:`repro.analysis.cache.AnalysisCache`, keyed by source digests.

See docs/ANALYSIS.md for the lattice, the lint rules, and suppression.
"""

from .accessmap import AccessMap, SyscallSummary, extract_access_map
from .cache import AnalysisCache
from .escape import EscapeFinding, EscapeLinter, rediscover_bugs
from .locations import (
    BROADCAST,
    GLOBAL,
    INIT,
    NAMESPACE,
    TASK,
    Access,
    StateLocation,
)
from .locks import LockFinding, check_lock_discipline
from .prefilter import PrefilterStats, StaticPreFilter
from .races import (
    RaceCandidate,
    RaceRediscoveryReport,
    find_race_candidates,
    rediscover_races,
)
from .report import AnalysisReport, analyze, render_json, render_text

__all__ = [
    "Access",
    "AccessMap",
    "AnalysisCache",
    "AnalysisReport",
    "BROADCAST",
    "EscapeFinding",
    "EscapeLinter",
    "analyze",
    "GLOBAL",
    "INIT",
    "LockFinding",
    "NAMESPACE",
    "PrefilterStats",
    "RaceCandidate",
    "RaceRediscoveryReport",
    "StateLocation",
    "StaticPreFilter",
    "SyscallSummary",
    "TASK",
    "check_lock_discipline",
    "extract_access_map",
    "find_race_candidates",
    "render_json",
    "render_text",
    "rediscover_bugs",
    "rediscover_races",
]
