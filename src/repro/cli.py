"""Command-line interface for the KIT reproduction.

Installed as ``kit-repro``; also runnable as ``python -m repro.cli``.

Subcommands
-----------

``run``
    Run a full campaign against a kernel preset and print found bugs,
    statistics, and (optionally) the reports.
``known-bugs``
    Reproduce the Table-3 historical-bug scenarios.
``compare``
    Compare generation strategies on one corpus (Table 4's experiment).
``corpus``
    Generate a corpus and save it to a directory, or inspect one.
``show``
    Decode a ``.prog`` file and execute it against a preset kernel,
    printing the strace-style trace.
``inspect``
    Reload a saved campaign JSON and summarize it.
``coverage``
    Profile a corpus and report kernel coverage.
``spec``
    Print the default protected-resource specification.
``store``
    Inspect a durable campaign store (``--store DIR``): list campaigns
    and their completion status, or show one campaign in detail.
``repro``
    Replay every culprit schedule journaled by an interleaved campaign
    and verify the receiver's trace reproduces byte-for-byte.
``gate``
    Run one campaign per kernel preset, diff at the AGG-R level, and
    fail when the transition introduces interference.
``syscalls``
    Render the declared syscall surface as markdown.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.coverage import coverage_of_profiles
from .core.decode import decode_trace
from .core.known_bugs import SCENARIOS, reproduce_known_bug
from .core.detection import Detector
from .core.minimize import minimize_report
from .core.nondet import NondetAnalyzer
from .core.persist import load_campaign, save_campaign
from .core.spec import default_specification
from .core.pipeline import CampaignConfig, CampaignResult, Kit
from .core.profile import Profiler
from .faults.plan import FaultPlan
from .corpus.generator import build_corpus
from .corpus.program import TestProgram
from .corpus.store import load_corpus, save_corpus
from .kernel.bugs import (
    RACE_BUGS,
    BugFlags,
    fixed_kernel,
    known_bug_kernel,
    known_race_kernel,
    linux_5_13,
    race_kernel,
)
from .store import StoreError
from .kernel.kernel import KernelConfig
from .vm.machine import Machine, MachineConfig, RECEIVER


def _kernel_preset(name: str) -> BugFlags:
    normalized = name.lower().replace("-", ".")
    if normalized in ("5.13", "linux.5.13", "buggy"):
        return linux_5_13()
    if normalized in ("fixed", "patched"):
        return fixed_kernel()
    if name.upper() in SCENARIOS:
        return known_bug_kernel(name.upper())
    if normalized == "race":
        return race_kernel()
    if name.upper() in RACE_BUGS:
        return known_race_kernel(name.upper())
    raise SystemExit(f"unknown kernel preset {name!r} "
                     "(try: 5.13, fixed, a known-bug id A-G, race, "
                     "or a race-bug id T1-T3)")


def _machine_config(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig(
        kernel=KernelConfig(jump_label=args.jump_label),
        bugs=_kernel_preset(args.kernel),
    )


def _print_campaign(result: CampaignResult, show_reports: bool) -> None:
    stats = result.stats
    print(f"corpus: {stats.corpus_size} programs, "
          f"flows: {stats.flow_count}, clusters: {stats.cluster_count}")
    print(f"cases: {stats.cases_total} executed "
          f"({stats.executions_per_second():.0f}/s), outcomes: "
          + ", ".join(f"{k}={v}" for k, v in sorted(stats.outcomes.items())))
    print(f"funnel: {stats.initial_reports} candidates -> "
          f"{stats.after_nondet} -> {stats.after_resource} reports")
    if stats.execution_workers:
        line = (f"execution: {stats.execution_workers} "
                f"{stats.shard_mode} worker(s)")
        if stats.shard_mode == "process":
            line += (f", {stats.shards_spawned} shard(s) spawned"
                     f" ({stats.shards_died} died), "
                     f"{stats.steals_granted}/{stats.steals_attempted} "
                     f"steals granted ({stats.jobs_stolen} jobs), "
                     f"shm: {stats.shm_segments} segment(s) / "
                     f"{stats.shm_bytes} bytes")
        print(line)
    if stats.profile_store_hits + stats.profile_store_misses:
        total = stats.profile_store_hits + stats.profile_store_misses
        print(f"profile store: {stats.profile_store_hits / total:.0%} hit "
              f"({stats.profile_store_hits}/{total}), "
              f"{stats.profile_store_entries_written} entries / "
              f"{stats.profile_store_bytes_written} bytes written")
    if stats.index_run_segments:
        print(f"pairing index: columnar, {stats.index_run_segments} "
              f"run segment(s) / {stats.index_bytes} bytes, "
              f"{stats.index_points} access points")
    if stats.prefilter_pairs_total:
        print(f"prefilter: {stats.prefilter_pairs_pruned}/"
              f"{stats.prefilter_pairs_total} pairs pruned "
              f"({stats.prefilter_pruned_rate():.0%}), static-vs-dynamic "
              f"precision {stats.prefilter_precision:.0%} / "
              f"recall {stats.prefilter_recall:.0%}")
    if stats.restore_count:
        print(f"restores: {stats.restore_count} "
              f"({stats.segmented_restores} segmented / "
              f"{stats.full_restores} full), "
              f"segments skipped: {stats.segments_skipped_rate():.0%}, "
              f"restore time: {stats.restore_seconds:.2f}s")
        print(f"caches: baselines {stats.baseline_hit_rate():.0%} hit "
              f"({stats.baseline_hits}/"
              f"{stats.baseline_hits + stats.baseline_misses}), "
              f"non-det {stats.nondet_cache_hit_rate():.0%} hit "
              f"({stats.nondet_cache_hits}/"
              f"{stats.nondet_cache_hits + stats.nondet_cache_misses})")
    if stats.sender_cache_hits + stats.sender_cache_misses:
        shared = (f" ({stats.sender_cache_shared_hits} from shared tier)"
                  if stats.sender_cache_shared_hits else "")
        print(f"sender cache: {stats.sender_cache_hit_rate():.0%} hit "
              f"({stats.sender_cache_hits}/"
              f"{stats.sender_cache_hits + stats.sender_cache_misses})"
              f"{shared}, "
              f"{stats.sender_cache_entries} deltas / "
              f"{stats.sender_cache_bytes} bytes held, "
              f"{stats.sender_cache_evictions} evicted, "
              f"diagnosis prefix reuses: {stats.diagnosis_prefix_reuses}/"
              f"{stats.diagnosis_reruns}")
    if stats.faults_injected_total():
        print(f"faults: {stats.faults_injected_total()} injected / "
              f"{stats.faults_recovered_total()} recovered / "
              f"{stats.faults_infra_total()} infra-failed / "
              f"{stats.faults_poisoned_total()} poisoned "
              f"(accounted: {'yes' if stats.faults_accounted() else 'NO'}), "
              f"cases lost: {stats.infra_failed_cases}, "
              f"recovery restores: {stats.recovery_restores}")
        print("  per site: " + ", ".join(
            f"{site}={count}"
            for site, count in sorted(stats.faults_injected.items())))
    if stats.campaign_id:
        line = f"store: campaign {stats.campaign_id}"
        if stats.resumed_cases:
            line += (f", {stats.resumed_cases} case(s) restored from the "
                     f"journal ({stats.journal_records_replayed} records)")
        if stats.journal_torn_bytes:
            line += f", {stats.journal_torn_bytes} torn byte(s) repaired"
        if stats.journal_fsync_degraded:
            line += (f", {stats.journal_fsync_degraded} append(s) degraded "
                     "to flushed-only durability")
        print(line)
    if stats.poisoned_cases or stats.worker_hangs:
        print(f"supervision: {stats.poisoned_cases} pair(s) quarantined "
              f"as poison, {stats.worker_hangs} hung worker(s) reaped")
    if stats.schedules_executed:
        print(f"schedules: {stats.schedules_executed} interleaving(s) "
              f"executed, {stats.interleaved_reports} report(s) witnessed "
              "only under interleaving")
    print(f"groups: {result.groups.agg_rs_count} AGG-RS / "
          f"{result.groups.agg_r_count} AGG-R")
    print(f"bugs found: {sorted(result.bugs_found()) or 'none'}")
    if show_reports:
        for report in result.reports:
            print()
            print(report.render())


def _print_cache_report(result: CampaignResult) -> None:
    """The --cache-report breakdown: hit rates and bytes held per worker."""
    stats = result.stats
    print("cache report:")
    print(f"  baselines:    {stats.baseline_hit_rate():.0%} hit "
          f"({stats.baseline_hits}/"
          f"{stats.baseline_hits + stats.baseline_misses})")
    print(f"  non-det:      {stats.nondet_cache_hit_rate():.0%} hit "
          f"({stats.nondet_cache_hits}/"
          f"{stats.nondet_cache_hits + stats.nondet_cache_misses})")
    total = stats.sender_cache_hits + stats.sender_cache_misses
    if not total:
        print("  sender-state: disabled")
        return
    print(f"  sender-state: {stats.sender_cache_hit_rate():.0%} hit "
          f"({stats.sender_cache_hits}/{total}), "
          f"{stats.sender_cache_entries} deltas, "
          f"{stats.sender_cache_evictions} evicted")
    for owner, held in stats.sender_cache_bytes_by_owner.items():
        print(f"    {owner}: {held} bytes")
    if stats.diagnosis_reruns:
        print(f"  diagnosis:    {stats.diagnosis_prefix_reuses}/"
              f"{stats.diagnosis_reruns} re-runs served from "
              "memoized sender prefixes")


def _resolve_workers(requested: Optional[int]) -> int:
    """Map the --workers flag onto the campaign's pool size.

    Omitted means in-process execution (the historical default);
    ``--workers 0`` means auto — every core, with the pipeline clamping
    to the job count; an explicit N is taken verbatim.
    """
    if requested is None:
        return 0
    if requested == 0:
        return os.cpu_count() or 1
    if requested < 0:
        raise SystemExit(f"--workers must be >= 0 (got {requested})")
    return requested


def cmd_run(args: argparse.Namespace) -> int:
    if args.corpus_dir:
        loaded = load_corpus(args.corpus_dir)
        if not loaded.ok:
            for name, error in loaded.errors:
                print(f"corpus error: {name}: {error}", file=sys.stderr)
            return 1
        corpus: Optional[List[TestProgram]] = loaded.programs
    else:
        corpus = None
    config = CampaignConfig(
        machine=_machine_config(args),
        corpus=corpus,
        corpus_size=args.corpus_size,
        corpus_seed=args.seed,
        strategy=args.strategy,
        rand_budget=args.rand_budget,
        workers=_resolve_workers(args.workers),
        shard_mode=args.shard_mode,
        nondet_dir=args.nondet_cache,
        profile_dir=args.profile_cache,
        index_backend=args.index_backend,
        index_dir=args.index_dir,
        static_prefilter=args.prefilter,
        faults=args.faults,
        sender_cache=not args.no_sender_cache,
        store_dir=args.store,
        resume=args.resume,
        hang_timeout=args.hang_timeout,
        interleave=args.interleave,
        schedule_strategy=args.schedule_strategy,
        schedule_budget=args.schedule_budget,
        schedule_seed=args.schedule_seed,
        schedule_depth=args.schedule_depth,
        schedule_points=args.schedule_points,
        schedule_pairs=args.schedule_pairs,
    )
    if args.resume and not args.store:
        raise SystemExit("--resume requires --store DIR")
    progress = print if args.verbose else None
    try:
        result = Kit(config).run(progress=progress)
    except StoreError as error:
        raise SystemExit(f"store error: {error}")
    _print_campaign(result, show_reports=args.reports)
    if args.cache_report:
        _print_cache_report(result)
    if args.minimize and result.reports:
        machine = Machine(config.machine)
        detector = Detector(machine, config.spec, NondetAnalyzer(machine))
        print()
        for report in result.reports:
            print(minimize_report(detector, report).render())
            print()
    if args.save:
        save_campaign(result, args.save)
        print(f"campaign saved to {args.save}")
    if args.markdown:
        from .core.render_md import save_campaign_markdown

        save_campaign_markdown(result, args.markdown)
        print(f"markdown report written to {args.markdown}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    result = load_campaign(args.campaign)
    print(f"kernel {result.config.strategy} campaign, "
          f"{len(result.reports)} reports")
    _print_campaign(result, show_reports=args.reports)
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    corpus = build_corpus(args.corpus_size, seed=args.seed)
    machine = Machine(_machine_config(args))
    profiles = Profiler(machine).profile_corpus(corpus)
    print(coverage_of_profiles(profiles).render())
    return 0


def cmd_spec(args: argparse.Namespace) -> int:
    print(default_specification().describe())
    return 0


def cmd_gate(args: argparse.Namespace) -> int:
    """Run the same campaign on two kernels and enforce the clean-fix gate."""
    from .core.regress import diff_campaigns
    from .corpus.generator import build_corpus

    corpus = build_corpus(args.corpus_size, seed=args.seed)

    def campaign(preset_name):
        config = CampaignConfig(
            machine=MachineConfig(bugs=_kernel_preset(preset_name)),
            corpus=list(corpus),
        )
        return Kit(config).run()

    before = campaign(args.before)
    after = campaign(args.after)
    diff = diff_campaigns(before, after)
    print(diff.render())
    if diff.introduced:
        print("GATE FAILED: new interference introduced")
        return 1
    print("gate passed: nothing introduced")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Static interference analysis: access maps, escape lint, locks."""
    from .analysis import analyze, render_json, render_text
    from .analysis.cache import AnalysisCache

    if args.check:
        return _analyze_check()

    cache = None if args.no_cache else AnalysisCache(args.cache_dir)
    report = analyze(bugs=_kernel_preset(args.kernel),
                     kernel_name=args.kernel,
                     rediscovery=args.rediscover,
                     races=args.races,
                     cache=cache)
    text = (render_json(report) if args.json
            else render_text(report, verbose=args.verbose))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if not report.clean():
        return 1
    if args.rediscover and not report.rediscovery.matches_expectations():
        return 1
    return 0


def _analyze_check() -> int:
    """The CI gate: the clean kernel lints clean, every statically
    detectable injected bug is rediscovered, lock discipline holds."""
    from .analysis import analyze, rediscover_bugs

    failures = 0
    report = analyze(bugs=fixed_kernel(), kernel_name="fixed")
    unsuppressed = report.unsuppressed()
    if unsuppressed:
        failures += 1
        print(f"FAIL: clean kernel has {len(unsuppressed)} unsuppressed "
              "escape finding(s):")
        for finding in unsuppressed:
            print(f"  {finding.render()}")
    else:
        print("ok: clean kernel lints clean "
              f"({len(report.escape_findings)} suppressed)")
    if report.lock_findings:
        failures += 1
        print(f"FAIL: {len(report.lock_findings)} lock-discipline "
              "finding(s):")
        for finding in report.lock_findings:
            print(f"  {finding.render()}")
    else:
        print("ok: lock discipline holds")
    rediscovery = rediscover_bugs()
    if rediscovery.matches_expectations():
        print(f"ok: bug rediscovery {len(rediscovery.found)}/"
              f"{len(rediscovery.per_bug)} "
              f"({100 * rediscovery.rate():.0f}%), matches expectations")
    else:
        failures += 1
        unexpected = [flag for flag, r in rediscovery.per_bug.items()
                      if r.found != r.expected]
        print(f"FAIL: rediscovery deviates on {', '.join(unexpected)}")
    if failures:
        print(f"analyze --check: {failures} failure(s)")
        return 1
    print("analyze --check: all gates passed")
    return 0


def cmd_syscalls(args: argparse.Namespace) -> int:
    from .kernel.syscalls.describe import surface_markdown

    text = surface_markdown()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_known_bugs(args: argparse.Namespace) -> int:
    bug_ids = args.bugs or list(SCENARIOS)
    failures = 0
    for bug_id in bug_ids:
        outcome = reproduce_known_bug(bug_id)
        scenario = outcome.scenario
        status = "detected" if outcome.detected else "not detected"
        expected = "" if outcome.detected == scenario.detectable \
            else "  ** UNEXPECTED **"
        failures += outcome.detected != scenario.detectable
        print(f"{scenario.bug_id} (kernel {outcome.kernel_version}, "
              f"{outcome.namespace}): {status}{expected}")
        print(f"    {scenario.description}")
    return 1 if failures else 0


def cmd_compare(args: argparse.Namespace) -> int:
    corpus = build_corpus(args.corpus_size, seed=args.seed)
    print(f"corpus: {len(corpus)} programs")
    budget = None
    for strategy in ("df-ia", "df-st-1", "df-st-2", "rand"):
        config = CampaignConfig(
            machine=_machine_config(args),
            corpus=list(corpus),
            strategy=strategy,
            rand_budget=budget,
            diagnose=False,
        )
        result = Kit(config).run()
        if strategy == "df-ia":
            budget = 8 * result.stats.cases_total
        numbered = sorted(b for b in result.bugs_found() if b.isdigit())
        count = (result.stats.cluster_count if strategy != "rand"
                 else result.stats.cases_total)
        print(f"{strategy:<8} cases={count:<6} bugs={len(numbered)}/9 "
              f"{numbered}")
    return 0


def _corpus_gen(args: argparse.Namespace) -> int:
    """``corpus gen DIR``: stream a generation run into a directory.

    Deterministic and resumable: re-running with the same parameters
    regenerates the same stream and the writer skips everything already
    on disk, so an interrupted run finishes into a byte-identical
    directory.
    """
    from .corpus.generator import (CoverageDeduper, StreamStats,
                                   stream_corpus_batches)
    from .corpus.store import CorpusWriter

    stats = StreamStats()
    deduper = CoverageDeduper() if args.dedup else None
    with CorpusWriter(args.directory) as writer:
        for batch in stream_corpus_batches(
                args.corpus_size, args.batch_size, seed=args.seed,
                deduper=deduper, diversify=args.diversify, stats=stats):
            for program in batch:
                writer.add(program)
    drops = (f"{stats.duplicate_drops} duplicate / "
             f"{stats.coverage_drops} coverage drops")
    if stats.diversified:
        drops += f", {stats.diversified} from the syscall diversifier"
    print(f"admitted {stats.emitted} of {stats.candidates} candidates "
          f"({drops})")
    line = f"wrote {writer.added} programs to {args.directory}"
    if writer.skipped:
        line += f" ({writer.skipped} already present, resumed)"
    print(line)
    return 0


def _corpus_stats(args: argparse.Namespace) -> int:
    """``corpus stats DIR``: stream a corpus directory and summarize it."""
    from collections import Counter

    from .corpus.store import iter_corpus

    errors: List = []
    programs = calls = prog_bytes = 0
    syscalls: Counter = Counter()
    for program in iter_corpus(args.directory, errors=errors):
        programs += 1
        calls += len(program)
        prog_bytes += len(program.serialize()) + 1
        syscalls.update(call.name for call in program.calls
                        if call is not None)
    print(f"{programs} programs, {calls} calls, {prog_bytes} bytes, "
          f"{len(errors)} errors")
    if syscalls:
        top = ", ".join(f"{name}={count}"
                        for name, count in syscalls.most_common(8))
        print(f"syscalls: {len(syscalls)} distinct; top: {top}")
    for name, error in errors:
        print(f"  {name}: {error}", file=sys.stderr)
    return 0 if not errors else 1


def cmd_corpus(args: argparse.Namespace) -> int:
    if args.target in ("gen", "stats"):
        if not args.directory:
            raise SystemExit(f"corpus {args.target} requires a directory")
        return (_corpus_gen if args.target == "gen" else _corpus_stats)(args)
    # Legacy form: the first positional is the directory itself.
    args.directory = args.target
    if args.generate:
        corpus = build_corpus(args.corpus_size, seed=args.seed)
        written = save_corpus(args.directory, corpus)
        print(f"wrote {written} programs to {args.directory}")
        return 0
    loaded = load_corpus(args.directory)
    print(f"{len(loaded.programs)} programs, {len(loaded.errors)} errors")
    for name, error in loaded.errors:
        print(f"  {name}: {error}", file=sys.stderr)
    return 0 if loaded.ok else 1


def cmd_store(args: argparse.Namespace) -> int:
    """Inspect a durable campaign store: ``store ls`` / ``store show``."""
    from .store import CampaignStore, StoreError

    store = CampaignStore(args.store)
    if args.store_command == "ls":
        entries = store.list_campaigns()
        if not entries:
            print(f"no campaigns under {args.store}")
            return 0
        for entry in entries:
            summary = entry.summary
            kernel = summary.get("kernel_version", "?")
            bugs = len(summary.get("bugs_enabled", []))
            line = (f"{entry.campaign_id}  {entry.status():<11} "
                    f"kernel={kernel} bugs={bugs} "
                    f"strategy={summary.get('strategy', '?')} "
                    f"cases={entry.cases_done}")
            if entry.poisoned:
                line += f" poisoned={entry.poisoned}"
            if entry.attempts:
                line += f" worker-deaths={entry.attempts}"
            print(line)
        return 0
    # store show <campaign-id>
    try:
        entry = store.entry(args.campaign)
    except StoreError as error:
        print(f"store error: {error}", file=sys.stderr)
        return 1
    print(f"campaign {entry.campaign_id} ({entry.status()})")
    print(f"  path: {entry.path}")
    print(f"  fingerprint: {entry.fingerprint}")
    for knob, value in sorted(entry.summary.items()):
        if knob == "corpus_hashes" and value:
            value = f"<{len(value)} pinned programs>"
        if knob == "spec":
            value = f"<{len(str(value))} chars>"
        print(f"  config.{knob}: {value}")
    print(f"  journal: {entry.cases_done} case(s) committed, "
          f"{entry.attempts} worker death(s), "
          f"{entry.poisoned} poison quarantine(s)")
    if entry.accounting:
        print("  accounting: " + ", ".join(
            f"{name}={count}"
            for name, count in sorted(entry.accounting.items())))
    result = store.result_path(entry.campaign_id)
    print(f"  result: {result if result else 'not yet published'}")
    return 0


def cmd_repro(args: argparse.Namespace) -> int:
    """Replay journaled culprit schedules and verify byte-exact parity.

    For every interleaved report in the campaign's journal, rebuild the
    machine from the stored configuration summary, re-derive the culprit
    schedule's preemption points from its id, re-execute the
    interleaving, and compare the receiver's records against the
    journaled ones.  Any divergence exits 1 — a failed replay means the
    schedule id no longer names the same interleaving (kernel drift).
    """
    import os

    from .core.reportcodec import decode_report, encode_record
    from .core.schedule import replay_schedule
    from .store import RECORD_CASE, CampaignStore, scan

    store_obj = CampaignStore(args.store)
    try:
        entry = store_obj.entry(args.campaign)
    except StoreError as error:
        raise SystemExit(f"store error: {error}")
    summary = entry.summary
    machine = Machine(MachineConfig(
        kernel=KernelConfig(version=summary.get("kernel_version", "5.13"),
                            jump_label=summary.get("jump_label", False)),
        bugs=BugFlags(**{flag: True
                         for flag in summary.get("bugs_enabled", [])}),
    ))
    replay = scan(os.path.join(entry.path, "journal.jsonl"))
    checked = mismatched = 0
    for record in replay.records:
        if record.get("t") != RECORD_CASE or not record.get("report"):
            continue
        data = record["report"]
        if not data.get("culprit_schedule"):
            continue
        key = record.get("k", "")
        if args.case and args.case not in key:
            continue
        report = decode_report(data)
        result = replay_schedule(machine, report.case.sender,
                                 report.case.receiver,
                                 report.culprit_schedule)
        fresh = [encode_record(r) for r in result.records]
        stored = [encode_record(r) for r in report.receiver_with_records]
        ok = fresh == stored
        checked += 1
        mismatched += not ok
        print(f"{key[:24]}: {report.culprit_schedule} "
              f"{'ok' if ok else 'MISMATCH'}")
    if not checked:
        print("no interleaved reports in this campaign's journal")
        return 0
    print(f"repro: {checked - mismatched}/{checked} culprit schedule(s) "
          "replayed byte-identically")
    return 1 if mismatched else 0


def cmd_show(args: argparse.Namespace) -> int:
    with open(args.program) as handle:
        program = TestProgram.parse(handle.read())
    print("--- program ---")
    print(program.serialize())
    machine = Machine(_machine_config(args))
    machine.reset()
    result = machine.run(RECEIVER, program)
    print("--- trace ---")
    print(decode_trace(result.records))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kit-repro",
        description="KIT (ASPLOS 2023) reproduction: functional interference "
                    "testing for OS-level virtualization.",
    )
    parser.add_argument("--kernel", default="5.13",
                        help="kernel preset: 5.13, fixed, A-G, race, "
                             "or T1-T3 (default: 5.13)")
    parser.add_argument("--jump-label", action="store_true",
                        help="enable CONFIG_JUMP_LABEL (blinds data-flow "
                             "analysis to static keys, §6.1)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run a full campaign")
    run.add_argument("--corpus-size", type=int, default=150)
    run.add_argument("--corpus-dir", help="load the corpus from a directory")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--strategy", default="df-ia",
                     choices=["df-ia", "df-st-1", "df-st-2", "df", "rand"])
    run.add_argument("--rand-budget", type=int)
    run.add_argument("--workers", type=int, default=None,
                     help="distributed execution workers: omit for "
                          "in-process execution, 0 for auto "
                          "(os.cpu_count(), clamped to the job count), "
                          "N for an explicit pool size")
    run.add_argument("--shard-mode", default="thread",
                     choices=["thread", "process"],
                     help="how execution workers shard: GIL-bound "
                          "threads sharing one cache tier, or "
                          "shared-nothing forked processes with a "
                          "shared-memory snapshot and work stealing "
                          "(see docs/SHARDING.md)")
    run.add_argument("--nondet-cache", help="directory for non-det marks")
    run.add_argument("--profile-cache", metavar="DIR",
                     help="directory for the sharded on-disk profile "
                          "cache (reused across campaigns on the same "
                          "kernel fingerprint)")
    run.add_argument("--index-backend", default="memory",
                     choices=["memory", "columnar"],
                     help="pairing-index backend: the in-memory dict "
                          "product, or on-disk sorted columnar runs with "
                          "merge-join pairing (identical pair sets, "
                          "bounded memory — see docs/CORPUS.md)")
    run.add_argument("--index-dir", metavar="DIR",
                     help="keep columnar index run segments under DIR "
                          "instead of a private temp directory")
    run.add_argument("--prefilter", action="store_true",
                     help="prune statically disjoint candidate pairs "
                          "before clustering (repro.analysis)")
    run.add_argument("--faults", metavar="SEED[:RATE[:SITES]]",
                     type=FaultPlan.parse,
                     help="chaos fault injection, e.g. 7:0.2 or "
                          "7:0.2:worker.crash,exec.timeout "
                          "(see docs/FAULTS.md)")
    run.add_argument("--store", metavar="DIR",
                     help="durable campaign store: write-ahead journal "
                          "every result as it lands and publish the "
                          "final result document "
                          "(see docs/CAMPAIGN_STORE.md)")
    run.add_argument("--resume", action="store_true",
                     help="replay the journal under --store and "
                          "re-execute only the pairs it does not cover "
                          "(requires an identical result-affecting "
                          "configuration)")
    run.add_argument("--hang-timeout", type=float, metavar="SECONDS",
                     help="self-healing watchdog: reap any execution "
                          "worker silent for this long and retry its "
                          "job elsewhere")
    run.add_argument("--interleave", action="store_true",
                     help="controlled-concurrency mode: re-run passing "
                          "pairs under deterministically scheduled "
                          "interleavings to expose race-only interference "
                          "(see docs/SCHEDULING.md)")
    run.add_argument("--schedule-strategy", default="pct",
                     choices=["pct", "sys", "rand"],
                     help="how preemption points are chosen: PCT-style "
                          "random priority points, systematic "
                          "enumeration, or per-event coin flips")
    run.add_argument("--schedule-budget", type=int, default=24,
                     help="schedules explored per candidate pair")
    run.add_argument("--schedule-seed", type=int, default=11,
                     help="schedule RNG seed (part of every ScheduleId)")
    run.add_argument("--schedule-depth", type=int, default=3,
                     help="preemption points per schedule (PCT d)")
    run.add_argument("--schedule-points", default="kfunc",
                     choices=["kfunc", "syscall"],
                     help="preemption granularity: every traced kernel "
                          "function boundary, or syscall boundaries only")
    run.add_argument("--schedule-pairs", type=int, default=0,
                     help="only interleave pairs matching the top-N "
                          "static race candidates (0 = all pairs)")
    run.add_argument("--no-sender-cache", action="store_true",
                     help="disable post-sender state memoization "
                          "(re-execute every sender from the snapshot)")
    run.add_argument("--cache-report", action="store_true",
                     help="print per-cache hit rates and bytes held "
                          "per worker after the campaign")
    run.add_argument("--reports", action="store_true",
                     help="print every report in full")
    run.add_argument("--save", help="write the campaign result to a JSON file")
    run.add_argument("--minimize", action="store_true",
                     help="print a minimal verified reproducer per report")
    run.add_argument("--markdown",
                     help="write a human-readable campaign report (md)")
    run.add_argument("--verbose", action="store_true")
    run.set_defaults(handler=cmd_run)

    inspect = subparsers.add_parser("inspect",
                                    help="reload and summarize a saved campaign")
    inspect.add_argument("campaign")
    inspect.add_argument("--reports", action="store_true")
    inspect.set_defaults(handler=cmd_inspect)

    coverage = subparsers.add_parser("coverage",
                                     help="profile a corpus and report kernel "
                                          "coverage")
    coverage.add_argument("--corpus-size", type=int, default=100)
    coverage.add_argument("--seed", type=int, default=1)
    coverage.set_defaults(handler=cmd_coverage)

    known = subparsers.add_parser("known-bugs",
                                  help="reproduce Table-3 scenarios")
    known.add_argument("bugs", nargs="*", help="scenario ids (default: all)")
    known.set_defaults(handler=cmd_known_bugs)

    compare = subparsers.add_parser("compare",
                                    help="compare generation strategies")
    compare.add_argument("--corpus-size", type=int, default=120)
    compare.add_argument("--seed", type=int, default=1)
    compare.set_defaults(handler=cmd_compare)

    corpus = subparsers.add_parser(
        "corpus",
        help="manage corpus directories: 'corpus gen DIR' streams a "
             "generation run to disk, 'corpus stats DIR' summarizes one, "
             "and the legacy 'corpus DIR [--generate]' form still works")
    corpus.add_argument("target",
                        help="'gen', 'stats', or a corpus directory "
                             "(legacy form)")
    corpus.add_argument("directory", nargs="?",
                        help="corpus directory for gen/stats")
    corpus.add_argument("--generate", action="store_true",
                        help="legacy form: generate into DIR")
    corpus.add_argument("--corpus-size", type=int, default=200)
    corpus.add_argument("--seed", type=int, default=1)
    corpus.add_argument("--batch-size", type=int, default=64,
                        help="programs per streamed generation batch")
    corpus.add_argument("--dedup", action="store_true",
                        help="drop programs whose static access map adds "
                             "no new (location, r/w) coverage fact")
    corpus.add_argument("--diversify", action="store_true",
                        help="mine admitted programs' syscall profiles and "
                             "generate focused programs for unused syscalls")
    corpus.set_defaults(handler=cmd_corpus)

    spec = subparsers.add_parser("spec",
                                 help="print the default protected-resource "
                                      "specification")
    spec.set_defaults(handler=cmd_spec)

    gate = subparsers.add_parser("gate",
                                 help="diff campaigns across two kernel "
                                      "presets and fail on new interference")
    gate.add_argument("before", help="baseline kernel preset")
    gate.add_argument("after", help="candidate kernel preset")
    gate.add_argument("--corpus-size", type=int, default=100)
    gate.add_argument("--seed", type=int, default=1)
    gate.set_defaults(handler=cmd_gate)

    analyze = subparsers.add_parser("analyze",
                                    help="static interference analysis: "
                                         "access maps, escape lint, lock "
                                         "discipline")
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable report")
    analyze.add_argument("--rediscover", action="store_true",
                         help="differentially lint every single-bug kernel")
    analyze.add_argument("--races", action="store_true",
                         help="join lockset-annotated access maps into "
                              "ranked race-pair candidates (R0 crosses a "
                              "namespace boundary)")
    analyze.add_argument("--no-cache", action="store_true",
                         help="disable the incremental analysis cache")
    analyze.add_argument("--cache-dir",
                         help="analysis cache directory (default: "
                              ".kit-analysis-cache at the repo root)")
    analyze.add_argument("--check", action="store_true",
                         help="CI gate: clean kernel lints clean, bugs "
                              "rediscovered, locks disciplined")
    analyze.add_argument("--output", help="write the report to a file")
    analyze.add_argument("--verbose", action="store_true",
                         help="include the full access map")
    analyze.set_defaults(handler=cmd_analyze)

    syscalls = subparsers.add_parser("syscalls",
                                     help="document the declared syscall "
                                          "surface")
    syscalls.add_argument("--output", help="write to a file instead of stdout")
    syscalls.set_defaults(handler=cmd_syscalls)

    store = subparsers.add_parser("store",
                                  help="inspect a durable campaign store")
    store.add_argument("store", metavar="DIR",
                       help="the --store directory to inspect")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser("ls", help="list campaigns and status")
    store_ls.set_defaults(handler=cmd_store)
    store_show = store_sub.add_parser("show",
                                      help="show one campaign in detail")
    store_show.add_argument("campaign", help="campaign id (store ls)")
    store_show.set_defaults(handler=cmd_store)

    repro = subparsers.add_parser("repro",
                                  help="replay a campaign's culprit "
                                       "schedules and verify byte parity")
    repro.add_argument("store", metavar="DIR",
                       help="the --store directory the campaign ran under")
    repro.add_argument("campaign", help="campaign id (store ls)")
    repro.add_argument("--case", metavar="SUBSTR",
                       help="only replay case keys containing this "
                            "substring")
    repro.set_defaults(handler=cmd_repro)

    show = subparsers.add_parser("show",
                                 help="decode and execute one .prog file")
    show.add_argument("program")
    show.set_defaults(handler=cmd_show)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
