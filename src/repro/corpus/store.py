"""On-disk corpus storage — the syzkaller ``corpus.db`` stand-in.

A corpus directory holds one ``<hash>.prog`` text file per program (the
human-readable serialization) plus an ``index.txt`` that fixes the corpus
order, so campaigns are reproducible from disk.  Programs that fail to
parse are reported, not silently dropped — a corrupted corpus should be
loud.

Loading and saving both *stream*: :func:`iter_corpus` yields programs
one at a time straight off the index (a 100k-program corpus never sits
in memory as a list on the load path), and :class:`CorpusWriter` admits
a generation stream incrementally, appending to the index as it goes —
reopening the writer on an existing directory resumes it, skipping the
hashes already present, so an interrupted deterministic generation run
finishes into a byte-identical directory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from .program import TestProgram

_INDEX_NAME = "index.txt"
_SUFFIX = ".prog"


@dataclass
class LoadReport:
    """Outcome of loading a corpus directory."""

    programs: List[TestProgram] = field(default_factory=list)
    #: (filename, error message) for entries that failed to load.
    errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def save_corpus(directory: str, corpus: Iterable[TestProgram]) -> int:
    """Write *corpus* under *directory*; returns the number written.

    *corpus* may be any iterable, including a lazy generation stream —
    each program is written as it arrives.
    """
    os.makedirs(directory, exist_ok=True)
    count = 0
    with open(os.path.join(directory, _INDEX_NAME), "w") as index:
        for program in corpus:
            name = program.hash_hex + _SUFFIX
            with open(os.path.join(directory, name), "w") as handle:
                handle.write(program.serialize() + "\n")
            index.write(name + "\n")
            count += 1
    return count


def _iter_index_names(directory: str) -> Iterator[str]:
    index_path = os.path.join(directory, _INDEX_NAME)
    if os.path.exists(index_path):
        with open(index_path) as handle:
            for line in handle:
                name = line.strip()
                if name:
                    yield name
    else:
        yield from sorted(name for name in os.listdir(directory)
                          if name.endswith(_SUFFIX))


def iter_corpus(directory: str,
                errors: Optional[List[Tuple[str, str]]] = None
                ) -> Iterator[TestProgram]:
    """Stream a corpus directory in index order.

    Corrupt entries (unreadable, unparseable, or hash-mismatched) are
    skipped and reported into *errors*; a missing or unreadable
    directory is itself one error entry, not an exception — a damaged
    store degrades to whatever loads, loudly.
    """
    errors = errors if errors is not None else []
    try:
        names = list(_iter_index_names(directory))
    except OSError as error:
        errors.append((directory, str(error)))
        return
    for name in names:
        path = os.path.join(directory, name)
        try:
            with open(path) as handle:
                program = TestProgram.parse(handle.read())
        except (OSError, ValueError) as error:
            errors.append((name, str(error)))
            continue
        expected = name[:-len(_SUFFIX)]
        if program.hash_hex != expected:
            errors.append(
                (name, f"content hash {program.hash_hex} != filename"))
            continue
        yield program


def load_corpus(directory: str) -> LoadReport:
    """Load a corpus directory written by :func:`save_corpus`.

    Without an index (e.g. a hand-assembled directory), ``*.prog`` files
    are loaded in sorted-name order.
    """
    report = LoadReport()
    for program in iter_corpus(directory, errors=report.errors):
        report.programs.append(program)
    return report


class CorpusWriter:
    """Incremental, resumable corpus writer.

    Opening a writer on a directory that already holds a corpus resumes
    it: hashes listed in the existing index are skipped on
    :meth:`add` and new programs append to the index.  Because
    generation is deterministic, interrupting a streamed run and
    resuming it with the same parameters reproduces the prefix already
    on disk (each add a no-op) and then appends the missing tail —
    the final directory is byte-identical to an uninterrupted run.
    """

    def __init__(self, directory: str):
        os.makedirs(directory, exist_ok=True)
        self._directory = directory
        self._known: Set[str] = set()
        index_path = os.path.join(directory, _INDEX_NAME)
        if os.path.exists(index_path):
            for name in _iter_index_names(directory):
                self._known.add(name[:-len(_SUFFIX)])
        self._index = open(index_path, "a")
        #: Programs appended by this writer (resume skips not counted).
        self.added = 0
        #: Adds skipped because the hash was already on disk.
        self.skipped = 0

    @property
    def count(self) -> int:
        """Total programs in the directory (pre-existing + added)."""
        return len(self._known)

    def add(self, program: TestProgram) -> bool:
        """Persist *program*; False when it was already present."""
        if program.hash_hex in self._known:
            self.skipped += 1
            return False
        name = program.hash_hex + _SUFFIX
        with open(os.path.join(self._directory, name), "w") as handle:
            handle.write(program.serialize() + "\n")
        self._index.write(name + "\n")
        self._index.flush()
        self._known.add(program.hash_hex)
        self.added += 1
        return True

    def close(self) -> None:
        self._index.close()

    def __enter__(self) -> "CorpusWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
