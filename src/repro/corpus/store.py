"""On-disk corpus storage — the syzkaller ``corpus.db`` stand-in.

A corpus directory holds one ``<hash>.prog`` text file per program (the
human-readable serialization) plus an ``index.txt`` that fixes the corpus
order, so campaigns are reproducible from disk.  Programs that fail to
parse are reported, not silently dropped — a corrupted corpus should be
loud.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from .program import TestProgram

_INDEX_NAME = "index.txt"
_SUFFIX = ".prog"


@dataclass
class LoadReport:
    """Outcome of loading a corpus directory."""

    programs: List[TestProgram] = field(default_factory=list)
    #: (filename, error message) for entries that failed to load.
    errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def save_corpus(directory: str, corpus: Iterable[TestProgram]) -> int:
    """Write *corpus* under *directory*; returns the number written."""
    os.makedirs(directory, exist_ok=True)
    ordered = list(corpus)
    names = []
    for program in ordered:
        name = program.hash_hex + _SUFFIX
        names.append(name)
        with open(os.path.join(directory, name), "w") as handle:
            handle.write(program.serialize() + "\n")
    with open(os.path.join(directory, _INDEX_NAME), "w") as handle:
        handle.write("\n".join(names) + ("\n" if names else ""))
    return len(ordered)


def load_corpus(directory: str) -> LoadReport:
    """Load a corpus directory written by :func:`save_corpus`.

    Without an index (e.g. a hand-assembled directory), ``*.prog`` files
    are loaded in sorted-name order.
    """
    report = LoadReport()
    index_path = os.path.join(directory, _INDEX_NAME)
    if os.path.exists(index_path):
        with open(index_path) as handle:
            names = [line.strip() for line in handle if line.strip()]
    else:
        names = sorted(name for name in os.listdir(directory)
                       if name.endswith(_SUFFIX))
    for name in names:
        path = os.path.join(directory, name)
        try:
            with open(path) as handle:
                program = TestProgram.parse(handle.read())
        except (OSError, ValueError) as error:
            report.errors.append((name, str(error)))
            continue
        expected = name[:-len(_SUFFIX)]
        if program.hash_hex != expected:
            report.errors.append(
                (name, f"content hash {program.hash_hex} != filename"))
            continue
        report.programs.append(program)
    return report
