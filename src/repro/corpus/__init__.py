"""Test-program corpus: program model, seeds, and the random generator."""

from .generator import (
    CoverageDeduper,
    ProgramGenerator,
    StreamStats,
    build_corpus,
    stream_corpus,
    stream_corpus_batches,
)
from .program import Arg, Call, ConstArg, ResultArg, TestProgram, prog
from .seeds import seed_list, seed_programs
from .store import (
    CorpusWriter,
    LoadReport,
    iter_corpus,
    load_corpus,
    save_corpus,
)

__all__ = [
    "Arg",
    "Call",
    "ConstArg",
    "CorpusWriter",
    "CoverageDeduper",
    "ProgramGenerator",
    "ResultArg",
    "StreamStats",
    "TestProgram",
    "LoadReport",
    "build_corpus",
    "iter_corpus",
    "load_corpus",
    "save_corpus",
    "stream_corpus",
    "stream_corpus_batches",
    "prog",
    "seed_list",
    "seed_programs",
]
