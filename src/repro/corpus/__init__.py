"""Test-program corpus: program model, seeds, and the random generator."""

from .generator import ProgramGenerator, build_corpus
from .program import Arg, Call, ConstArg, ResultArg, TestProgram, prog
from .seeds import seed_list, seed_programs
from .store import LoadReport, load_corpus, save_corpus

__all__ = [
    "Arg",
    "Call",
    "ConstArg",
    "ProgramGenerator",
    "ResultArg",
    "TestProgram",
    "LoadReport",
    "build_corpus",
    "load_corpus",
    "save_corpus",
    "prog",
    "seed_list",
    "seed_programs",
]
