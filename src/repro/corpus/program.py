"""Test programs: sequences of system calls, syzkaller-style.

A :class:`TestProgram` is an ordered tuple of :class:`Call`\\ s.  Each
call's result implicitly defines a variable ``r<i>`` that later calls can
reference through :class:`ResultArg` — the same dependency model
syzkaller programs use (``r0 = socket(...); bind(r0, ...)``).

Programs serialize to/from a human-readable text form so corpora can be
stored on disk and reports stay legible::

    r0 = socket(0x2, 0x1, 0x6)
    bind(r0, 0x7f000001, 0x50)

:meth:`TestProgram.without_call` implements the ``RemoveCall`` operation
of Algorithm 2 (report diagnosis): the call is replaced by a hole that
keeps result numbering stable; references to a removed result resolve to
0 at execution time, like syzkaller's default-value substitution.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class ConstArg:
    """A literal argument value (int or str)."""

    value: Union[int, str]

    def render(self) -> str:
        if isinstance(self.value, int):
            return hex(self.value)
        return '"' + str(self.value).replace('"', '\\"') + '"'


@dataclass(frozen=True)
class ResultArg:
    """A reference to the result of an earlier call (``r<index>``)."""

    index: int

    def render(self) -> str:
        return f"r{self.index}"


Arg = Union[ConstArg, ResultArg]


@dataclass(frozen=True)
class Call:
    """One syscall invocation."""

    name: str
    args: Tuple[Arg, ...] = ()

    def render(self, index: int, define_result: bool) -> str:
        rendered = ", ".join(arg.render() for arg in self.args)
        prefix = f"r{index} = " if define_result else ""
        return f"{prefix}{self.name}({rendered})"

    def references(self) -> List[int]:
        return [arg.index for arg in self.args if isinstance(arg, ResultArg)]


_CALL_RE = re.compile(
    r"^(?:r(?P<res>\d+)\s*=\s*)?(?P<name>\w+)\((?P<args>.*)\)$"
)
_REMOVED_RE = re.compile(r"^#\s*r(?P<res>\d+) removed$")


class TestProgram:
    """An immutable sequence of calls (holes allowed after removal)."""

    __test__ = False  # not a pytest class, despite the name

    __slots__ = ("calls", "_hash_hex")

    def __init__(self, calls: Sequence[Optional[Call]]):
        self.calls: Tuple[Optional[Call], ...] = tuple(calls)
        self._hash_hex: Optional[str] = None

    # -- identity ------------------------------------------------------------

    def serialize(self) -> str:
        lines = []
        for index, call in enumerate(self.calls):
            if call is None:
                lines.append(f"# r{index} removed")
            else:
                lines.append(call.render(index, define_result=True))
        return "\n".join(lines)

    @property
    def hash_hex(self) -> str:
        """Stable content hash (used as the non-determinism cache key)."""
        if self._hash_hex is None:
            digest = hashlib.sha1(self.serialize().encode()).hexdigest()
            self._hash_hex = digest
        return self._hash_hex

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TestProgram) and self.calls == other.calls

    def __hash__(self) -> int:
        return hash(self.calls)

    def __len__(self) -> int:
        return len(self.calls)

    def __iter__(self) -> Iterator[Optional[Call]]:
        return iter(self.calls)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TestProgram({self.serialize()!r})"

    # -- transformation ----------------------------------------------------

    def without_call(self, index: int) -> "TestProgram":
        """Algorithm 2's ``RemoveCall``: drop call *index*, keep numbering."""
        if not 0 <= index < len(self.calls):
            raise IndexError(index)
        calls = list(self.calls)
        calls[index] = None
        return TestProgram(calls)

    def live_call_indices(self) -> List[int]:
        return [i for i, call in enumerate(self.calls) if call is not None]

    def concatenate(self, other: "TestProgram") -> "TestProgram":
        """Append *other*, re-basing its result references."""
        offset = len(self.calls)
        rebased: List[Optional[Call]] = list(self.calls)
        for call in other.calls:
            if call is None:
                rebased.append(None)
                continue
            args = tuple(
                ResultArg(arg.index + offset) if isinstance(arg, ResultArg) else arg
                for arg in call.args
            )
            rebased.append(Call(call.name, args))
        return TestProgram(rebased)

    # -- parsing ---------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "TestProgram":
        """Parse the :meth:`serialize` text form back into a program."""
        calls: List[Optional[Call]] = []
        for raw_line in text.strip().splitlines():
            line = raw_line.strip()
            if not line:
                continue
            removed = _REMOVED_RE.match(line)
            if removed:
                calls.append(None)
                continue
            match = _CALL_RE.match(line)
            if match is None:
                raise ValueError(f"unparseable program line: {line!r}")
            args = _parse_args(match.group("args"))
            calls.append(Call(match.group("name"), tuple(args)))
        return cls(calls)


def _parse_args(text: str) -> List[Arg]:
    args: List[Arg] = []
    for token in _split_args(text):
        token = token.strip()
        if not token:
            continue
        if token.startswith("r") and token[1:].isdigit():
            args.append(ResultArg(int(token[1:])))
        elif token.startswith('"'):
            args.append(ConstArg(token[1:-1].replace('\\"', '"')))
        elif token.startswith(("0x", "-0x")) or token.lstrip("-").isdigit():
            args.append(ConstArg(int(token, 0)))
        else:
            raise ValueError(f"unparseable argument: {token!r}")
    return args


def _split_args(text: str) -> List[str]:
    """Split on commas outside string literals."""
    parts: List[str] = []
    current = []
    in_string = False
    for char in text:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif char == "," and not in_string:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def prog(*calls: Tuple) -> TestProgram:
    """Terse program builder for seeds and tests.

    Each element is ``(name, arg, …)``; int/str args become literals and
    ``"r0"``-style strings become result references::

        prog(("socket", 2, 1, 6), ("bind", "r0", 0x7f000001, 80))
    """
    built: List[Call] = []
    for entry in calls:
        name, *raw_args = entry
        args: List[Arg] = []
        for raw in raw_args:
            if isinstance(raw, str) and re.fullmatch(r"r\d+", raw):
                args.append(ResultArg(int(raw[1:])))
            else:
                args.append(ConstArg(raw))
        built.append(Call(name, tuple(args)))
    return TestProgram(built)
