"""Per-task file descriptor tables.

Each simulated task owns an :class:`FdTable` mapping small integers to
:class:`FileObject` instances.  File objects carry a ``resource_kind``
string — the syzlang-style resource identifier KIT's specification layer
matches against (paper §4.3.1 / §5.3), e.g. ``"sock_packet"`` or
``"fd_proc_net"``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from .errno import EBADF, EMFILE, SyscallError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .task import Task


class FileObject:
    """Base class for anything an fd can refer to.

    Subclasses set :attr:`resource_kind` to the syzlang-lite resource
    identifier of the descriptor type and may override :meth:`on_close`
    to release kernel state.
    """

    resource_kind = "fd"

    def __init__(self) -> None:
        self.refcount = 1

    def on_close(self, kernel: "Kernel", task: "Task") -> None:
        """Release kernel state when the last reference drops."""

    def describe(self) -> str:
        return f"<{self.resource_kind}>"


class FdTable:
    """Lowest-free-slot fd allocation with a ulimit-style cap.

    Descriptors 0-2 are reserved (stdin/stdout/stderr of the executor),
    so the first allocated fd is 3 — keeping decoded traces familiar.
    """

    FIRST_FD = 3
    MAX_FDS = 128

    def __init__(self, max_fds: int = MAX_FDS):
        self._fds: Dict[int, FileObject] = {}
        self._max_fds = max_fds

    def install(self, file_object: FileObject) -> int:
        """Place *file_object* at the lowest free descriptor."""
        for fd in range(self.FIRST_FD, self._max_fds):
            if fd not in self._fds:
                self._fds[fd] = file_object
                return fd
        raise SyscallError(EMFILE, "fd table full")

    def get(self, fd: int) -> FileObject:
        try:
            return self._fds[fd]
        except (KeyError, TypeError):
            raise SyscallError(EBADF, f"bad file descriptor {fd!r}") from None

    def get_as(self, fd: int, file_type: type, errno: int = EBADF) -> FileObject:
        """Fetch *fd* and require it to be an instance of *file_type*."""
        file_object = self.get(fd)
        if not isinstance(file_object, file_type):
            raise SyscallError(errno, f"fd {fd} is not a {file_type.__name__}")
        return file_object

    def remove(self, fd: int) -> FileObject:
        try:
            return self._fds.pop(fd)
        except KeyError:
            raise SyscallError(EBADF, f"bad file descriptor {fd}") from None

    def open_fds(self) -> List[int]:
        return sorted(self._fds)

    def __contains__(self, fd: int) -> bool:
        return fd in self._fds

    def __len__(self) -> int:
        return len(self._fds)
