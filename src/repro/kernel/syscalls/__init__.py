"""Syscall dispatch for the simulated kernel.

Importing this package registers every declared syscall (see
:mod:`.table`); :func:`dispatch` is the kernel's syscall entry point.
"""

from __future__ import annotations

from typing import Any, List

from ..errno import ENOSYS, SyscallError
from .decl import DECLS, ArgSpec, SyscallDecl
from .table import HANDLERS

__all__ = ["DECLS", "ArgSpec", "SyscallDecl", "dispatch"]


def dispatch(kernel, task, name: str, args: List[Any]):
    """Invoke syscall *name* for *task*; raises SyscallError on failure."""
    handler = HANDLERS.get(name)
    if handler is None:
        raise SyscallError(ENOSYS, f"unknown syscall {name!r}")
    decl = DECLS.get(name)
    if len(args) != len(decl.args):
        raise SyscallError(ENOSYS, f"{name} expects {len(decl.args)} args")
    return handler(kernel, task, args)
