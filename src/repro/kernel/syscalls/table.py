"""Syscall declarations and handlers.

Each entry couples a syzlang-lite declaration (argument domains for the
corpus generator, resource typing for the specification layer) with a
thin handler that adapts the call onto the subsystem implementations.

The value domains are the corpus generator's raw material — they play
the role of syzkaller's argument grammars.  Domains deliberately include
both values that hit interesting kernel paths and values that fail, as a
fuzzing corpus would.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..errno import EBADF, EINVAL, ENOTDIR, EPERM, ESPIPE, SyscallError
from ..fdtable import FileObject
from ..ipc import IPC_CREAT, IPC_PRIVATE, IPC_RMID, IPC_STAT
from ..iouring import IoUringFile
from ..ipc import MqFile
from ..nsfs import NsFile, open_ns_file, setns as do_setns
from ..kernel import Kernel, SyscallResult
from ..namespaces import (
    CLONE_NEWIPC,
    CLONE_NEWNET,
    CLONE_NEWNS,
    CLONE_NEWPID,
    CLONE_NEWUSER,
    CLONE_NEWUTS,
    NamespaceType,
)
from ..net.flowlabel import FL_SHARE_ANY, FL_SHARE_EXCL
from ..net.packet import ETH_P_ALL, ETH_P_IP
from ..net.socket import (
    AF_INET,
    AF_INET6,
    AF_NETLINK,
    AF_PACKET,
    AF_RDS,
    AF_UNIX,
    IPPROTO_SCTP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPV6_FLOWINFO_SEND,
    IPV6_FLOWLABEL_MGR,
    NETLINK_KOBJECT_UEVENT,
    SCTP_GET_ASSOC_ID,
    SCTP_SOCKOPT_CONNECTX,
    SO_COOKIE,
    SOCK_DGRAM,
    SOCK_RAW,
    SOCK_SEQPACKET,
    SOCK_STREAM,
    SOL_IPV6,
    SOL_SCTP,
    SOL_SOCKET,
    Socket,
)
from ..task import PRIO_PGRP, PRIO_PROCESS, PRIO_USER, Task
from ..vfs import O_CREAT, O_DIRECTORY, O_RDONLY, O_RDWR, O_WRONLY, OpenFile
from .decl import DECLS, ArgSpec, SyscallDecl

Handler = Callable[[Kernel, Task, List[Any]], SyscallResult]
HANDLERS: Dict[str, Handler] = {}

# -- common value domains -----------------------------------------------------

PROC_PATHS = (
    "/proc/net/ptype", "/proc/net/sockstat", "/proc/net/protocols",
    "/proc/net/dev", "/proc/net/ip_vs", "/proc/net/nf_conntrack",
    "/proc/net/unix", "/proc/sys/net/netfilter/nf_conntrack_max",
    "/proc/sys/kernel/hostname", "/proc/crypto", "/proc/uptime",
    "/proc/meminfo", "/proc/version",
)
NS_PATHS = ("/proc/self/ns/net", "/proc/self/ns/uts", "/proc/self/ns/ipc",
            "/proc/self/ns/mnt")
FILE_PATHS = ("/tmp/f0", "/tmp/f1", "/tmp/d0/f0", "/etc/hostname")
DIR_PATHS = ("/tmp", "/tmp/d0", "/etc", "/proc", "/proc/net")
ALL_PATHS = PROC_PATHS + FILE_PATHS + DIR_PATHS

PORTS = (0, 80, 4000, 8080, 20000)
ADDRS = (0x7F000001, 0x0A000001, 0x0A000002)
FLOW_LABELS = (0xBEEF, 0xCAFE, 0x1)
SIZES = (0, 1, 64, 512)
COUNTS = (64, 512, 4096)


def syscall(decl: SyscallDecl) -> Callable[[Handler], Handler]:
    """Register *decl* and bind the decorated handler to it."""

    def register(handler: Handler) -> Handler:
        DECLS.add(decl)
        HANDLERS[decl.name] = handler
        return handler

    return register


def _int(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SyscallError(EINVAL, f"expected int, got {value!r}")
    return value


def _fd_object(task: Task, value: Any) -> FileObject:
    return task.fdtable.get(_int(value) if isinstance(value, int) else value)


# -- process / namespaces ----------------------------------------------------

@syscall(SyscallDecl("getpid", args=(), weight=0.3))
def sys_getpid(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(task.pid)


@syscall(SyscallDecl("unshare", args=(
    ArgSpec("flags", "flags", choices=(CLONE_NEWNET, CLONE_NEWUTS, CLONE_NEWIPC,
                                       CLONE_NEWNS, CLONE_NEWPID, CLONE_NEWUSER)),
), weight=0.1))
def sys_unshare(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.unshare(task, _int(args[0])))


@syscall(SyscallDecl("setpriority", args=(
    ArgSpec("which", "int", choices=(PRIO_PROCESS, PRIO_PGRP, PRIO_USER)),
    ArgSpec("who", "int", choices=(0,)),
    ArgSpec("prio", "int", choices=(-5, 1, 10, 19)),
)))
def sys_setpriority(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(
        kernel.sched.sys_setpriority(task, _int(args[0]), _int(args[1]), _int(args[2]))
    )


@syscall(SyscallDecl("getpriority", args=(
    ArgSpec("which", "int", choices=(PRIO_PROCESS, PRIO_PGRP, PRIO_USER)),
    ArgSpec("who", "int", choices=(0,)),
)))
def sys_getpriority(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.sched.sys_getpriority(task, _int(args[0]), _int(args[1])))


@syscall(SyscallDecl("clock_gettime", args=(
    ArgSpec("clk_id", "int", choices=(0, 1)),
), weight=0.3))
def sys_clock_gettime(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    now = kernel.clock.now_ns()
    if _int(args[0]) == 1:  # CLOCK_MONOTONIC
        time_ns = task.nsproxy.get(NamespaceType.TIME)
        now = kernel.clock.uptime_ns() + time_ns.kget("monotonic_offset")
    return SyscallResult(0, {"tv_sec": now // 10**9, "tv_nsec": now % 10**9})


@syscall(SyscallDecl("sethostname", args=(
    ArgSpec("name", "str", choices=("kit-a", "kit-b", "container0")),
)))
def sys_sethostname(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    from ..task import CAP_SYS_ADMIN

    if not task.capable(CAP_SYS_ADMIN):
        raise SyscallError(EPERM, "sethostname needs CAP_SYS_ADMIN")
    uts = task.nsproxy.get(NamespaceType.UTS)
    uts.set_hostname(str(args[0]))
    return SyscallResult(0)


@syscall(SyscallDecl("gethostname", args=()))
def sys_gethostname(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    uts = task.nsproxy.get(NamespaceType.UTS)
    return SyscallResult(0, {"name": uts.get_hostname()})


# -- files ---------------------------------------------------------------------

@syscall(SyscallDecl("open", args=(
    ArgSpec("path", "path", choices=ALL_PATHS + NS_PATHS),
    ArgSpec("flags", "flags", choices=(O_RDONLY, O_RDWR, O_RDONLY | O_DIRECTORY,
                                       O_CREAT | O_RDWR, O_WRONLY)),
), ret_resource="fd_file", weight=2.0))
def sys_open(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    path = str(args[0])
    if path.startswith("/proc/self/ns/"):
        # nsfs: opening a namespace file captures the current instance.
        ns_file = open_ns_file(task, path)
        return SyscallResult(task.fdtable.install(ns_file))
    open_file = kernel.vfs.open(task, path, _int(args[1]))
    fd = task.fdtable.install(open_file)
    return SyscallResult(fd, {"path": open_file.path})


@syscall(SyscallDecl("read", args=(
    ArgSpec("fd", "fd", resource="fd"),
    ArgSpec("count", "int", choices=COUNTS),
), weight=2.0))
def sys_read(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    file_object = _fd_object(task, args[0])
    count = _int(args[1])
    if isinstance(file_object, Socket):
        data = kernel.net.recvfrom(task, file_object, count)
        return SyscallResult(len(data), {"data": data})
    if isinstance(file_object, OpenFile):
        data = kernel.vfs.read_file(task, file_object, count, file_object.offset)
        file_object.offset += len(data)
        return SyscallResult(len(data), {"data": data})
    raise SyscallError(EBADF)


@syscall(SyscallDecl("pread64", args=(
    ArgSpec("fd", "fd", resource="fd_file"),
    ArgSpec("count", "int", choices=COUNTS),
    ArgSpec("offset", "int", choices=(0, 8, 64)),
)))
def sys_pread64(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    file_object = _fd_object(task, args[0])
    if not isinstance(file_object, OpenFile):
        raise SyscallError(ESPIPE)
    data = kernel.vfs.read_file(task, file_object, _int(args[1]), _int(args[2]))
    return SyscallResult(len(data), {"data": data})


@syscall(SyscallDecl("write", args=(
    ArgSpec("fd", "fd", resource="fd_file"),
    ArgSpec("data", "str", choices=("hello", "65536", "1", "kit-data")),
)))
def sys_write(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    file_object = _fd_object(task, args[0])
    if not isinstance(file_object, OpenFile):
        raise SyscallError(EBADF)
    data = str(args[1])
    written = kernel.vfs.write_file(task, file_object, data, file_object.offset)
    file_object.offset += written
    return SyscallResult(written)


@syscall(SyscallDecl("lseek", args=(
    ArgSpec("fd", "fd", resource="fd_file"),
    ArgSpec("offset", "int", choices=(0, 4, 32)),
    ArgSpec("whence", "int", choices=(0, 1)),
), weight=0.3))
def sys_lseek(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    file_object = _fd_object(task, args[0])
    if not isinstance(file_object, OpenFile):
        raise SyscallError(ESPIPE)
    offset, whence = _int(args[1]), _int(args[2])
    if whence == 0:
        file_object.offset = offset
    elif whence == 1:
        file_object.offset += offset
    else:
        raise SyscallError(EINVAL)
    return SyscallResult(file_object.offset)


@syscall(SyscallDecl("close", args=(ArgSpec("fd", "fd", resource="fd"),), weight=0.7))
def sys_close(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    file_object = task.fdtable.remove(_int(args[0]))
    file_object.refcount -= 1
    if file_object.refcount <= 0:
        file_object.on_close(kernel, task)
    return SyscallResult(0)


@syscall(SyscallDecl("dup", args=(ArgSpec("fd", "fd", resource="fd"),),
                     ret_resource="fd_file", weight=0.3))
def sys_dup(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    file_object = _fd_object(task, args[0])
    file_object.refcount += 1
    return SyscallResult(task.fdtable.install(file_object))


@syscall(SyscallDecl("setns", args=(
    ArgSpec("fd", "fd", resource="fd_ns"),
    ArgSpec("nstype", "int", choices=(0,)),
), weight=0.2))
def sys_setns(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    ns_file = _fd_object(task, args[0])
    if not isinstance(ns_file, NsFile):
        raise SyscallError(EINVAL, "setns needs a namespace fd")
    return SyscallResult(do_setns(kernel, task, ns_file))


@syscall(SyscallDecl("stat", args=(ArgSpec("path", "path", choices=ALL_PATHS),)))
def sys_stat(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    mount, inode, __ = kernel.vfs.lookup(task, str(args[0]))
    return SyscallResult(0, {"stat": kernel.vfs.stat_inode(task, mount, inode)})


@syscall(SyscallDecl("fstat", args=(ArgSpec("fd", "fd", resource="fd_file"),)))
def sys_fstat(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    file_object = _fd_object(task, args[0])
    if not isinstance(file_object, OpenFile):
        raise SyscallError(EBADF)
    stat = kernel.vfs.stat_inode(task, file_object.mount, file_object.inode)
    return SyscallResult(0, {"stat": stat})


@syscall(SyscallDecl("getdents64", args=(ArgSpec("fd", "fd", resource="fd_file"),)))
def sys_getdents64(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    file_object = _fd_object(task, args[0])
    if not isinstance(file_object, OpenFile) or not file_object.inode.is_dir:
        raise SyscallError(ENOTDIR)
    mount = file_object.mount
    relative = file_object.path[len(mount.mountpoint.rstrip("/")):].lstrip("/")
    entries = kernel.vfs.list_dir(mount, relative, task)
    return SyscallResult(len(entries), {"entries": entries})


@syscall(SyscallDecl("mkdir", args=(
    ArgSpec("path", "path", choices=("/tmp/d0", "/tmp/d1", "/tmp/mnt")),
), weight=0.5))
def sys_mkdir(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.vfs.mkdir(task, str(args[0])))


@syscall(SyscallDecl("unlink", args=(
    ArgSpec("path", "path", choices=FILE_PATHS),
), weight=0.3))
def sys_unlink(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.vfs.unlink(task, str(args[0])))


@syscall(SyscallDecl("mount", args=(
    ArgSpec("source", "str", choices=("none",)),
    ArgSpec("target", "path", choices=("/tmp/d0", "/tmp/mnt", "/tmp")),
    ArgSpec("fstype", "str", choices=("tmpfs", "ramfs")),
), weight=0.5))
def sys_mount(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.vfs.mount(task, str(args[0]), str(args[1]), str(args[2])))


@syscall(SyscallDecl("umount2", args=(
    ArgSpec("target", "path", choices=("/tmp", "/tmp/d0", "/tmp/mnt")),
), weight=0.3))
def sys_umount2(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.vfs.umount(task, str(args[0])))


@syscall(SyscallDecl("rename", args=(
    ArgSpec("old", "path", choices=FILE_PATHS),
    ArgSpec("new", "path", choices=("/tmp/renamed", "/tmp/f9")),
), weight=0.3))
def sys_rename(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.vfs.rename(task, str(args[0]), str(args[1])))


@syscall(SyscallDecl("rmdir", args=(
    ArgSpec("path", "path", choices=("/tmp/d0", "/tmp/d1")),
), weight=0.2))
def sys_rmdir(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.vfs.rmdir(task, str(args[0])))


@syscall(SyscallDecl("symlink", args=(
    ArgSpec("target", "path", choices=FILE_PATHS),
    ArgSpec("linkpath", "path", choices=("/tmp/l0", "/tmp/l1")),
), weight=0.2))
def sys_symlink(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.vfs.symlink(task, str(args[0]), str(args[1])))


@syscall(SyscallDecl("readlink", args=(
    ArgSpec("path", "path", choices=("/tmp/l0", "/tmp/l1")),
), weight=0.2))
def sys_readlink(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    target = kernel.vfs.readlink(task, str(args[0]))
    return SyscallResult(len(target), {"target": target})


@syscall(SyscallDecl("statfs", args=(
    ArgSpec("path", "path", choices=DIR_PATHS),
), weight=0.3))
def sys_statfs(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(0, {"statfs": kernel.vfs.statfs(task, str(args[0]))})


# -- io_uring (known bug E) --------------------------------------------------

@syscall(SyscallDecl("io_uring_setup", args=(), ret_resource="fd_io_uring",
                     weight=0.4))
def sys_io_uring_setup(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(task.fdtable.install(kernel.iouring.setup(task)))


@syscall(SyscallDecl("io_uring_read", args=(
    ArgSpec("fd", "fd", resource="fd_io_uring"),
    ArgSpec("path", "path", choices=FILE_PATHS + ("/etc/hostname",)),
    ArgSpec("count", "int", choices=COUNTS),
), weight=0.4))
def sys_io_uring_read(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    if not isinstance(_fd_object(task, args[0]), IoUringFile):
        raise SyscallError(EBADF)
    data = kernel.iouring.read_path(task, str(args[1]), _int(args[2]))
    return SyscallResult(len(data), {"data": data})


@syscall(SyscallDecl("io_uring_getdents", args=(
    ArgSpec("fd", "fd", resource="fd_io_uring"),
    ArgSpec("path", "path", choices=DIR_PATHS),
), weight=0.4))
def sys_io_uring_getdents(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    if not isinstance(_fd_object(task, args[0]), IoUringFile):
        raise SyscallError(EBADF)
    entries = kernel.iouring.list_path(task, str(args[1]))
    return SyscallResult(len(entries), {"entries": entries})


# -- System V IPC ----------------------------------------------------------------

@syscall(SyscallDecl("msgget", args=(
    ArgSpec("key", "int", choices=(IPC_PRIVATE, 0xAA, 0xBB)),
    ArgSpec("flags", "flags", choices=(IPC_CREAT, IPC_CREAT | 0o600, 0)),
), ret_resource="msqid"))
def sys_msgget(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.ipc.msgget(task, _int(args[0]), _int(args[1])))


@syscall(SyscallDecl("msgsnd", args=(
    ArgSpec("msqid", "res", resource="msqid"),
    ArgSpec("mtype", "int", choices=(1, 2)),
    ArgSpec("text", "str", choices=("ping", "pong")),
)))
def sys_msgsnd(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.ipc.msgsnd(task, _int(args[0]), _int(args[1]),
                                           str(args[2])))


@syscall(SyscallDecl("msgrcv", args=(ArgSpec("msqid", "res", resource="msqid"),)))
def sys_msgrcv(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    data = kernel.ipc.msgrcv(task, _int(args[0]))
    return SyscallResult(len(data), {"data": data})


@syscall(SyscallDecl("msgctl", args=(
    ArgSpec("msqid", "res", resource="msqid"),
    ArgSpec("cmd", "int", choices=(IPC_STAT, IPC_RMID)),
)))
def sys_msgctl(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    struct = kernel.ipc.msgctl(task, _int(args[0]), _int(args[1]))
    return SyscallResult(0, {"msqid_ds": struct} if "msg_qnum" in struct else {})


@syscall(SyscallDecl("shmget", args=(
    ArgSpec("key", "int", choices=(IPC_PRIVATE, 0xCC)),
    ArgSpec("size", "int", choices=(4096, 8192)),
    ArgSpec("flags", "flags", choices=(IPC_CREAT, IPC_CREAT | 0o600)),
), ret_resource="shmid", weight=0.5))
def sys_shmget(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.ipc.shmget(task, _int(args[0]), _int(args[1]),
                                           _int(args[2])))


@syscall(SyscallDecl("shmctl", args=(
    ArgSpec("shmid", "res", resource="shmid"),
    ArgSpec("cmd", "int", choices=(IPC_STAT, IPC_RMID)),
), weight=0.5))
def sys_shmctl(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    struct = kernel.ipc.shmctl(task, _int(args[0]), _int(args[1]))
    return SyscallResult(0, {"shmid_ds": struct} if "shm_segsz" in struct else {})


@syscall(SyscallDecl("semget", args=(
    ArgSpec("key", "int", choices=(IPC_PRIVATE, 0xDD)),
    ArgSpec("nsems", "int", choices=(1, 4)),
    ArgSpec("flags", "flags", choices=(IPC_CREAT,)),
), ret_resource="semid", weight=0.4))
def sys_semget(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.ipc.semget(task, _int(args[0]), _int(args[1]),
                                           _int(args[2])))


# -- sockets -------------------------------------------------------------------

@syscall(SyscallDecl("socket", args=(
    ArgSpec("family", "int", choices=(AF_INET, AF_INET6, AF_UNIX, AF_PACKET,
                                      AF_RDS, AF_NETLINK)),
    ArgSpec("type", "int", choices=(SOCK_STREAM, SOCK_DGRAM, SOCK_RAW,
                                    SOCK_SEQPACKET)),
    ArgSpec("proto", "int", choices=(0, IPPROTO_TCP, IPPROTO_UDP, IPPROTO_SCTP,
                                     ETH_P_ALL, ETH_P_IP,
                                     NETLINK_KOBJECT_UEVENT)),  # 0 is also NETLINK_ROUTE
), ret_resource="sock", weight=3.0))
def sys_socket(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = kernel.net.socket_create(task, _int(args[0]), _int(args[1]), _int(args[2]))
    return SyscallResult(task.fdtable.install(sock))


@syscall(SyscallDecl("bind", args=(
    ArgSpec("fd", "fd", resource="sock"),
    ArgSpec("addr", "int", choices=ADDRS),
    ArgSpec("port", "int", choices=PORTS),
)))
def sys_bind(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    return SyscallResult(kernel.net.bind(task, sock, _int(args[1]), _int(args[2])))


@syscall(SyscallDecl("listen", args=(ArgSpec("fd", "fd", resource="sock"),),
                     weight=0.5))
def sys_listen(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    return SyscallResult(kernel.net.listen(task, sock))


@syscall(SyscallDecl("connect", args=(
    ArgSpec("fd", "fd", resource="sock"),
    ArgSpec("addr", "int", choices=ADDRS),
    ArgSpec("port", "int", choices=PORTS),
)))
def sys_connect(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    return SyscallResult(kernel.net.connect(task, sock, _int(args[1]), _int(args[2])))


@syscall(SyscallDecl("sendto", args=(
    ArgSpec("fd", "fd", resource="sock"),
    ArgSpec("size", "int", choices=SIZES),
    ArgSpec("addr", "int", choices=ADDRS),
    ArgSpec("port", "int", choices=PORTS),
), weight=1.5))
def sys_sendto(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    return SyscallResult(kernel.net.sendto(task, sock, _int(args[1]),
                                           _int(args[2]), _int(args[3])))


@syscall(SyscallDecl("recvfrom", args=(
    ArgSpec("fd", "fd", resource="sock"),
    ArgSpec("count", "int", choices=COUNTS),
)))
def sys_recvfrom(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    data = kernel.net.recvfrom(task, sock, _int(args[1]))
    return SyscallResult(len(data), {"data": data})


@syscall(SyscallDecl("setsockopt", args=(
    ArgSpec("fd", "fd", resource="sock"),
    ArgSpec("level", "int", choices=(SOL_SOCKET, SOL_IPV6, SOL_SCTP)),
    ArgSpec("optname", "int", choices=(IPV6_FLOWLABEL_MGR, IPV6_FLOWINFO_SEND,
                                       SCTP_SOCKOPT_CONNECTX)),
    ArgSpec("value", "int", choices=FLOW_LABELS),
    ArgSpec("extra", "int", choices=(FL_SHARE_EXCL, FL_SHARE_ANY, 0)),
)))
def sys_setsockopt(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    return SyscallResult(kernel.net.setsockopt(task, sock, _int(args[1]),
                                               _int(args[2]), _int(args[3]),
                                               _int(args[4])))


@syscall(SyscallDecl("getsockopt", args=(
    ArgSpec("fd", "fd", resource="sock"),
    ArgSpec("level", "int", choices=(SOL_SOCKET, SOL_SCTP)),
    ArgSpec("optname", "int", choices=(SO_COOKIE, SCTP_GET_ASSOC_ID)),
)))
def sys_getsockopt(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    value = kernel.net.getsockopt(task, sock, _int(args[1]), _int(args[2]))
    return SyscallResult(0, {"optval": value})


@syscall(SyscallDecl("accept", args=(ArgSpec("fd", "fd", resource="sock"),),
                     ret_resource="sock", weight=0.4))
def sys_accept(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    child = kernel.net.accept(task, sock)
    return SyscallResult(task.fdtable.install(child))


@syscall(SyscallDecl("getsockname", args=(ArgSpec("fd", "fd", resource="sock"),),
                     weight=0.3))
def sys_getsockname(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    addr, port = kernel.net.getsockname(task, sock)
    return SyscallResult(0, {"addr": addr, "port": port})


# -- POSIX message queues --------------------------------------------------------

@syscall(SyscallDecl("mq_open", args=(
    ArgSpec("name", "str", choices=("/kitq", "/mq0")),
    ArgSpec("flags", "flags", choices=(IPC_CREAT, IPC_CREAT | 0o600, 0)),
), ret_resource="fd_mqueue", weight=0.5))
def sys_mq_open(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    mq = kernel.ipc.mq_open(task, str(args[0]), _int(args[1]))
    return SyscallResult(task.fdtable.install(mq))


@syscall(SyscallDecl("mq_send", args=(
    ArgSpec("fd", "fd", resource="fd_mqueue"),
    ArgSpec("text", "str", choices=("ping", "pong")),
    ArgSpec("priority", "int", choices=(0, 1, 9)),
), weight=0.4))
def sys_mq_send(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    mq = task.fdtable.get_as(_int(args[0]), MqFile)
    return SyscallResult(kernel.ipc.mq_send(task, mq, str(args[1]),
                                            _int(args[2])))


@syscall(SyscallDecl("mq_receive", args=(
    ArgSpec("fd", "fd", resource="fd_mqueue"),
), weight=0.4))
def sys_mq_receive(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    mq = task.fdtable.get_as(_int(args[0]), MqFile)
    text = kernel.ipc.mq_receive(task, mq)
    return SyscallResult(len(text), {"data": text})


@syscall(SyscallDecl("mq_unlink", args=(
    ArgSpec("name", "str", choices=("/kitq", "/mq0")),
), weight=0.2))
def sys_mq_unlink(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.ipc.mq_unlink(task, str(args[0])))


@syscall(SyscallDecl("semop", args=(
    ArgSpec("semid", "res", resource="semid"),
    ArgSpec("sem_num", "int", choices=(0, 1)),
    ArgSpec("delta", "int", choices=(1, -1, 2)),
), weight=0.3))
def sys_semop(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.ipc.semop(task, _int(args[0]), _int(args[1]),
                                          _int(args[2])))


@syscall(SyscallDecl("shmat", args=(
    ArgSpec("shmid", "res", resource="shmid"),
), weight=0.3))
def sys_shmat(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.ipc.shmat(task, _int(args[0])))


@syscall(SyscallDecl("shmdt", args=(
    ArgSpec("shmid", "res", resource="shmid"),
), weight=0.2))
def sys_shmdt(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    return SyscallResult(kernel.ipc.shmdt(task, _int(args[0])))


# -- rtnetlink -------------------------------------------------------------------

@syscall(SyscallDecl("nl_request", args=(
    ArgSpec("fd", "fd", resource="sock_netlink_route"),
    ArgSpec("msg_type", "int", choices=(16, 17, 18)),  # NEW/DEL/GETLINK
    ArgSpec("name", "str", choices=("veth0", "dummy0", "lo", "")),
), weight=0.5))
def sys_nl_request(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    """sendmsg(2) of one rtnetlink request; replies land on the socket."""
    sock = task.fdtable.get_as(_int(args[0]), Socket)
    from ..net.socket import AF_NETLINK, NETLINK_ROUTE

    if sock.family != AF_NETLINK or sock.proto != NETLINK_ROUTE:
        raise SyscallError(EINVAL, "not a route socket")
    queued = kernel.rtnetlink.request(task, sock, _int(args[1]), str(args[2]))
    return SyscallResult(queued)


# -- cgroups -------------------------------------------------------------------

@syscall(SyscallDecl("cgroup_create", args=(
    ArgSpec("path", "str", choices=("/app", "/app/web", "/batch")),
), weight=0.3))
def sys_cgroup_create(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    """mkdir in cgroupfs (namespace-relative path)."""
    return SyscallResult(kernel.cgroup.create(task, str(args[0])))


@syscall(SyscallDecl("cgroup_enter", args=(
    ArgSpec("path", "str", choices=("/app", "/app/web", "/batch", "/")),
), weight=0.3))
def sys_cgroup_enter(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    """write to cgroup.procs (namespace-relative path)."""
    return SyscallResult(kernel.cgroup.enter(task, str(args[0])))


# -- netlink shorthands ---------------------------------------------------------

@syscall(SyscallDecl("ip_link_add", args=(
    ArgSpec("name", "str", choices=("veth0", "dummy0", "br0")),
), weight=0.8))
def sys_ip_link_add(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    """RTM_NEWLINK shorthand: create a virtual net device."""
    ns = task.nsproxy.get(NamespaceType.NET)
    return SyscallResult(kernel.netdev.register_netdev(task, ns, str(args[0])))


@syscall(SyscallDecl("veth_create", args=(
    ArgSpec("name", "str", choices=("veth0", "veth1")),
    ArgSpec("peer_ns_fd", "fd", resource="fd_ns"),
), weight=0.2))
def sys_veth_create(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    """ip link add type veth with the peer end in another namespace."""
    ns_file = _fd_object(task, args[1])
    if not isinstance(ns_file, NsFile):
        raise SyscallError(EINVAL, "peer must be a namespace fd")
    from ..net.netns import NetNamespace as _NetNs

    if not isinstance(ns_file.namespace, _NetNs):
        raise SyscallError(EINVAL, "peer fd must reference a net namespace")
    ns = task.nsproxy.get(NamespaceType.NET)
    return SyscallResult(kernel.netdev.create_veth_pair(
        task, ns, ns_file.namespace, str(args[0])))


@syscall(SyscallDecl("ipvs_add_service", args=(
    ArgSpec("addr", "int", choices=ADDRS),
    ArgSpec("port", "int", choices=(80, 443)),
), weight=0.5))
def sys_ipvs_add_service(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    """setsockopt(IP_VS_SO_SET_ADD) shorthand."""
    ns = task.nsproxy.get(NamespaceType.NET)
    return SyscallResult(kernel.ipvs.add_service(task, ns, _int(args[0]),
                                                 _int(args[1])))


@syscall(SyscallDecl("unix_diag", args=(
    ArgSpec("ino", "int", choices=(10001, 10002, 12345)),
), weight=0.3))
def sys_unix_diag(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    """SOCK_DIAG-by-inode shorthand (known bug G's probe)."""
    struct = kernel.net.unix_diag_by_ino(task, _int(args[0]))
    return SyscallResult(0, {"unix_diag": struct})


@syscall(SyscallDecl("crypto_alloc", args=(
    ArgSpec("alg", "str", choices=("sha256", "aes", "crc32c")),
), weight=0.4))
def sys_crypto_alloc(kernel: Kernel, task: Task, args: List[Any]) -> SyscallResult:
    """AF_ALG bind shorthand: take a reference on a crypto algorithm."""
    return SyscallResult(kernel.crypto.crypto_alloc(task, str(args[0])))
