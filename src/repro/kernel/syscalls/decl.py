"""Syzlang-lite: typed syscall declarations.

KIT builds on Syzkaller's system-call descriptions (syzlang) in two
places: the test-program corpus is generated from them, and the
specification layer (§4.3.1 / §5.3) selects protected syscalls by
*resource identifier* — the type tag of a file descriptor or IPC id.

A declaration lists the argument specs (with value domains the corpus
generator draws from) and the resource kind the call returns, if any.
Argument kinds:

``int``      plain integer drawn from ``choices`` (or small range)
``flags``    integer flag mask drawn from ``choices``
``str``      string drawn from ``choices``
``path``     filesystem path drawn from ``choices``
``fd``       a file descriptor — runtime resource kind comes from the
             fd table; ``resource`` narrows what the generator wires in
``res``      a non-fd kernel resource id (msqid, …) with a static kind
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ArgSpec:
    """One declared syscall argument."""

    name: str
    kind: str  # int | flags | str | path | fd | res
    resource: Optional[str] = None
    choices: Tuple = ()

    def __post_init__(self) -> None:
        valid = {"int", "flags", "str", "path", "fd", "res"}
        if self.kind not in valid:
            raise ValueError(f"bad arg kind {self.kind!r}")
        if self.kind in ("fd", "res") and self.resource is None:
            raise ValueError(f"{self.kind} arg {self.name!r} needs a resource")


@dataclass(frozen=True)
class SyscallDecl:
    """One declared syscall."""

    name: str
    args: Tuple[ArgSpec, ...]
    #: Resource kind produced by a successful call (fd kinds are refined
    #: at runtime from the installed file object).
    ret_resource: Optional[str] = None
    #: Relative probability in the random corpus generator.
    weight: float = 1.0

    @property
    def produces_resource(self) -> bool:
        return self.ret_resource is not None

    def resource_args(self) -> Tuple[ArgSpec, ...]:
        return tuple(a for a in self.args if a.kind in ("fd", "res"))


class DeclRegistry:
    """All declared syscalls, by name."""

    def __init__(self) -> None:
        self._decls: Dict[str, SyscallDecl] = {}

    def add(self, decl: SyscallDecl) -> SyscallDecl:
        if decl.name in self._decls:
            raise ValueError(f"duplicate syscall {decl.name}")
        self._decls[decl.name] = decl
        return decl

    def get(self, name: str) -> SyscallDecl:
        return self._decls[name]

    def __contains__(self, name: str) -> bool:
        return name in self._decls

    def names(self) -> Sequence[str]:
        return sorted(self._decls)

    def all(self) -> Sequence[SyscallDecl]:
        return [self._decls[name] for name in sorted(self._decls)]


DECLS = DeclRegistry()
