"""Render the declared syscall surface as documentation.

The syzlang-lite declarations are the single source of truth for what
the simulated kernel accepts and what the corpus generator can produce;
this module turns them into a markdown reference (``kit-repro syscalls``
or ``docs/SYSCALLS.md``).
"""

from __future__ import annotations

from typing import List

from .decl import DeclRegistry, SyscallDecl
from . import DECLS


def _format_arg(spec) -> str:
    if spec.kind in ("fd", "res"):
        return f"{spec.name}: {spec.kind}<{spec.resource}>"
    if spec.choices:
        shown = ", ".join(_short(choice) for choice in spec.choices[:4])
        suffix = ", …" if len(spec.choices) > 4 else ""
        return f"{spec.name}: {spec.kind}[{shown}{suffix}]"
    return f"{spec.name}: {spec.kind}"


def _short(value) -> str:
    if isinstance(value, int):
        return hex(value)
    text = str(value)
    return text if len(text) <= 24 else text[:21] + "…"


def describe_syscall(decl: SyscallDecl) -> str:
    args = ", ".join(_format_arg(spec) for spec in decl.args)
    ret = f" -> {decl.ret_resource}" if decl.ret_resource else ""
    return f"{decl.name}({args}){ret}"


def surface_markdown(registry: DeclRegistry = DECLS) -> str:
    """The whole declared surface as a markdown document."""
    decls = list(registry.all())
    producers = [d for d in decls if d.ret_resource is not None]
    lines: List[str] = [
        "# Simulated kernel syscall surface",
        "",
        f"{len(decls)} declared syscalls; {len(producers)} produce a "
        "resource.  Generated from the syzlang-lite registry "
        "(`repro.kernel.syscalls.decl`) — regenerate with "
        "`kit-repro syscalls`.",
        "",
        "| syscall | signature | weight |",
        "|---------|-----------|--------|",
    ]
    for decl in decls:
        lines.append(f"| `{decl.name}` | `{describe_syscall(decl)}` "
                     f"| {decl.weight} |")
    lines += [
        "",
        "## Resource kinds",
        "",
    ]
    kinds = sorted({d.ret_resource for d in producers} |
                   {a.resource for d in decls for a in d.resource_args()})
    for kind in kinds:
        produced_by = [d.name for d in producers
                       if d.ret_resource == kind]
        consumed_by = [d.name for d in decls
                       if any(a.resource == kind for a in d.resource_args())]
        lines.append(f"- `{kind}`: produced by "
                     f"{', '.join(f'`{n}`' for n in produced_by) or '—'}; "
                     f"consumed by "
                     f"{', '.join(f'`{n}`' for n in consumed_by) or '—'}")
    return "\n".join(lines) + "\n"
