"""The simulated kernel: boot, namespaces, subsystems, syscall entry.

A :class:`Kernel` is a self-contained, picklable state machine.  Test
infrastructure interacts with it in exactly two ways — the same two ways
KIT interacts with a real kernel:

* invoking syscalls on behalf of a task (:meth:`Kernel.syscall`) and
  observing their decoded results, and
* tracing kernel memory accesses during those syscalls (attach a
  :class:`~repro.kernel.ktrace.KernelTracer`).

Snapshot/restore (the QEMU-snapshot stand-in) is plain pickling; the
tracer is excluded from snapshots by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .bugs import BugFlags, fixed_kernel
from .cgroup import CgroupSubsystem
from .clock import VirtualClock
from .crypto import CryptoSubsystem
from .errno import EINVAL, SyscallError
from .iouring import IoUringSubsystem
from .ipc import IpcNamespace, IpcSubsystem
from .ktrace import KernelTracer, preemption_suspended
from .memory import KernelArena
from .namespaces import (
    CgroupNamespace,
    Namespace,
    NamespaceRegistry,
    NamespaceType,
    NsProxy,
    TimeNamespace,
    UserNamespace,
    flags_to_types,
)
from .net.conntrack import ConntrackSubsystem
from .net.flowlabel import FlowLabelSubsystem
from .net.ipvs import IpvsSubsystem
from .net.netdev import NetDevSubsystem
from .net.netns import NetNamespace
from .net.packet import PtypeSubsystem
from .net.rds import RdsSubsystem
from .net.rtnetlink import RtnetlinkSubsystem
from .net.sctp import SctpSubsystem
from .net.socket import NetSubsystem
from .procfs import ProcFs
from .task import PidNamespace, Scheduler, Task, TaskTable
from .uts import UtsNamespace
from .vfs import MntNamespace, Vfs


@dataclass
class KernelConfig:
    """Build-time kernel configuration.

    ``jump_label`` models ``CONFIG_JUMP_LABEL``: when enabled, static-key
    state (the flow label exclusive mode) is patched code rather than
    memory, and is therefore invisible to the profiling instrumentation
    (paper §6.1).  KIT's documented methodology compiles with it off.
    """

    version: str = "5.13"
    jump_label: bool = False


class Kernel:
    """One booted kernel instance."""

    def __init__(self, config: Optional[KernelConfig] = None,
                 bugs: Optional[BugFlags] = None):
        self.config = config or KernelConfig()
        self.bugs = bugs if bugs is not None else fixed_kernel()
        self.arena = KernelArena()
        self.tracer: Optional[KernelTracer] = None
        #: Objects mutated through untraced paths since the last segmented
        #: restore (see :mod:`repro.vm.segments`): the caller task of every
        #: syscall, plus structures marked via :meth:`mark_dirty_object`.
        #: Runtime bookkeeping, never snapshot state.
        self._dirty_roots: set = set()
        self.clock = VirtualClock()
        self.namespaces = NamespaceRegistry()
        self.tasks = TaskTable(self.arena)
        #: Syscalls served since boot (feeds the timer-tick jitter).
        self.syscall_seq = 0

        # Subsystems (order matters only for boot wiring below).
        self.vfs = Vfs(self)
        self.procfs = ProcFs(self)
        self.cgroup = CgroupSubsystem(self)
        self.sched = Scheduler(self)
        self.ipc = IpcSubsystem(self)
        self.crypto = CryptoSubsystem(self)
        self.iouring = IoUringSubsystem(self)
        self.net = NetSubsystem(self)
        self.ptype = PtypeSubsystem(self)
        self.flowlabel = FlowLabelSubsystem(self)
        self.rds = RdsSubsystem(self)
        self.sctp = SctpSubsystem(self)
        self.netdev = NetDevSubsystem(self)
        self.rtnetlink = RtnetlinkSubsystem(self)
        self.conntrack = ConntrackSubsystem(self)
        self.ipvs = IpvsSubsystem(self)

        self._boot()

    # -- snapshot support ---------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["tracer"] = None
        state["_dirty_roots"] = set()
        return state

    def attach_tracer(self, tracer: Optional[KernelTracer]) -> None:
        """Install (or remove, with None) the instrumentation sink."""
        self.tracer = tracer
        self.arena.tracer = tracer

    def mark_dirty_object(self, obj: Any) -> None:
        """Record an untraced structural mutation of *obj* for the
        segmented snapshot engine.  Required wherever kernel code mutates
        plain Python containers on objects that predate the snapshot
        (mount tables, the namespace registry, the task table); traced
        :mod:`~repro.kernel.memory` writes are caught by the arena's
        write barrier and need no mark.
        """
        self._dirty_roots.add(obj)

    # -- boot -----------------------------------------------------------------

    def _boot(self) -> None:
        registry = self.namespaces

        pid_ns = PidNamespace(self.arena, registry.initial_inum(NamespaceType.PID))
        mnt_ns = self._boot_mounts(registry.initial_inum(NamespaceType.MNT))
        uts_ns = UtsNamespace(self.arena, registry.initial_inum(NamespaceType.UTS))
        ipc_ns = IpcNamespace(self.arena, registry.initial_inum(NamespaceType.IPC))
        net_ns = NetNamespace(self.arena, registry.initial_inum(NamespaceType.NET))
        user_ns = UserNamespace(self.arena, registry.initial_inum(NamespaceType.USER))
        cgroup_ns = CgroupNamespace(self.arena, registry.initial_inum(NamespaceType.CGROUP))
        time_ns = TimeNamespace(self.arena, registry.initial_inum(NamespaceType.TIME))
        self.netdev.create_loopback(net_ns)

        namespaces = {
            NamespaceType.PID: pid_ns,
            NamespaceType.MNT: mnt_ns,
            NamespaceType.UTS: uts_ns,
            NamespaceType.IPC: ipc_ns,
            NamespaceType.NET: net_ns,
            NamespaceType.USER: user_ns,
            NamespaceType.CGROUP: cgroup_ns,
            NamespaceType.TIME: time_ns,
        }
        for namespace in namespaces.values():
            registry.register(namespace)
        self.init_nsproxy = NsProxy(namespaces)
        self.init_mnt_ns = mnt_ns
        self.init_net = net_ns

        self.init_task = Task(self.arena, self.init_nsproxy, uid=0, comm="init")
        self.tasks.attach(self.init_task)

    def _boot_mounts(self, inum: int) -> MntNamespace:
        mnt_ns = MntNamespace(self.arena, inum)
        self.vfs.install_standard_tree(mnt_ns)
        return mnt_ns

    # -- tasks and namespaces ----------------------------------------------

    def spawn_task(self, nsproxy: Optional[NsProxy] = None, uid: int = 0,
                   comm: str = "executor") -> Task:
        task = Task(self.arena, nsproxy or self.init_nsproxy, uid=uid, comm=comm)
        self.tasks.attach(task)
        self.mark_dirty_object(self.tasks)
        return task

    def unshare(self, task: Task, flags: int) -> int:
        """``unshare(2)``: create-and-join fresh namespace instances.

        Simplification vs. Linux: a new PID namespace applies to the
        calling task immediately (Linux defers to the next child); the
        task keeps its memberships in the ancestor namespaces, which is
        what matters for cross-namespace visibility semantics.
        """
        types = flags_to_types(flags)
        if not types:
            raise SyscallError(EINVAL, f"no namespace flags in {flags:#x}")
        replacements: Dict[NamespaceType, Namespace] = {}
        for ns_type in types:
            replacements[ns_type] = self._new_namespace(task, ns_type)
        task.nsproxy = task.nsproxy.copy_with(replacements)
        self.mark_dirty_object(task)
        if NamespaceType.PID in replacements:
            new_pid_ns = replacements[NamespaceType.PID]
            assert isinstance(new_pid_ns, PidNamespace)
            vpid = new_pid_ns.alloc_pid()
            task.pid_numbers[new_pid_ns] = vpid
            new_pid_ns.tasks.insert(vpid, task)
        return 0

    def _new_namespace(self, task: Task, ns_type: NamespaceType) -> Namespace:
        inum = self.namespaces.next_inum()
        current = task.nsproxy.get(ns_type)
        if ns_type == NamespaceType.PID:
            assert isinstance(current, PidNamespace)
            namespace: Namespace = PidNamespace(self.arena, inum, parent=current)
        elif ns_type == NamespaceType.MNT:
            assert isinstance(current, MntNamespace)
            namespace = self.vfs.copy_mnt_ns(current, inum)
        elif ns_type == NamespaceType.UTS:
            assert isinstance(current, UtsNamespace)
            namespace = UtsNamespace(self.arena, inum, hostname=current.peek("hostname"))
        elif ns_type == NamespaceType.IPC:
            namespace = IpcNamespace(self.arena, inum)
        elif ns_type == NamespaceType.NET:
            namespace = NetNamespace(self.arena, inum)
            self.netdev.create_loopback(namespace)
        elif ns_type == NamespaceType.USER:
            namespace = UserNamespace(self.arena, inum)
        elif ns_type == NamespaceType.CGROUP:
            namespace = CgroupNamespace(self.arena, inum)
            self.cgroup.on_unshare(task, namespace)
        else:
            namespace = TimeNamespace(self.arena, inum)
        self.namespaces.register(namespace)
        self.mark_dirty_object(self.namespaces)
        return namespace

    # -- time ---------------------------------------------------------------

    def timer_tick(self, count: Optional[int] = None) -> None:
        """Advance virtual time; runs interrupt-context background work.

        When *count* is omitted, the number of ticks carries a small
        deterministic jitter derived from the boot time and the number
        of syscalls served so far.  This models the scheduling/interrupt
        noise of a real testbed: a preceding sender execution shifts the
        receiver's timing phase (so time-coupled syscall results diverge
        between the two test-case executions), and re-runs with rebased
        clocks perturb the same results (so the §4.3.2 non-determinism
        filter learns to ignore them).  Everything stays a pure function
        of (snapshot, boot offset), preserving replayability.
        """
        if count is None:
            boot_sec = self.clock.boot_offset_ns // 1_000_000_000
            count = 1 + (boot_sec * 31 + self.syscall_seq * 17) % 3
        # Interrupt context: neither traced (in_task check) nor a source
        # of controlled-scheduling preemption points.
        with preemption_suspended():
            if self.tracer is not None:
                with self.tracer.interrupt_context():
                    self._tick_work(count)
            else:
                self._tick_work(count)

    def _tick_work(self, count: int) -> None:
        self.clock.tick(count)
        self.conntrack.background_churn()

    # -- syscall entry --------------------------------------------------------

    def syscall(self, task: Task, name: str, args: List[Any]) -> "SyscallResult":
        """Dispatch one syscall for *task*; see :mod:`repro.kernel.syscalls`."""
        from .syscalls import dispatch

        self.syscall_seq += 1
        # Blanket mark: syscalls freely mutate their caller's untraced
        # task state (fd table, nsproxy, cgroup path), so the caller is
        # always restored.  Traced kernel memory is covered by the
        # arena's write barrier instead.
        self._dirty_roots.add(task)
        return dispatch(self, task, name, args)


class SyscallResult:
    """What a syscall handler hands back to the executor.

    ``retval`` is the integer return value; ``details`` carries decoded
    out-parameters (read data, stat structs, …) that the trace decoder
    turns into AST subtrees — the strace-library equivalent (§5.2).
    """

    __slots__ = ("retval", "details")

    def __init__(self, retval: int, details: Optional[Dict[str, Any]] = None):
        self.retval = retval
        self.details = details or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyscallResult({self.retval}, {self.details})"
