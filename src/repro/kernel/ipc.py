"""System V IPC: message queues, shared memory, semaphores.

All three object families are keyed per IPC namespace, as in Linux.
The historical §2.1 bug is modelled here: ``msgctl(IPC_STAT)`` reports
the PID of the last sender (``msg_lspid``).  On the buggy kernel
(Linux < 4.17 area) the *global* PID number is returned even to readers
in a different PID namespace; the fixed kernel translates the PID into
the reader's PID namespace and reports 0 when the task is not visible
there.

Per paper §5.2, container setup applies a per-namespace message quota
(``ulimit``-style) so that cross-namespace *resource contention* — which
is documented, not a new bug — cannot produce false-positive reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from .errno import EEXIST, EINVAL, ENOMSG, ENOSPC, SyscallError
from .fdtable import FileObject
from .ktrace import kfunc
from .memory import KDict, KernelArena, KStruct
from .namespaces import Namespace, NamespaceType
from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: ``msgctl``/``shmctl``/``semctl`` command numbers.
IPC_RMID = 0
IPC_SET = 1
IPC_STAT = 2

#: ``*get`` flag bits.
IPC_CREAT = 0o1000
IPC_EXCL = 0o2000

IPC_PRIVATE = 0

#: Per-namespace quota applied by container setup (§5.2).
DEFAULT_MSG_QUOTA = 16


class IpcNamespace(Namespace):
    """An IPC namespace: independent SysV object tables + POSIX mqueues."""

    NS_TYPE = NamespaceType.IPC
    FIELDS = {"inum": 8, "msg_next_id": 4, "shm_next_id": 4, "sem_next_id": 4}

    def __init__(self, arena: KernelArena, inum: int, msg_quota: int = DEFAULT_MSG_QUOTA):
        super().__init__(arena, inum)
        self.msg_queues = KDict(arena)  # id -> MsgQueue
        self.msg_keys = KDict(arena)  # key -> id
        self.shm_segments = KDict(arena)  # id -> ShmSegment
        self.shm_keys = KDict(arena)
        self.sem_sets = KDict(arena)  # id -> SemSet
        self.sem_keys = KDict(arena)
        #: in-flight msgget registrations (race bug T2's fixed twin).
        self.msg_pending = KDict(arena)
        self.msg_quota = msg_quota
        #: POSIX message queues: name -> PosixMqueue (Table 1 places
        #: these under the IPC namespace as well).
        self.posix_mqueues = KDict(arena)

    def next_id(self, family: str) -> int:
        field = f"{family}_next_id"
        ipc_id = self.peek(field) + 1
        self.poke(field, ipc_id)
        # Linux multiplies by a seq stride; a small stride keeps traces tidy.
        return ipc_id * 32768 // 32768


class MsgQueue(KStruct):
    """A System V message queue."""

    FIELDS = {"key": 4, "qnum": 8, "lspid": 4, "lrpid": 4, "ctime": 8}

    def __init__(self, arena: KernelArena, key: int, ctime: int):
        super().__init__(arena, key=key, ctime=ctime)
        self.messages: List[tuple] = []  # (mtype, text)


class ShmSegment(KStruct):
    """A System V shared memory segment."""

    FIELDS = {"key": 4, "size": 8, "cpid": 4, "nattch": 4}

    def __init__(self, arena: KernelArena, key: int, size: int, cpid: int):
        super().__init__(arena, key=key, size=size, cpid=cpid)


class SemSet(KStruct):
    """A System V semaphore set."""

    FIELDS = {"key": 4, "nsems": 4}

    def __init__(self, arena: KernelArena, key: int, nsems: int):
        super().__init__(arena, key=key, nsems=nsems)
        self.values = [0] * nsems


class PosixMqueue(KStruct):
    """A POSIX message queue (``mq_overview(7)``)."""

    FIELDS = {"curmsgs": 4, "maxmsg": 4}

    def __init__(self, arena: KernelArena, name: str, maxmsg: int = 10):
        super().__init__(arena, maxmsg=maxmsg)
        self.name = name
        self.messages: List[tuple] = []  # (priority, text), max-prio first


class MqFile(FileObject):
    """An open POSIX message queue descriptor."""

    resource_kind = "fd_mqueue"

    def __init__(self, queue: PosixMqueue):
        super().__init__()
        self.queue = queue

    def describe(self) -> str:
        return f"mqueue:{self.queue.name}"


class IpcSubsystem:
    """Syscall-facing System V IPC implementation."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        #: key -> in-flight msgget registration.  Global on the buggy
        #: kernel (race bug T2): while a registration is in flight,
        #: /proc/sysvipc/msg lists the half-initialized entry to readers
        #: in *every* IPC namespace.
        self.msg_pending_global = KDict(kernel.arena)

    @property
    def tracer(self):
        return self._kernel.tracer

    @staticmethod
    def _ns_of(task: Task) -> IpcNamespace:
        ns = task.nsproxy.get(NamespaceType.IPC)
        assert isinstance(ns, IpcNamespace)
        return ns

    # -- message queues ---------------------------------------------------

    @kfunc
    def msgget(self, task: Task, key: int, flags: int) -> int:
        ns = self._ns_of(task)
        if key != IPC_PRIVATE:
            existing = ns.msg_keys.lookup(key)
            if existing is not None:
                if flags & IPC_CREAT and flags & IPC_EXCL:
                    raise SyscallError(EEXIST)
                return existing
            if not flags & IPC_CREAT:
                raise SyscallError(ENOMSG)
        if len(ns.msg_queues) >= ns.msg_quota:
            raise SyscallError(ENOSPC, "per-namespace msg quota")
        # ipc_addid-style early publish: the entry is visible in the
        # pending table until registration commits below.  The window
        # opens and closes within this one syscall — race bug T2.
        self._publish_msg_pending(ns, key)
        try:
            queue = MsgQueue(self._kernel.arena, key, self._kernel.clock.now_sec())
            msqid = ns.next_id("msg")
            ns.msg_queues.insert(msqid, queue)
            if key != IPC_PRIVATE:
                ns.msg_keys.insert(key, msqid)
        finally:
            self._commit_msg_pending(ns, key)
        return msqid

    @kfunc
    def _publish_msg_pending(self, ns: IpcNamespace, key: int) -> None:
        """``ipc_addid`` early publish — global on the buggy kernel (T2)."""
        if self._kernel.bugs.msg_pending_global:
            self.msg_pending_global.insert(key, key)
        else:
            ns.msg_pending.insert(key, key)

    @kfunc
    def _commit_msg_pending(self, ns: IpcNamespace, key: int) -> None:
        """The commit half of the T2 window."""
        if self._kernel.bugs.msg_pending_global:
            if self.msg_pending_global.lookup(key) is not None:
                self.msg_pending_global.delete(key)
        else:
            if ns.msg_pending.lookup(key) is not None:
                ns.msg_pending.delete(key)

    def _queue(self, ns: IpcNamespace, msqid: int) -> MsgQueue:
        queue = ns.msg_queues.lookup(msqid)
        if queue is None:
            raise SyscallError(EINVAL, f"no msg queue {msqid}")
        return queue

    @kfunc
    def msgsnd(self, task: Task, msqid: int, mtype: int, text: str) -> int:
        ns = self._ns_of(task)
        queue = self._queue(ns, msqid)
        queue.messages.append((mtype, text))
        queue.kset("qnum", queue.peek("qnum") + 1)
        queue.kset("lspid", self._global_pid(task))
        return 0

    @kfunc
    def msgrcv(self, task: Task, msqid: int) -> str:
        ns = self._ns_of(task)
        queue = self._queue(ns, msqid)
        if not queue.messages:
            raise SyscallError(ENOMSG)
        __, text = queue.messages.pop(0)
        queue.kset("qnum", queue.peek("qnum") - 1)
        queue.kset("lrpid", self._global_pid(task))
        return text

    def _global_pid(self, task: Task) -> int:
        """The kernel-internal PID (init-namespace number, struct pid)."""
        root_ns = self._kernel.init_task.pid_ns
        vpid = task.vpid_in(root_ns)
        return vpid if vpid is not None else task.pid

    @kfunc
    def msgctl(self, task: Task, msqid: int, cmd: int) -> Dict[str, int]:
        """``msgctl(2)``: IPC_STAT returns the queue status struct.

        The ``msg_lspid`` field is where the §2.1 historical bug lives:
        buggy kernels report the raw global PID; fixed kernels translate
        into the caller's PID namespace (0 when not visible).
        """
        ns = self._ns_of(task)
        queue = self._queue(ns, msqid)
        if cmd == IPC_RMID:
            ns.msg_queues.delete(msqid)
            key = queue.peek("key")
            if key != IPC_PRIVATE and key in ns.msg_keys.peek_items():
                ns.msg_keys.delete(key)
            return {"ret": 0}
        if cmd != IPC_STAT:
            raise SyscallError(EINVAL)
        lspid = queue.kget("lspid")
        lrpid = queue.kget("lrpid")
        if not self._kernel.bugs.msg_stat_global_pid:
            lspid = self._translate_pid(task, lspid)
            lrpid = self._translate_pid(task, lrpid)
        return {
            "msg_qnum": queue.kget("qnum"),
            "msg_lspid": lspid,
            "msg_lrpid": lrpid,
            "msg_ctime": queue.kget("ctime"),
        }

    def _translate_pid(self, reader: Task, raw_pid: int) -> int:
        """Map a global PID into *reader*'s PID namespace (fixed behaviour)."""
        if raw_pid == 0:
            return 0
        for candidate in self._kernel.tasks.all_tasks():
            if candidate.pid == raw_pid or raw_pid in candidate.pid_numbers.values():
                vpid = candidate.vpid_in(reader.pid_ns)
                return vpid if vpid is not None else 0
        return 0

    # -- POSIX message queues ----------------------------------------------

    @kfunc
    def mq_open(self, task: Task, name: str, flags: int) -> MqFile:
        """``mq_open(3)``; names live in the caller's IPC namespace."""
        if not name.startswith("/") or len(name) < 2:
            raise SyscallError(EINVAL, f"bad mq name {name!r}")
        ns = self._ns_of(task)
        queue = ns.posix_mqueues.lookup(name)
        if queue is None:
            if not flags & IPC_CREAT:
                raise SyscallError(ENOMSG, name)
            if len(ns.posix_mqueues) >= ns.msg_quota:
                raise SyscallError(ENOSPC, "per-namespace mq quota")
            queue = PosixMqueue(self._kernel.arena, name)
            ns.posix_mqueues.insert(name, queue)
        elif flags & IPC_CREAT and flags & IPC_EXCL:
            raise SyscallError(EEXIST, name)
        return MqFile(queue)

    @kfunc
    def mq_send(self, task: Task, mq: MqFile, text: str, priority: int) -> int:
        queue = mq.queue
        if queue.peek("curmsgs") >= queue.kget("maxmsg"):
            raise SyscallError(ENOSPC, "queue full")
        queue.messages.append((priority, text))
        queue.messages.sort(key=lambda item: -item[0])
        queue.kset("curmsgs", queue.peek("curmsgs") + 1)
        return 0

    @kfunc
    def mq_receive(self, task: Task, mq: MqFile) -> str:
        queue = mq.queue
        if not queue.messages:
            raise SyscallError(ENOMSG)
        __, text = queue.messages.pop(0)
        queue.kset("curmsgs", queue.peek("curmsgs") - 1)
        return text

    @kfunc
    def mq_unlink(self, task: Task, name: str) -> int:
        ns = self._ns_of(task)
        if ns.posix_mqueues.lookup(name) is None:
            raise SyscallError(ENOMSG, name)
        ns.posix_mqueues.delete(name)
        return 0

    # -- shared memory ----------------------------------------------------

    @kfunc
    def shmget(self, task: Task, key: int, size: int, flags: int) -> int:
        ns = self._ns_of(task)
        if size <= 0:
            raise SyscallError(EINVAL)
        if key != IPC_PRIVATE:
            existing = ns.shm_keys.lookup(key)
            if existing is not None:
                if flags & IPC_CREAT and flags & IPC_EXCL:
                    raise SyscallError(EEXIST)
                return existing
            if not flags & IPC_CREAT:
                raise SyscallError(ENOMSG)
        segment = ShmSegment(self._kernel.arena, key, size, task.pid)
        shmid = ns.next_id("shm")
        ns.shm_segments.insert(shmid, segment)
        if key != IPC_PRIVATE:
            ns.shm_keys.insert(key, shmid)
        return shmid

    @kfunc
    def shmctl(self, task: Task, shmid: int, cmd: int) -> Dict[str, int]:
        ns = self._ns_of(task)
        segment = ns.shm_segments.lookup(shmid)
        if segment is None:
            raise SyscallError(EINVAL)
        if cmd == IPC_RMID:
            ns.shm_segments.delete(shmid)
            return {"ret": 0}
        if cmd != IPC_STAT:
            raise SyscallError(EINVAL)
        return {
            "shm_segsz": segment.kget("size"),
            "shm_cpid": segment.kget("cpid"),
            "shm_nattch": segment.kget("nattch"),
        }

    @kfunc
    def shmat(self, task: Task, shmid: int) -> int:
        """``shmat(2)`` (attachment bookkeeping only — no address space)."""
        ns = self._ns_of(task)
        segment = ns.shm_segments.lookup(shmid)
        if segment is None:
            raise SyscallError(EINVAL)
        segment.kset("nattch", segment.peek("nattch") + 1)
        return 0

    @kfunc
    def shmdt(self, task: Task, shmid: int) -> int:
        ns = self._ns_of(task)
        segment = ns.shm_segments.lookup(shmid)
        if segment is None:
            raise SyscallError(EINVAL)
        if segment.peek("nattch") <= 0:
            raise SyscallError(EINVAL, "not attached")
        segment.kset("nattch", segment.peek("nattch") - 1)
        return 0

    # -- semaphores ---------------------------------------------------------

    @kfunc
    def semget(self, task: Task, key: int, nsems: int, flags: int) -> int:
        ns = self._ns_of(task)
        if nsems <= 0 or nsems > 250:
            raise SyscallError(EINVAL)
        if key != IPC_PRIVATE:
            existing = ns.sem_keys.lookup(key)
            if existing is not None:
                if flags & IPC_CREAT and flags & IPC_EXCL:
                    raise SyscallError(EEXIST)
                return existing
            if not flags & IPC_CREAT:
                raise SyscallError(ENOMSG)
        sem_set = SemSet(self._kernel.arena, key, nsems)
        semid = ns.next_id("sem")
        ns.sem_sets.insert(semid, sem_set)
        if key != IPC_PRIVATE:
            ns.sem_keys.insert(key, semid)
        return semid

    @kfunc
    def semop(self, task: Task, semid: int, sem_num: int, delta: int) -> int:
        """``semop(2)`` with one sembuf; would-block becomes EAGAIN
        (IPC_NOWAIT semantics — the executor never blocks)."""
        from .errno import EAGAIN, ERANGE

        ns = self._ns_of(task)
        sem_set = ns.sem_sets.lookup(semid)
        if sem_set is None:
            raise SyscallError(EINVAL)
        if not 0 <= sem_num < sem_set.peek("nsems"):
            raise SyscallError(ERANGE, f"semnum {sem_num}")
        value = sem_set.values[sem_num] + delta
        if value < 0:
            raise SyscallError(EAGAIN, "would block")
        sem_set.values[sem_num] = value
        # Traced write: semaphore values are shared IPC-ns state.
        sem_set.kset("nsems", sem_set.peek("nsems"))
        return 0
