"""nsfs: namespace file descriptors and ``setns(2)``.

``/proc/self/ns/<type>`` exposes a task's namespace instances as file
descriptors; holding such an fd keeps the instance alive and ``setns``
re-joins it later.  The canonical use inside one test program is
save-unshare-restore::

    r0 = open("/proc/self/ns/net", 0)   # capture the current instance
    unshare(CLONE_NEWNET)               # move to a fresh one
    setns(r0, 0)                        # and back

Restrictions follow Linux: re-joining a PID namespace for the *calling*
task is not allowed (PID namespace membership is decided at fork), and a
mount-namespace switch is refused while the task holds directory state
we do not model — kept simple here as: PID -> EINVAL, everything else
allowed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errno import EINVAL, SyscallError
from .fdtable import FileObject
from .namespaces import Namespace, NamespaceType

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .task import Task

#: ``/proc/self/ns`` entry name per namespace type, as Linux names them.
NS_FILE_NAMES = {
    "pid": NamespaceType.PID,
    "mnt": NamespaceType.MNT,
    "uts": NamespaceType.UTS,
    "ipc": NamespaceType.IPC,
    "net": NamespaceType.NET,
    "user": NamespaceType.USER,
    "cgroup": NamespaceType.CGROUP,
    "time": NamespaceType.TIME,
}


class NsFile(FileObject):
    """An open namespace reference (``/proc/<pid>/ns/<type>``)."""

    resource_kind = "fd_ns"

    def __init__(self, namespace: Namespace):
        super().__init__()
        self.namespace = namespace

    def describe(self) -> str:
        name = self.namespace.NS_TYPE.name.lower()
        return f"{name}:[{self.namespace.inum}]"


def ns_path_type(path: str) -> NamespaceType:
    """Map a ``/proc/self/ns/<name>`` path to its namespace type."""
    name = path.rsplit("/", 1)[-1]
    ns_type = NS_FILE_NAMES.get(name)
    if ns_type is None:
        raise SyscallError(EINVAL, f"unknown namespace file {name!r}")
    return ns_type


def open_ns_file(task: "Task", path: str) -> NsFile:
    """Capture the opener's current instance of the named type."""
    return NsFile(task.nsproxy.get(ns_path_type(path)))


def setns(kernel: "Kernel", task: "Task", ns_file: NsFile) -> int:
    """``setns(2)``: re-associate *task* with the referenced instance."""
    namespace = ns_file.namespace
    if namespace.NS_TYPE == NamespaceType.PID:
        # Linux: setns(CLONE_NEWPID) only affects children; for the
        # calling task it is an error, and this model has no children.
        raise SyscallError(EINVAL, "cannot setns the caller's pid ns")
    task.nsproxy = task.nsproxy.copy_with({namespace.NS_TYPE: namespace})
    return 0
