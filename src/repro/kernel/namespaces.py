"""Linux namespace model (paper Table 1).

Eight namespace types, each protecting one class of kernel resource:

=========  =========================================
Type       Kernel resource isolated
=========  =========================================
PID        Process ID
Mount      Mount point
UTS        Hostname
IPC        System V IPC; POSIX message queue
Net        Network stack
User       UID; GID; capabilities
Cgroup     Cgroups root directory
Time       System time
=========  =========================================

A process is always associated with exactly one instance of each type,
collected in its :class:`NsProxy`.  ``unshare`` creates-and-joins fresh
instances for the requested types; ``setns`` switches to an existing
instance.  Subsystem state that Linux keeps per-namespace hangs off the
concrete ``Namespace`` subclasses defined by each subsystem module.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Iterable, List

from .memory import KernelArena, KStruct

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class NamespaceType(enum.IntEnum):
    """The eight Linux namespace types."""

    PID = 0
    MNT = 1
    UTS = 2
    IPC = 3
    NET = 4
    USER = 5
    CGROUP = 6
    TIME = 7


#: ``unshare(2)`` / ``clone(2)`` flag values, matching ``sched.h``.
CLONE_NEWNS = 0x00020000
CLONE_NEWCGROUP = 0x02000000
CLONE_NEWUTS = 0x04000000
CLONE_NEWIPC = 0x08000000
CLONE_NEWUSER = 0x10000000
CLONE_NEWPID = 0x20000000
CLONE_NEWNET = 0x40000000
CLONE_NEWTIME = 0x00000080

CLONE_FLAGS: Dict[NamespaceType, int] = {
    NamespaceType.MNT: CLONE_NEWNS,
    NamespaceType.CGROUP: CLONE_NEWCGROUP,
    NamespaceType.UTS: CLONE_NEWUTS,
    NamespaceType.IPC: CLONE_NEWIPC,
    NamespaceType.USER: CLONE_NEWUSER,
    NamespaceType.PID: CLONE_NEWPID,
    NamespaceType.NET: CLONE_NEWNET,
    NamespaceType.TIME: CLONE_NEWTIME,
}

ALL_NAMESPACE_FLAGS = 0
for _flag in CLONE_FLAGS.values():
    ALL_NAMESPACE_FLAGS |= _flag

#: Resource isolated by each namespace type (Table 1 of the paper).
ISOLATED_RESOURCE: Dict[NamespaceType, str] = {
    NamespaceType.PID: "Process ID",
    NamespaceType.MNT: "Mount point",
    NamespaceType.UTS: "Hostname",
    NamespaceType.IPC: "System V IPC; POSIX message queue",
    NamespaceType.NET: "Network stack",
    NamespaceType.USER: "UID; GID; capabilities",
    NamespaceType.CGROUP: "Cgroups root directory",
    NamespaceType.TIME: "System time",
}


def flags_to_types(flags: int) -> List[NamespaceType]:
    """Decode a CLONE_NEW* bitmask into namespace types."""
    return [ns_type for ns_type, flag in CLONE_FLAGS.items() if flags & flag]


class Namespace(KStruct):
    """Base class for a namespace instance.

    Every instance gets a unique inode number (``inum``), like the
    ``/proc/<pid>/ns/*`` inodes user space compares to tell instances
    apart.  Subsystem state lives on concrete subclasses.
    """

    FIELDS = {"inum": 8}
    NS_TYPE: NamespaceType

    def __init__(self, arena: KernelArena, inum: int):
        super().__init__(arena, inum=inum)

    @property
    def inum(self) -> int:
        """Untraced identity accessor (used for bookkeeping, not dataflow)."""
        return self.peek("inum")

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)


class UserNamespace(Namespace):
    """User namespace: UID/GID mappings and capability domain."""

    NS_TYPE = NamespaceType.USER
    FIELDS = {"inum": 8, "owner_uid": 4, "level": 4}


class CgroupNamespace(Namespace):
    """Cgroup namespace: virtualized cgroup root directory."""

    NS_TYPE = NamespaceType.CGROUP
    FIELDS = {"inum": 8, "root_path": 8}


class TimeNamespace(Namespace):
    """Time namespace: per-namespace boottime/monotonic clock offsets."""

    NS_TYPE = NamespaceType.TIME
    FIELDS = {"inum": 8, "monotonic_offset": 8, "boottime_offset": 8}


class NsProxy:
    """The set of namespace instances a task is associated with.

    Mirrors ``struct nsproxy``: one instance per type, copy-on-unshare.
    """

    __slots__ = ("namespaces",)

    def __init__(self, namespaces: Dict[NamespaceType, Namespace]):
        missing = set(NamespaceType) - set(namespaces)
        if missing:
            raise ValueError(f"nsproxy missing namespace types: {sorted(missing)}")
        self.namespaces = dict(namespaces)

    def get(self, ns_type: NamespaceType) -> Namespace:
        return self.namespaces[ns_type]

    def copy_with(self, replacements: Dict[NamespaceType, Namespace]) -> "NsProxy":
        updated = dict(self.namespaces)
        updated.update(replacements)
        return NsProxy(updated)

    def shares_with(self, other: "NsProxy", ns_type: NamespaceType) -> bool:
        """True if both proxies use the same instance of *ns_type*."""
        return self.namespaces[ns_type] is other.namespaces[ns_type]

    def types_differing_from(self, other: "NsProxy") -> List[NamespaceType]:
        return [t for t in NamespaceType if not self.shares_with(other, t)]


class NamespaceRegistry:
    """Allocates namespace inode numbers and tracks live instances.

    The initial namespaces created at boot use the well-known inum range
    Linux reserves (0xEFFFFFxx) so traces are recognizable.
    """

    _INITIAL_INUM = 0xEFFFFFF0
    _DYNAMIC_INUM = 0xF0000000

    def __init__(self) -> None:
        self._next_inum = self._DYNAMIC_INUM
        self.instances: Dict[NamespaceType, List[Namespace]] = {
            ns_type: [] for ns_type in NamespaceType
        }

    def initial_inum(self, ns_type: NamespaceType) -> int:
        return self._INITIAL_INUM + int(ns_type)

    def next_inum(self) -> int:
        inum = self._next_inum
        self._next_inum += 1
        return inum

    def register(self, namespace: Namespace) -> None:
        self.instances[namespace.NS_TYPE].append(namespace)

    def live(self, ns_type: NamespaceType) -> Iterable[Namespace]:
        return list(self.instances[ns_type])
