"""Virtual filesystem: superblocks, mounts, mount namespaces.

Semantics follow Linux where it matters to isolation testing:

* A *superblock* owns the file tree and the device number; *mounts* map a
  path in some mount namespace to a superblock.
* ``unshare(CLONE_NEWNS)`` copies the mount table — the copies point at
  the **same** superblocks (sharing files is legitimate, mount namespaces
  only isolate the mount points themselves).  Container runtimes obtain
  private ``/tmp`` trees by mounting a fresh tmpfs after unsharing, which
  is what the simulated container setup does (paper §5.2 tunes container
  settings the same way, to keep documented/legitimate sharing out of the
  results).
* Anonymous superblocks draw their device minor from a **global**
  allocator (``get_anon_bdev`` in Linux).  The minor is visible through
  ``stat.st_dev`` and is *not* namespace-protected — the paper's §6.4
  false-positive analysis calls out exactly this (procfs/ramfs minor
  device numbers), so the global allocator is modelled faithfully to
  exercise report filtering and FP aggregation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .errno import (
    EBUSY,
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    EPERM,
    EROFS,
    EXDEV,
    SyscallError,
)
from .fdtable import FileObject
from .ktrace import kfunc
from .memory import KDict, KernelArena, KStruct
from .namespaces import Namespace, NamespaceType
from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: open(2) flag bits used by the model.
O_RDONLY = 0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_EXCL = 0o200
O_DIRECTORY = 0o200000

#: Mode bits for the ``st_mode`` field.
S_IFREG = 0o100000
S_IFDIR = 0o040000

_SUPPORTED_FS = ("tmpfs", "ramfs", "proc")


def normalize_path(path: str) -> str:
    """Collapse a user-supplied path to canonical ``/a/b`` form."""
    if not path or not path.startswith("/"):
        raise SyscallError(ENOENT, f"bad path {path!r}")
    parts = [part for part in path.split("/") if part and part != "."]
    return "/" + "/".join(parts)


class Inode(KStruct):
    """A file or directory inside one superblock."""

    FIELDS = {"ino": 8, "size": 8, "mode": 4, "nlink": 4, "mtime": 8}

    def __init__(self, arena: KernelArena, ino: int, is_dir: bool, mtime: int):
        mode = (S_IFDIR | 0o755) if is_dir else (S_IFREG | 0o644)
        super().__init__(arena, ino=ino, mode=mode, nlink=2 if is_dir else 1, mtime=mtime)
        self.is_dir = is_dir
        self.content = ""
        #: For procfs inodes: the key the proc renderer dispatches on.
        self.proc_key: Optional[str] = None
        #: For symlinks: the stored target path (not followed on lookup;
        #: readlink exposes it — keeps path resolution loop-free).
        self.symlink_target: Optional[str] = None


class SuperBlock(KStruct):
    """A filesystem instance: file tree plus device number."""

    FIELDS = {"s_dev": 4, "next_ino": 8}

    def __init__(self, arena: KernelArena, fs_type: str, s_dev: int):
        super().__init__(arena, s_dev=s_dev, next_ino=1)
        self.fs_type = fs_type
        #: Relative path ("" = root) -> Inode.
        self.files = KDict(arena)
        root = self._new_inode(arena, is_dir=True, mtime=0)
        self.files.insert("", root)

    def _new_inode(self, arena: KernelArena, is_dir: bool, mtime: int) -> Inode:
        ino = self.peek("next_ino")
        self.poke("next_ino", ino + 1)
        return Inode(arena, ino, is_dir, mtime)


class Mount(KStruct):
    """One entry of a mount namespace's mount table."""

    FIELDS = {"mnt_id": 4}

    def __init__(self, arena: KernelArena, mnt_id: int, mountpoint: str, sb: SuperBlock):
        super().__init__(arena, mnt_id=mnt_id)
        self.mountpoint = mountpoint
        self.sb = sb


class MntNamespace(Namespace):
    """A mount namespace: an independent mount table."""

    NS_TYPE = NamespaceType.MNT
    FIELDS = {"inum": 8}

    def __init__(self, arena: KernelArena, inum: int):
        super().__init__(arena, inum)
        self.mounts: List[Mount] = []

    def find_mount(self, path: str) -> Optional[Mount]:
        """Longest-prefix mount covering *path*; later mounts shadow earlier."""
        best: Optional[Mount] = None
        for mount in self.mounts:
            point = mount.mountpoint
            if path == point or path.startswith(point.rstrip("/") + "/") or point == "/":
                if best is None or len(point) >= len(best.mountpoint):
                    best = mount
        return best

    def mount_at(self, path: str) -> Optional[Mount]:
        """The topmost (most recent) mount at exactly *path*."""
        for mount in reversed(self.mounts):
            if mount.mountpoint == path:
                return mount
        return None


class OpenFile(FileObject):
    """An open regular file, directory, or procfs node."""

    def __init__(self, mount: Mount, inode: Inode, path: str, flags: int):
        super().__init__()
        self.mount = mount
        self.inode = inode
        self.path = path
        self.flags = flags
        self.offset = 0

    @property
    def resource_kind(self) -> str:  # type: ignore[override]
        if self.inode.proc_key is not None:
            key = self.inode.proc_key
            if key.startswith("net/"):
                return "fd_proc_net"
            if key.startswith("sys/net/"):
                return "fd_proc_sys_net"
            if key.startswith("sys/kernel/"):
                return "fd_proc_sys_kernel"
            if key.startswith("sys/"):
                return "fd_proc_sys"
            if key.startswith("sysvipc/"):
                return "fd_proc_sysvipc"
            return "fd_proc"
        return "fd_file"

    def describe(self) -> str:
        return self.path


class Vfs:
    """Mount/lookup/IO engine shared by the file syscalls."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        arena = kernel.arena
        # Global anonymous-device minor allocator (get_anon_bdev).
        from .klock import KLock
        from .memory import KCell

        self.anon_dev_next = KCell(arena, 4, init=0x10)
        self.mnt_id_next = KCell(arena, 4, init=1)
        # sb_lock: serializes the id allocators (real kernel takes it in
        # get_anon_bdev / alloc_mnt_ns).  Both allocators are global by
        # design — §6.4 suppresses them as benign — and the lock makes
        # that explicit: every touch is under it, so no syscall pair can
        # race here and the lockset analysis drops them from the
        # candidate set.
        self.lock = KLock("sb_lock")

    @property
    def tracer(self):
        return self._kernel.tracer

    # -- construction ------------------------------------------------------

    def new_superblock(self, fs_type: str) -> SuperBlock:
        """Create a superblock, drawing a minor from the global allocator."""
        if fs_type not in _SUPPORTED_FS:
            raise SyscallError(ENOENT, f"unknown fs {fs_type!r}")
        with self.lock:
            s_dev = self.anon_dev_next.add(1)
        return SuperBlock(self._kernel.arena, fs_type, s_dev)

    def new_mount(self, mountpoint: str, sb: SuperBlock) -> Mount:
        with self.lock:
            mnt_id = self.mnt_id_next.add(1)
        return Mount(self._kernel.arena, mnt_id, mountpoint, sb)

    def copy_mnt_ns(self, source: MntNamespace, inum: int) -> MntNamespace:
        """``unshare(CLONE_NEWNS)``: copy the table, share the superblocks."""
        ns = MntNamespace(self._kernel.arena, inum)
        for mount in source.mounts:
            ns.mounts.append(self.new_mount(mount.mountpoint, mount.sb))
        return ns

    def install_standard_tree(self, mnt_ns: MntNamespace) -> None:
        """Populate *mnt_ns* with a fresh root/proc/tmp layout.

        Used at boot for the init namespace, and by container setup as
        the pivot_root-style private rootfs a container runtime provides
        — nothing in the resulting table shares a superblock with any
        other namespace, so only genuine kernel channels (not plain
        shared mounts) can carry cross-container data flows.
        """
        root_sb = self.new_superblock("tmpfs")
        now = self._kernel.clock.now_sec()
        for path, is_dir in (("tmp", True), ("etc", True), ("proc", True),
                             ("etc/hostname", False)):
            inode = root_sb._new_inode(self._kernel.arena, is_dir=is_dir,
                                       mtime=now)
            root_sb.files.insert(path, inode)
        hostname = root_sb.files.lookup("etc/hostname")
        hostname.content = "kit-vm\n"
        hostname.poke("size", len(hostname.content))
        mnt_ns.mounts.append(self.new_mount("/", root_sb))
        mnt_ns.mounts.append(self.new_mount("/proc", self.new_superblock("proc")))
        mnt_ns.mounts.append(self.new_mount("/tmp", self.new_superblock("tmpfs")))

    # -- resolution --------------------------------------------------------

    @staticmethod
    def _mnt_ns_of(task: Task) -> MntNamespace:
        ns = task.nsproxy.get(NamespaceType.MNT)
        assert isinstance(ns, MntNamespace)
        return ns

    @kfunc
    def resolve(self, task: Task, path: str, mnt_ns: Optional[MntNamespace] = None
                ) -> Tuple[Mount, str]:
        """Resolve *path* to (mount, path-relative-to-superblock-root).

        *mnt_ns* overrides the task's mount namespace — the hook known
        bug E (io_uring) uses to resolve in the wrong namespace.
        """
        path = normalize_path(path)
        ns = mnt_ns if mnt_ns is not None else self._mnt_ns_of(task)
        mount = ns.find_mount(path)
        if mount is None:
            raise SyscallError(ENOENT, f"nothing mounted covering {path}")
        point = mount.mountpoint.rstrip("/")
        relative = path[len(point):].lstrip("/")
        return mount, relative

    @kfunc
    def lookup(self, task: Task, path: str, mnt_ns: Optional[MntNamespace] = None
               ) -> Tuple[Mount, Inode, str]:
        mount, relative = self.resolve(task, path, mnt_ns)
        if mount.sb.fs_type == "proc":
            inode = self._kernel.procfs.lookup(mount.sb, relative)
            if inode is None:
                raise SyscallError(ENOENT, f"no proc entry {relative!r}")
            return mount, inode, relative
        inode = mount.sb.files.lookup(relative)
        if inode is None:
            raise SyscallError(ENOENT, path)
        return mount, inode, relative

    # -- directory ops -----------------------------------------------------

    @kfunc
    def mkdir(self, task: Task, path: str) -> int:
        mount, relative = self.resolve(task, path)
        if mount.sb.fs_type == "proc":
            raise SyscallError(EROFS, "procfs is read-only")
        if not relative:
            raise SyscallError(EEXIST)
        if mount.sb.files.lookup(relative) is not None:
            raise SyscallError(EEXIST)
        self._require_parent_dir(mount.sb, relative)
        inode = mount.sb._new_inode(
            self._kernel.arena, is_dir=True, mtime=self._kernel.clock.now_sec()
        )
        mount.sb.files.insert(relative, inode)
        return 0

    @kfunc
    def unlink(self, task: Task, path: str) -> int:
        mount, relative = self.resolve(task, path)
        if mount.sb.fs_type == "proc":
            raise SyscallError(EROFS, "procfs is read-only")
        inode = mount.sb.files.lookup(relative)
        if inode is None:
            raise SyscallError(ENOENT, path)
        if inode.is_dir:
            raise SyscallError(EISDIR, path)
        mount.sb.files.delete(relative)
        return 0

    @kfunc
    def rmdir(self, task: Task, path: str) -> int:
        mount, relative = self.resolve(task, path)
        if mount.sb.fs_type == "proc":
            raise SyscallError(EROFS, "procfs is read-only")
        inode = mount.sb.files.lookup(relative)
        if inode is None:
            raise SyscallError(ENOENT, path)
        if not inode.is_dir:
            raise SyscallError(ENOTDIR, path)
        if not relative:
            raise SyscallError(EBUSY, "cannot rmdir /")
        if self.list_dir(mount, relative):
            raise SyscallError(ENOTEMPTY, path)
        mount.sb.files.delete(relative)
        return 0

    @kfunc
    def rename(self, task: Task, old_path: str, new_path: str) -> int:
        """``rename(2)`` within one superblock (EXDEV across mounts)."""
        old_mount, old_rel = self.resolve(task, old_path)
        new_mount, new_rel = self.resolve(task, new_path)
        if old_mount.sb is not new_mount.sb:
            raise SyscallError(EXDEV, "cross-device rename")
        if old_mount.sb.fs_type == "proc":
            raise SyscallError(EROFS, "procfs is read-only")
        inode = old_mount.sb.files.lookup(old_rel)
        if inode is None:
            raise SyscallError(ENOENT, old_path)
        if not new_rel:
            raise SyscallError(EBUSY, new_path)
        self._require_parent_dir(new_mount.sb, new_rel)
        existing = new_mount.sb.files.lookup(new_rel)
        if existing is not None and existing.is_dir:
            raise SyscallError(EISDIR, new_path)
        old_mount.sb.files.delete(old_rel)
        new_mount.sb.files.insert(new_rel, inode)
        return 0

    @kfunc
    def symlink(self, task: Task, target: str, link_path: str) -> int:
        mount, relative = self.resolve(task, link_path)
        if mount.sb.fs_type == "proc":
            raise SyscallError(EROFS, "procfs is read-only")
        if not relative or mount.sb.files.lookup(relative) is not None:
            raise SyscallError(EEXIST, link_path)
        self._require_parent_dir(mount.sb, relative)
        inode = mount.sb._new_inode(self._kernel.arena, is_dir=False,
                                    mtime=self._kernel.clock.now_sec())
        inode.symlink_target = target
        inode.kset("size", len(target))
        mount.sb.files.insert(relative, inode)
        return 0

    @kfunc
    def readlink(self, task: Task, path: str) -> str:
        __, inode, ___ = self.lookup(task, path)
        if inode.symlink_target is None:
            raise SyscallError(EINVAL, f"{path} is not a symlink")
        return inode.symlink_target

    @kfunc
    def statfs(self, task: Task, path: str) -> Dict[str, Any]:
        """``statfs(2)``: filesystem type and device of the covering mount."""
        mount, __ = self.resolve(task, path)
        fs_magic = {"tmpfs": 0x01021994, "ramfs": 0x858458F6,
                    "proc": 0x9FA0}[mount.sb.fs_type]
        return {
            "f_type": fs_magic,
            "f_dev": mount.sb.kget("s_dev"),
            "f_files": len(mount.sb.files),
        }

    @kfunc
    def render_proc_mounts(self, task: Task) -> str:
        """``/proc/mounts`` — the reader's mount namespace table."""
        mnt_ns = self._mnt_ns_of(task)
        lines = []
        for mnt in mnt_ns.mounts:
            lines.append(f"none {mnt.mountpoint} {mnt.sb.fs_type} rw 0 0")
        return "\n".join(lines) + "\n"

    def _require_parent_dir(self, sb: SuperBlock, relative: str) -> None:
        parent = relative.rsplit("/", 1)[0] if "/" in relative else ""
        inode = sb.files.lookup(parent)
        if inode is None:
            raise SyscallError(ENOENT, f"parent of {relative!r}")
        if not inode.is_dir:
            raise SyscallError(ENOTDIR, f"parent of {relative!r}")

    @kfunc
    def list_dir(self, mount: Mount, relative: str,
                 task: Optional[Task] = None) -> List[str]:
        """Names directly under *relative* in the mount's superblock."""
        if mount.sb.fs_type == "proc":
            return self._kernel.procfs.list_dir(relative, task)
        prefix = relative + "/" if relative else ""
        names = []
        for path in mount.sb.files.peek_items():
            if not path or not path.startswith(prefix):
                continue
            remainder = path[len(prefix):]
            if remainder and "/" not in remainder:
                names.append(remainder)
        return sorted(names)

    # -- open/create -------------------------------------------------------

    @kfunc
    def open(self, task: Task, path: str, flags: int) -> OpenFile:
        path = normalize_path(path)
        mount, relative = self.resolve(task, path)
        sb = mount.sb
        if sb.fs_type == "proc":
            inode = self._kernel.procfs.lookup(sb, relative)
            if inode is None:
                raise SyscallError(ENOENT, path)
            return OpenFile(mount, inode, path, flags)
        inode = sb.files.lookup(relative)
        if inode is None:
            if not flags & O_CREAT:
                raise SyscallError(ENOENT, path)
            if not relative:
                raise SyscallError(EISDIR, path)
            self._require_parent_dir(sb, relative)
            inode = sb._new_inode(
                self._kernel.arena, is_dir=False, mtime=self._kernel.clock.now_sec()
            )
            sb.files.insert(relative, inode)
        elif flags & O_CREAT and flags & O_EXCL:
            raise SyscallError(EEXIST, path)
        if flags & O_DIRECTORY and not inode.is_dir:
            raise SyscallError(ENOTDIR, path)
        return OpenFile(mount, inode, path, flags)

    # -- IO ------------------------------------------------------------------

    @kfunc
    def read_file(self, task: Task, open_file: OpenFile, count: int, offset: int) -> str:
        inode = open_file.inode
        if inode.is_dir:
            raise SyscallError(EISDIR, open_file.path)
        if inode.proc_key is not None:
            content = self._kernel.procfs.render(task, inode.proc_key)
        else:
            inode.kget("size")  # traced size load, as generic_file_read does
            content = inode.content
        return content[offset:offset + max(count, 0)]

    @kfunc
    def write_file(self, task: Task, open_file: OpenFile, data: str, offset: int) -> int:
        inode = open_file.inode
        if inode.is_dir:
            raise SyscallError(EISDIR, open_file.path)
        if inode.proc_key is not None:
            return self._kernel.procfs.write(task, inode.proc_key, data)
        content = inode.content
        if offset > len(content):
            content = content + "\0" * (offset - len(content))
        inode.content = content[:offset] + data + content[offset + len(data):]
        inode.kset("size", len(inode.content))
        inode.kset("mtime", self._kernel.clock.now_sec())
        return len(data)

    @kfunc
    def stat_inode(self, task: Task, mount: Mount, inode: Inode) -> Dict[str, int]:
        """Fill a ``struct stat`` for *inode*.

        ``st_dev`` carries the superblock's globally-allocated minor; the
        time fields come from the virtual clock for procfs nodes (which
        report "now" in Linux), making them time-dependent results that
        the non-determinism filter must learn to ignore (§4.3.2).
        """
        if inode.proc_key is not None:
            mtime = self._kernel.clock.now_sec()
            size = 0
        else:
            mtime = inode.kget("mtime")
            size = inode.kget("size")
        return {
            "st_dev": mount.sb.kget("s_dev"),
            "st_ino": inode.kget("ino"),
            "st_mode": inode.kget("mode"),
            "st_nlink": inode.kget("nlink"),
            "st_size": size,
            "st_mtime": mtime,
        }

    # -- mount/umount --------------------------------------------------------

    @kfunc
    def mount(self, task: Task, source: str, target: str, fs_type: str) -> int:
        from .task import CAP_SYS_ADMIN

        if not task.capable(CAP_SYS_ADMIN):
            raise SyscallError(EPERM, "mount needs CAP_SYS_ADMIN")
        target = normalize_path(target)
        ns = self._mnt_ns_of(task)
        # Target must exist as a directory in the current view.
        mount, inode, __ = self.lookup(task, target)
        if not inode.is_dir:
            raise SyscallError(ENOTDIR, target)
        sb = self.new_superblock(fs_type)
        ns.mounts.append(self.new_mount(target, sb))
        # The mount table is a plain list (untraced): tell the snapshot
        # engine this namespace changed.
        self._kernel.mark_dirty_object(ns)
        return 0

    @kfunc
    def umount(self, task: Task, target: str) -> int:
        from .task import CAP_SYS_ADMIN

        if not task.capable(CAP_SYS_ADMIN):
            raise SyscallError(EPERM, "umount needs CAP_SYS_ADMIN")
        target = normalize_path(target)
        ns = self._mnt_ns_of(task)
        if target == "/":
            raise SyscallError(EBUSY, "cannot umount /")
        mount = ns.mount_at(target)
        if mount is None:
            raise SyscallError(EINVAL, f"{target} is not a mountpoint here")
        ns.mounts.remove(mount)
        self._kernel.mark_dirty_object(ns)
        return 0
