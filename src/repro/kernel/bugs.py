"""The injected-bug registry.

Every functional interference bug the paper reports (Table 2), reproduces
(Table 3), or declares out of reach (§6.2) is modelled as a boolean flag
that switches a specific kernel code path between its vulnerable and its
patched form.  The flag placements mirror each bug's documented root
cause — see the docstrings in the subsystem modules.

Presets bundle the flags into "kernel versions":

* :func:`linux_5_13` — the paper's main target: all nine Table-2 bugs.
  (Documented 5.13 bugs such as D/F are disabled, mirroring §5.2's
  container tuning that keeps known interference out of new-bug runs.)
* :func:`known_bug_kernel` — one historical kernel per Table-3 row.
* :func:`fixed_kernel` — everything patched; the true-negative baseline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass
class BugFlags:
    """One boolean per modelled bug; all False = fully patched kernel."""

    # -- Table 2: new bugs found by KIT in Linux 5.13 ----------------------
    #: #1 — /proc/net/ptype shows packet_type of other namespaces.
    ptype_leak: bool = False
    #: #2/#4 — ipv6_flowlabel_exclusive static key is global.
    flowlabel_exclusive_global: bool = False
    #: #3 — RDS bind table keyed without the namespace.
    rds_bind_global: bool = False
    #: #5 — /proc/net/sockstat 'sockets: used' counter is global.
    sockstat_used_global: bool = False
    #: #6 — socket cookie allocator is global.
    socket_cookie_global: bool = False
    #: #7 — SCTP association ID space is global.
    sctp_assoc_id_global: bool = False
    #: #8/#9 — per-protocol memory accounting is global (sockstat mem /
    #: /proc/net/protocols memory).
    proto_mem_global: bool = False

    # -- Table 3: known historical bugs ------------------------------------
    #: A — setpriority(PRIO_USER) crosses PID namespaces (Linux 4.4).
    prio_user_crosses_pidns: bool = False
    #: B — netdev queue uevents broadcast to all namespaces (Linux 3.14).
    uevent_broadcast_all_ns: bool = False
    #: C — /proc/net/ip_vs dumps services of all namespaces (Linux 4.15).
    ipvs_proc_no_ns_check: bool = False
    #: D — nf_conntrack_max sysctl is global (Linux 5.13, CVE-2021-38209).
    conntrack_max_global: bool = False
    #: E — io_uring resolves paths in the init mount ns (5.6, CVE-2020-29373).
    iouring_wrong_mnt_ns: bool = False

    # -- §6.2: bugs functional interference testing cannot detect ----------
    #: F — /proc/net/nf_conntrack dumps other namespaces' entries, but the
    #: file is non-deterministic even without interference.
    conntrack_proc_leak: bool = False
    #: G — unix sock_diag matches sockets of any namespace, but detection
    #: needs the sender's runtime-allocated inode.
    unix_diag_cross_ns: bool = False

    # -- §2.1: historical motivation --------------------------------------
    #: msgctl(IPC_STAT) reports raw global PIDs across PID namespaces.
    msg_stat_global_pid: bool = False

    # -- race-only bugs (§7 concurrency extension) -------------------------
    # Each perturbs global state *within one syscall* and restores it
    # before returning: the two-phase (sequential) pipeline can never
    # observe the window, only a controlled interleaving can
    # (docs/SCHEDULING.md).
    #: T1 — in-flight send memory charged to a global counter and
    #: released before sendto returns; /proc/net/sockstat's FRAG line
    #: exposes the transient value to other namespaces.
    frag_inflight_global: bool = False
    #: T2 — msgget publishes the new queue into a global pending table
    #: before binding it to the namespace (the ipc_addid early-publish
    #: pattern); /proc/sysvipc/msg lists the half-initialized entry.
    msg_pending_global: bool = False
    #: T3 — register_netdev publishes the device name into a global
    #: pending-registration table until registration commits;
    #: /proc/net/dev lists in-flight registrations of every namespace.
    netdev_pending_global: bool = False

    def enabled(self) -> List[str]:
        return [f.name for f in dataclasses.fields(self) if getattr(self, f.name)]

    def copy(self, **overrides: bool) -> "BugFlags":
        return dataclasses.replace(self, **overrides)


@dataclass(frozen=True)
class BugSpec:
    """Shared metadata for one injected bug: a stable id, the canonical
    kernel-state location it corrupts (in the static analyzer's lattice,
    see docs/ANALYSIS.md), and whether the static escape lint is
    expected to rediscover it.

    ``table_refs`` ties the flag back to the paper's numbering: Table-2
    bug numbers and/or Table-3 row letters ("H" is the §2.1 msgctl
    motivation, reported in prose only).
    """

    flag: str
    state_path: str
    table_refs: Tuple[str, ...]
    #: False only for value-level bugs: the buggy and patched kernels
    #: have identical access *sets* and differ in the value written
    #: (e.g. a raw global PID instead of a translated one), which no
    #: access-set analysis can distinguish.
    statically_detectable: bool = True


#: One spec per flag; ids are the flag names (stable across releases).
BUG_SPECS: Tuple[BugSpec, ...] = (
    BugSpec("ptype_leak", "kernel.ptype.ptype_all", ("1",)),
    BugSpec("flowlabel_exclusive_global",
            "kernel.flowlabel.exclusive_global", ("2", "4")),
    BugSpec("rds_bind_global", "kernel.rds.global_binds", ("3",)),
    BugSpec("sockstat_used_global", "kernel.net.sockets_used_global", ("5",)),
    BugSpec("socket_cookie_global", "kernel.net.cookie_next_global", ("6",)),
    BugSpec("sctp_assoc_id_global", "kernel.sctp.assoc_next_global", ("7",)),
    BugSpec("proto_mem_global", "kernel.net.proto_mem_global", ("8", "9")),
    BugSpec("prio_user_crosses_pidns", "kernel.tasks", ("A",)),
    BugSpec("uevent_broadcast_all_ns", "ns:net.uevent_queue", ("B",)),
    BugSpec("ipvs_proc_no_ns_check", "kernel.ipvs.services", ("C",)),
    BugSpec("conntrack_max_global", "kernel.conntrack.global_max", ("D",)),
    BugSpec("iouring_wrong_mnt_ns", "kernel.init_mnt_ns", ("E",)),
    BugSpec("conntrack_proc_leak", "kernel.conntrack.entries", ("F",)),
    BugSpec("unix_diag_cross_ns", "kernel.net.unix.by_ino", ("G",)),
    BugSpec("msg_stat_global_pid", "kernel.tasks", ("H",),
            statically_detectable=False),
    BugSpec("frag_inflight_global", "kernel.net.frag_inflight_global",
            ("T1",)),
    BugSpec("msg_pending_global", "kernel.ipc.msg_pending_global", ("T2",)),
    BugSpec("netdev_pending_global", "kernel.netdev.pending_global", ("T3",)),
)


def bug_spec(flag: str) -> BugSpec:
    for spec in BUG_SPECS:
        if spec.flag == flag:
            return spec
    raise KeyError(flag)


#: Paper bug number -> (flag, short description, resource column of Table 2).
TABLE2_BUGS: Dict[int, Tuple[str, str, str]] = {
    1: ("ptype_leak", "Read /proc/net/ptype shows ptype from other ns", "ptype"),
    2: ("flowlabel_exclusive_global", "Transmit with unregistered flow label fails",
        "IPv6 / flow label"),
    3: ("rds_bind_global", "RDS bind fails across namespaces", "RDS / address"),
    4: ("flowlabel_exclusive_global", "Connect with unregistered flow label fails",
        "IPv6 / flow label"),
    5: ("sockstat_used_global", "Counter in /proc/net/sockstat increases",
        "proto / socket"),
    6: ("socket_cookie_global", "Socket cookie changes", "socket / cookie"),
    7: ("sctp_assoc_id_global", "SCTP association ID changes", "SCTP / assoc_id"),
    8: ("proto_mem_global", "mem counter in /proc/net/sockstat increases",
        "proto / memory"),
    9: ("proto_mem_global", "memory counter in /proc/net/protocols increases",
        "proto / memory"),
}

#: Table 3 row -> (flag, kernel version, namespace).
TABLE3_BUGS: Dict[str, Tuple[str, str, str]] = {
    "A": ("prio_user_crosses_pidns", "4.4", "pid"),
    "B": ("uevent_broadcast_all_ns", "3.14", "net"),
    "C": ("ipvs_proc_no_ns_check", "4.15", "net"),
    "D": ("conntrack_max_global", "5.13", "net"),
    "E": ("iouring_wrong_mnt_ns", "5.6", "mnt"),
    # §6.2 non-detectable rows (not in Table 3, reported in prose):
    "F": ("conntrack_proc_leak", "4.9", "net"),
    "G": ("unix_diag_cross_ns", "4.13", "net"),
}

#: Race-only bug label -> (flag, short description, observing file).
#: These are invisible to sequential two-phase execution by
#: construction; see docs/SCHEDULING.md.
RACE_BUGS: Dict[str, Tuple[str, str, str]] = {
    "T1": ("frag_inflight_global",
           "Transient FRAG counter in /proc/net/sockstat visible cross-ns",
           "/proc/net/sockstat"),
    "T2": ("msg_pending_global",
           "Half-initialized msg queue listed in /proc/sysvipc/msg",
           "/proc/sysvipc/msg"),
    "T3": ("netdev_pending_global",
           "In-flight netdev registration listed in /proc/net/dev",
           "/proc/net/dev"),
}

#: The bug IDs the paper says plain random generation (RAND) still found.
RAND_DETECTABLE = {1, 2, 5, 7, 9}


def fixed_kernel() -> BugFlags:
    """A kernel with every modelled bug patched."""
    return BugFlags()


def linux_5_13() -> BugFlags:
    """Stable Linux 5.13 as KIT tested it: the nine Table-2 bugs present."""
    return BugFlags(
        ptype_leak=True,
        flowlabel_exclusive_global=True,
        rds_bind_global=True,
        sockstat_used_global=True,
        socket_cookie_global=True,
        sctp_assoc_id_global=True,
        proto_mem_global=True,
    )


def known_bug_kernel(bug_id: str) -> BugFlags:
    """The historical kernel containing exactly one Table-3/§6.2 bug."""
    flag, __, __ = TABLE3_BUGS[bug_id.upper()]
    return BugFlags(**{flag: True})


def race_kernel() -> BugFlags:
    """A kernel with every race-only (transient-window) bug present."""
    return BugFlags(**{flag: True for flag, __, __ in RACE_BUGS.values()})


def known_race_kernel(bug_id: str) -> BugFlags:
    """A kernel containing exactly one race-only bug (T1-T3)."""
    flag, __, __ = RACE_BUGS[bug_id.upper()]
    return BugFlags(**{flag: True})


def kernel_version_for(bug_id: str) -> str:
    return TABLE3_BUGS[bug_id.upper()][1]


def table2_flag_names() -> Iterable[str]:
    return sorted({flag for flag, __, __ in TABLE2_BUGS.values()})
