"""Traced kernel memory — the simulated kernel's address space.

Every piece of mutable kernel state in the simulator lives in one of the
containers defined here, all of which are allocated from a
:class:`KernelArena`:

* :class:`KStruct` — a C-struct-like object with declared fields.  Field
  loads/stores are reported to the kernel tracer with the field's address
  (struct base + field offset), its width, and the instruction address of
  the kernel-model code performing the access.
* :class:`KCell` — a scalar global variable (one addressed word).
* :class:`KList` / :class:`KDict` — linked-list / table containers whose
  *structural* mutations (insert, remove) are writes to a header word and
  whose traversals are reads of it, matching how list heads behave in
  real kernel memory traces.

This is the load-bearing substitution for KIT's compiler instrumentation:
KIT's data-flow analysis only needs (width, r/w, address, instruction
address, call stack) tuples for accesses to shared kernel memory, and the
arena provides exactly those with the same aliasing semantics (state that
is global in Linux is a single arena allocation here; state that is
per-namespace is allocated per namespace instance, so its addresses never
collide across containers).

Struct/cell values are ordinary Python attributes so snapshots are plain
pickles; the arena holds no values, only the address map and the tracer
hook.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .ktrace import INSTRUCTIONS, KernelTracer

_WORD = 8
_ALLOC_ALIGN = 64


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class KernelArena:
    """Address allocator and trace hook for simulated kernel memory."""

    _HEAP_BASE = 0xFFFF888000000000

    def __init__(self) -> None:
        self._next_addr = self._HEAP_BASE
        self.tracer: Optional[KernelTracer] = None
        #: Write barrier for segmented snapshots: called with the target
        #: address of every traced store, tracer or no tracer (the
        #: snapshot engine must see writes even in un-instrumented runs).
        self.dirty_hook: Optional[Any] = None

    # The tracer and dirty hook are runtime instrumentation state, never
    # kernel state: exclude them from snapshots.
    def __getstate__(self) -> Dict[str, Any]:
        return {"_next_addr": self._next_addr}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._next_addr = state["_next_addr"]
        self.tracer = None
        self.dirty_hook = None

    def alloc(self, size: int) -> int:
        """Reserve *size* bytes and return the base address."""
        addr = self._next_addr
        self._next_addr += _align(max(size, 1), _ALLOC_ALIGN)
        return addr

    def record(self, addr: int, width: int, is_write: bool, depth: int = 2) -> None:
        """Report one memory access to the tracer, if tracing is active.

        *depth* selects the stack frame whose source location becomes the
        instruction address — the kernel-model line that performed the
        access, not the accessor helper itself.
        """
        if is_write and self.dirty_hook is not None:
            self.dirty_hook(addr)
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        frame = sys._getframe(depth)
        ip = INSTRUCTIONS.address_for(frame.f_code.co_filename, frame.f_lineno)
        tracer.on_access(addr, width, is_write, ip)


class KStruct:
    """Base class for traced kernel structures.

    Subclasses declare ``FIELDS`` mapping field name to width in bytes::

        class PacketType(KStruct):
            FIELDS = {"ptype": 2, "dev": 8, "netns": 8}

    Offsets are computed at class definition time (cumulative, naturally
    aligned), so a field's address is stable for the lifetime of the
    object.  Reads and writes go through :meth:`kget` / :meth:`kset`.

    Set ``TRACED = False`` on subclasses that model untraced subsystems
    (the paper excludes e.g. scheduler internals and debug hooks from
    instrumentation).
    """

    FIELDS: Dict[str, int] = {}
    TRACED = True

    _offsets: Dict[str, int]
    _size: int

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        offsets: Dict[str, int] = {}
        offset = 0
        for name, width in cls.FIELDS.items():
            offset = _align(offset, min(width, _WORD))
            offsets[name] = offset
            offset += width
        cls._offsets = offsets
        cls._size = max(offset, 1)

    def __init__(self, arena: KernelArena, **initial: Any):
        self._arena = arena
        self._base = arena.alloc(self._size)
        self._values: Dict[str, Any] = {name: 0 for name in self.FIELDS}
        for name, value in initial.items():
            if name not in self.FIELDS:
                raise KeyError(f"{type(self).__name__} has no field {name!r}")
            self._values[name] = value

    @property
    def base_address(self) -> int:
        return self._base

    def field_address(self, field: str) -> int:
        return self._base + self._offsets[field]

    def kget(self, field: str) -> Any:
        """Traced load of *field*."""
        if self.TRACED:
            self._arena.record(self._base + self._offsets[field], self.FIELDS[field], False)
        return self._values[field]

    def kset(self, field: str, value: Any) -> None:
        """Traced store to *field*."""
        if self.TRACED:
            self._arena.record(self._base + self._offsets[field], self.FIELDS[field], True)
        self._values[field] = value

    def peek(self, field: str) -> Any:
        """Untraced load — for assertions, decoding, and tests only."""
        return self._values[field]

    def poke(self, field: str, value: Any) -> None:
        """Untraced store — for setup code that models boot-time init."""
        self._values[field] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"{type(self).__name__}@{self._base:#x}({fields})"


class KCell:
    """A scalar kernel global (e.g. a counter shared by all namespaces)."""

    __slots__ = ("_arena", "_addr", "_width", "_value")

    def __init__(self, arena: KernelArena, width: int = _WORD, init: Any = 0):
        self._arena = arena
        self._addr = arena.alloc(width)
        self._width = width
        self._value = init

    def __getstate__(self) -> Tuple[Any, ...]:
        return (self._arena, self._addr, self._width, self._value)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        self._arena, self._addr, self._width, self._value = state

    @property
    def address(self) -> int:
        return self._addr

    def get(self, depth: int = 2) -> Any:
        """Traced load.

        *depth* picks the frame credited as the instruction address;
        helpers that wrap a cell on behalf of their caller (e.g. jump
        labels, which the real kernel inlines at each use site) pass 3 so
        the *call site* owns the access, as inlining would make it.
        """
        self._arena.record(self._addr, self._width, False, depth)
        return self._value

    def set(self, value: Any, depth: int = 2) -> None:
        self._arena.record(self._addr, self._width, True, depth)
        self._value = value

    def add(self, delta: int, depth: int = 2) -> Any:
        """Traced read-modify-write, like ``atomic_add`` (one read, one write)."""
        self._arena.record(self._addr, self._width, False, depth)
        self._arena.record(self._addr, self._width, True, depth)
        self._value += delta
        return self._value

    def peek(self) -> Any:
        return self._value

    def poke(self, value: Any) -> None:
        self._value = value


class KList:
    """A traced list with a header word, like a kernel ``list_head``.

    Structural mutations write the header; traversal reads it.  This makes
    a sender's insert and a receiver's iteration overlap on the header
    address — precisely the write/read pair KIT's data-flow analysis keys
    on for list-carried interference (e.g. the global ``ptype`` lists of
    bug #1).
    """

    __slots__ = ("_arena", "_addr", "_items")

    def __init__(self, arena: KernelArena):
        self._arena = arena
        self._addr = arena.alloc(_WORD)
        self._items: List[Any] = []

    def __getstate__(self) -> Tuple[Any, ...]:
        return (self._arena, self._addr, self._items)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        self._arena, self._addr, self._items = state

    @property
    def address(self) -> int:
        return self._addr

    def append(self, item: Any) -> None:
        self._arena.record(self._addr, _WORD, True)
        self._items.append(item)

    def remove(self, item: Any) -> None:
        self._arena.record(self._addr, _WORD, True)
        self._items.remove(item)

    def pop_front(self) -> Any:
        """Dequeue the oldest item (traced write, like list_del)."""
        self._arena.record(self._addr, _WORD, True)
        return self._items.pop(0)

    def __iter__(self) -> Iterator[Any]:
        self._arena.record(self._addr, _WORD, False)
        return iter(list(self._items))

    def __len__(self) -> int:
        self._arena.record(self._addr, _WORD, False)
        return len(self._items)

    def peek_items(self) -> List[Any]:
        """Untraced view for tests and decoding."""
        return list(self._items)


class KDict:
    """A traced table (IDR/radix-tree stand-in) keyed by integers or strings.

    Like :class:`KList`, mutations write and lookups read a single header
    word; values are typically :class:`KStruct` instances whose field
    accesses are traced individually.
    """

    __slots__ = ("_arena", "_addr", "_items")

    def __init__(self, arena: KernelArena):
        self._arena = arena
        self._addr = arena.alloc(_WORD)
        self._items: Dict[Any, Any] = {}

    def __getstate__(self) -> Tuple[Any, ...]:
        return (self._arena, self._addr, self._items)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        self._arena, self._addr, self._items = state

    @property
    def address(self) -> int:
        return self._addr

    def insert(self, key: Any, value: Any) -> None:
        self._arena.record(self._addr, _WORD, True)
        self._items[key] = value

    def delete(self, key: Any) -> None:
        self._arena.record(self._addr, _WORD, True)
        del self._items[key]

    def lookup(self, key: Any, default: Any = None) -> Any:
        self._arena.record(self._addr, _WORD, False)
        return self._items.get(key, default)

    def __contains__(self, key: Any) -> bool:
        self._arena.record(self._addr, _WORD, False)
        return key in self._items

    def __iter__(self) -> Iterator[Any]:
        self._arena.record(self._addr, _WORD, False)
        return iter(dict(self._items))

    def __len__(self) -> int:
        self._arena.record(self._addr, _WORD, False)
        return len(self._items)

    def values(self) -> List[Any]:
        self._arena.record(self._addr, _WORD, False)
        return list(self._items.values())

    def peek_items(self) -> Dict[Any, Any]:
        """Untraced view for tests and decoding."""
        return dict(self._items)
