"""Packet sockets and the global ``ptype`` lists — bug #1 (paper §2.2, §6.1).

The kernel keeps the registered ``packet_type`` handlers of *all* network
namespaces on global lists (``ptype_all`` / ``ptype_base``).  The procfs
file ``/proc/net/ptype`` dumps them.  ``ptype_seq_show()`` shows an entry
when ``pt->dev == NULL || dev_net(pt->dev) == seq_file_net(seq)`` — and a
packet socket's handler has ``dev == NULL``, so on the buggy kernel every
namespace sees every other namespace's packet sockets (Figure 4).  The
fix (merged upstream a week after the KIT report) also compares the
owning socket's namespace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..ktrace import kfunc
from ..memory import KList, KStruct
from ..task import Task
from .netns import NetNamespace

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Kernel
    from .socket import Socket

#: Ethernet protocol numbers accepted by ``socket(AF_PACKET, …, proto)``.
ETH_P_ALL = 0x0003
ETH_P_IP = 0x0800
ETH_P_ARP = 0x0806
ETH_P_IPV6 = 0x86DD


class PacketType(KStruct):
    """``struct packet_type``: one protocol handler registration."""

    FIELDS = {"ptype": 2, "dev": 8}

    def __init__(self, kernel: "Kernel", ptype: int, func: str,
                 sock: Optional["Socket"] = None):
        super().__init__(kernel.arena, ptype=ptype, dev=0)
        self.func = func
        #: The owning packet socket; None for built-in protocol handlers.
        self.sock = sock


class PtypeSubsystem:
    """The global handler lists plus the ``/proc/net/ptype`` renderer."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self.ptype_all = KList(kernel.arena)
        self.ptype_base = KList(kernel.arena)
        # Built-in handlers registered at boot, as on a real kernel.
        for proto, func in ((ETH_P_IP, "ip_rcv"), (ETH_P_ARP, "arp_rcv"),
                            (ETH_P_IPV6, "ipv6_rcv")):
            self.ptype_base.append(PacketType(kernel, proto, func))

    @property
    def tracer(self):
        return self._kernel.tracer

    @kfunc
    def dev_add_pack(self, sock: "Socket", proto: int) -> PacketType:
        """Register the packet socket's handler on the global lists."""
        entry = PacketType(self._kernel, proto, "packet_rcv", sock=sock)
        if proto == ETH_P_ALL:
            self.ptype_all.append(entry)
        else:
            self.ptype_base.append(entry)
        return entry

    @kfunc
    def dev_remove_pack(self, entry: PacketType) -> None:
        target = self.ptype_all if entry.peek("ptype") == ETH_P_ALL else self.ptype_base
        target.remove(entry)

    @kfunc
    def render_proc_ptype(self, task: Task, reader_ns: NetNamespace) -> str:
        """``ptype_seq_show()`` over both global lists.

        Buggy kernel: socket-backed entries have ``dev == NULL`` and are
        shown to every namespace.  Fixed kernel: such entries are shown
        only when the owning socket's namespace matches the reader's.
        """
        lines: List[str] = ["Type Device      Function"]
        leak = self._kernel.bugs.ptype_leak
        for entry in list(self.ptype_all) + list(self.ptype_base):
            if entry.sock is not None:
                if not leak and entry.sock.netns is not reader_ns:
                    continue
            ptype = entry.kget("ptype")
            label = "ALL " if ptype == ETH_P_ALL else f"{ptype:04x}"
            lines.append(f"{label}             {entry.func}")
        return "\n".join(lines) + "\n"
