"""RDS (Reliable Datagram Sockets) binding — bug #3.

The paper found that RDS namespace support "stopped halfway": the bind
table that maps a transport address to a socket is keyed **globally**, so
a socket in one namespace binding ``(addr, port)`` makes the same bind
fail with ``EADDRINUSE`` in every other namespace.  The fixed behaviour
keys the table per network namespace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errno import EADDRINUSE, EINVAL, SyscallError
from ..ktrace import kfunc
from ..memory import KDict
from .netns import NetNamespace

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Kernel
    from .socket import Socket


class RdsSubsystem:
    """The RDS bind table(s)."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        #: The buggy, namespace-oblivious table: (addr, port) -> Socket.
        self.global_binds = KDict(kernel.arena)

    @property
    def tracer(self):
        return self._kernel.tracer

    @kfunc
    def rds_bind(self, sock: "Socket", ns: NetNamespace, addr: int, port: int) -> int:
        if port == 0:
            raise SyscallError(EINVAL, "RDS requires an explicit port")
        key = (addr, port)
        if self._kernel.bugs.rds_bind_global:
            table = self.global_binds
        else:
            table = ns.rds_binds
        if table.lookup(key) is not None:
            raise SyscallError(EADDRINUSE, f"RDS {addr:#x}:{port} already bound")
        table.insert(key, sock)
        sock.rds_bound_key = key
        return 0

    @kfunc
    def rds_release(self, sock: "Socket", ns: NetNamespace) -> None:
        key = getattr(sock, "rds_bound_key", None)
        if key is None:
            return
        table = self.global_binds if self._kernel.bugs.rds_bind_global else ns.rds_binds
        if table.lookup(key) is sock:
            table.delete(key)
        sock.rds_bound_key = None
