"""The simulated network stack.

Most of the paper's findings live here: 7 of the 9 new bugs (Table 2) and
3 of the 5 reproduced known bugs (Table 3) are network-namespace bugs,
which the paper attributes to the subsystem's complexity.  Each submodule
documents the bug(s) it hosts.
"""

from .netns import NetNamespace
from .socket import NetSubsystem, Socket

__all__ = ["NetNamespace", "NetSubsystem", "Socket"]
