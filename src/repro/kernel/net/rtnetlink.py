"""rtnetlink: link management over an AF_NETLINK/NETLINK_ROUTE socket.

The message-based interface behind ``ip link``: user space sends an
``RTM_*`` request on a route socket and reads the kernel's reply (or
dump) back from the same socket.  The model keeps netlink's
request/response shape — replies are queued on the socket — while
collapsing the binary nlmsghdr layout into (message type, name) pairs.

``RTM_GETLINK`` dumps the *caller's namespace* devices (correctly
isolated, like ``/proc/net/dev``); ``RTM_NEWLINK``/``RTM_DELLINK``
create and remove devices, emitting the add/remove uevents whose
namespace tagging known bug B concerns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errno import EINVAL, ENODEV, EOPNOTSUPP, EPERM, SyscallError
from ..ktrace import kfunc
from ..task import Task
from .netns import NetNamespace

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Kernel
    from .socket import Socket

#: rtnetlink message types (linux/rtnetlink.h).
RTM_NEWLINK = 16
RTM_DELLINK = 17
RTM_GETLINK = 18


class RtnetlinkSubsystem:
    """RTM_* request handling for route sockets."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel

    @property
    def tracer(self):
        return self._kernel.tracer

    @kfunc
    def request(self, task: Task, sock: "Socket", msg_type: int,
                name: str) -> int:
        """Handle one request; replies are queued on *sock*.

        Returns the number of reply messages queued.
        """
        ns = sock.netns
        if msg_type == RTM_GETLINK:
            return self._dump_links(ns, sock)
        if msg_type == RTM_NEWLINK:
            ifindex = self._kernel.netdev.register_netdev(task, ns, name)
            sock.rx_queue.append(f"RTM_NEWLINK ifindex={ifindex} name={name}")
            return 1
        if msg_type == RTM_DELLINK:
            return self._del_link(task, ns, sock, name)
        raise SyscallError(EOPNOTSUPP, f"rtnetlink message {msg_type}")

    def _dump_links(self, ns: NetNamespace, sock: "Socket") -> int:
        count = 0
        for name in sorted(ns.devices.peek_items()):
            device = ns.devices.lookup(name)
            sock.rx_queue.append(
                f"RTM_NEWLINK ifindex={device.kget('ifindex')} "
                f"name={name} mtu={device.kget('mtu')}")
            count += 1
        sock.rx_queue.append("NLMSG_DONE")
        return count + 1

    def _del_link(self, task: Task, ns: NetNamespace, sock: "Socket",
                  name: str) -> int:
        from ..task import CAP_NET_ADMIN

        if not task.capable(CAP_NET_ADMIN):
            raise SyscallError(EPERM, "RTM_DELLINK needs CAP_NET_ADMIN")
        if name == "lo":
            raise SyscallError(EINVAL, "cannot delete loopback")
        device = ns.devices.lookup(name)
        if device is None:
            raise SyscallError(ENODEV, name)
        ns.devices.delete(name)
        # Device removal uevent: correctly tagged to its own namespace
        # (the historical bug was queue-add events only).
        ns.uevent_queue.append(f"remove@/devices/virtual/net/{name}")
        sock.rx_queue.append(f"RTM_DELLINK name={name}")
        return 1
