"""Network devices, their queue kobjects, and uevent broadcast — known bug B.

Creating a net device emits kobject uevents: one for the device itself
and one per RX/TX queue.  Device kobjects are tagged with their network
namespace, so their uevents are delivered only to listeners in that
namespace.  The historical bug (Linux 3.14, commit 82ef3d5d5f3f) is that
the *queue* kobjects were missing the namespace tag: their "add@…/queues/…"
uevents were broadcast to every namespace, letting a container observe
device creation in other containers.

Delivery model: each namespace keeps a pending-uevent queue; an
``AF_NETLINK``/``NETLINK_KOBJECT_UEVENT`` socket reads from its
namespace's queue.  (In Linux delivery requires a live listener socket;
KIT's container setup opens the listener before the snapshot, so a
pending queue that survives the sender window is the equivalent
observable — see DESIGN.md.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errno import EEXIST, EINVAL, EPERM, SyscallError
from ..ktrace import kfunc
from ..memory import KDict, KStruct
from ..task import Task
from .netns import NetNamespace

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Kernel


class NetDevice(KStruct):
    """``struct net_device`` (the slice the model needs)."""

    FIELDS = {"ifindex": 4, "mtu": 4, "num_rx_queues": 4, "num_tx_queues": 4}

    def __init__(self, kernel: "Kernel", name: str, ifindex: int,
                 rx_queues: int = 1, tx_queues: int = 1):
        super().__init__(kernel.arena, ifindex=ifindex, mtu=1500,
                         num_rx_queues=rx_queues, num_tx_queues=tx_queues)
        self.name = name


class NetDevSubsystem:
    """Device registration and uevent emission."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        #: name -> in-flight device registration.  Global on the buggy
        #: kernel (race bug T3): while a registration is in flight,
        #: /proc/net/dev lists it to readers in *every* namespace.
        self.pending_global = KDict(kernel.arena)

    @property
    def tracer(self):
        return self._kernel.tracer

    def create_loopback(self, ns: NetNamespace) -> NetDevice:
        """Boot-time loopback registration; emits no uevents of interest."""
        device = NetDevice(self._kernel, "lo", ns.alloc_ifindex())
        ns.devices.insert("lo", device)
        return device

    @kfunc
    def register_netdev(self, task: Task, ns: NetNamespace, name: str) -> int:
        """Create a (virtual) net device in *ns* and emit its uevents."""
        from ..task import CAP_NET_ADMIN

        if not task.capable(CAP_NET_ADMIN):
            raise SyscallError(EPERM, "RTM_NEWLINK needs CAP_NET_ADMIN")
        if not name or len(name) > 15:
            raise SyscallError(EINVAL, "bad interface name")
        if ns.devices.lookup(name) is not None:
            raise SyscallError(EEXIST, f"device {name} exists")
        # The name is published to the pending-registration table until
        # registration commits below.  The window opens and closes within
        # this one syscall — race bug T3.
        self._publish_pending(ns, name)
        try:
            device = NetDevice(self._kernel, name, ns.alloc_ifindex())
            ns.devices.insert(name, device)
            # The device kobject is namespace-tagged: own namespace only.
            self._deliver(ns, f"add@/devices/virtual/net/{name}", everywhere=False)
            # Queue kobjects: namespace-tagged only on the fixed kernel.
            everywhere = self._kernel.bugs.uevent_broadcast_all_ns
            for index in range(device.kget("num_rx_queues")):
                self._deliver(ns, f"add@/devices/virtual/net/{name}/queues/rx-{index}",
                              everywhere=everywhere)
            for index in range(device.kget("num_tx_queues")):
                self._deliver(ns, f"add@/devices/virtual/net/{name}/queues/tx-{index}",
                              everywhere=everywhere)
        finally:
            self._commit_pending(ns, name)
        return device.kget("ifindex")

    @kfunc
    def _publish_pending(self, ns: NetNamespace, name: str) -> None:
        """``list_netdevice``-style early publish — global when buggy (T3)."""
        if self._kernel.bugs.netdev_pending_global:
            self.pending_global.insert(name, name)
        else:
            ns.netdev_pending.insert(name, name)

    @kfunc
    def _commit_pending(self, ns: NetNamespace, name: str) -> None:
        """The commit half of the T3 window."""
        if self._kernel.bugs.netdev_pending_global:
            if self.pending_global.lookup(name) is not None:
                self.pending_global.delete(name)
        else:
            if ns.netdev_pending.lookup(name) is not None:
                ns.netdev_pending.delete(name)

    def _deliver(self, origin: NetNamespace, payload: str, everywhere: bool) -> None:
        if everywhere:
            targets = [
                ns for ns in self._kernel.namespaces.live(NetNamespace.NS_TYPE)
            ]
        else:
            targets = [origin]
        for ns in targets:
            ns.uevent_queue.append(payload)

    @kfunc
    def create_veth_pair(self, task: Task, ns: NetNamespace,
                         peer_ns: NetNamespace, name: str) -> int:
        """``ip link add <name> type veth peer netns <fd>``.

        Creates one end in the caller's namespace and the peer end in
        *peer_ns*, wiring the two namespaces together: datagrams sent in
        either may be delivered to sockets bound in the other.  This is
        deliberate, *authorized* cross-container communication (paper
        §2: isolation must hold "except through authorized means (e.g.,
        valid communication channels)") — KIT will observe it as
        interference and the user dismisses it in triage.
        """
        from ..task import CAP_NET_ADMIN

        if not task.capable(CAP_NET_ADMIN):
            raise SyscallError(EPERM, "veth creation needs CAP_NET_ADMIN")
        if ns is peer_ns:
            raise SyscallError(EINVAL, "veth peer must be another namespace")
        self.register_netdev(task, ns, name)
        peer_name = f"{name}-peer"
        if peer_ns.devices.lookup(peer_name) is not None:
            raise SyscallError(EEXIST, peer_name)
        peer_device = NetDevice(self._kernel, peer_name,
                                peer_ns.alloc_ifindex())
        peer_ns.devices.insert(peer_name, peer_device)
        peer_ns.uevent_queue.append(
            f"add@/devices/virtual/net/{peer_name}")
        ns.veth_peers.append(peer_ns)
        peer_ns.veth_peers.append(ns)
        return 0

    @kfunc
    def render_proc_dev(self, task: Task, ns: NetNamespace) -> str:
        """``/proc/net/dev`` — correctly per-namespace."""
        lines: List[str] = [
            "Inter-|   Receive",
            " face |bytes    packets",
        ]
        for name in sorted(ns.devices.peek_items()):
            device = ns.devices.lookup(name)
            lines.append(f"{name:>6}: {0:8d} {device.kget('mtu'):8d}")
        # In-flight registrations: always empty between syscalls, but a
        # controlled interleaving can observe the T3 window mid-syscall.
        if self._kernel.bugs.netdev_pending_global:
            pending = sorted(self.pending_global)
        else:
            pending = sorted(ns.netdev_pending)
        for name in pending:
            lines.append(f"{name:>6}: registration pending")
        return "\n".join(lines) + "\n"
