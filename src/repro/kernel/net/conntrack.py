"""Netfilter connection tracking — known bugs D and F.

**Bug D** (CVE-2021-38209, Linux 5.13): the ``nf_conntrack_max`` sysctl
is a single global — a privileged user inside *any* network namespace can
read and write the host-wide limit through
``/proc/sys/net/netfilter/nf_conntrack_max``.  The fixed kernel gives
each namespace its own value.

**Bug F** (the paper's first §6.2 *non-detectable* case, commit
e77e6ff502ea): ``/proc/net/nf_conntrack`` dumps conntrack entries of
*other* namespaces.  KIT cannot detect it, because the file's contents
are non-deterministic even without any interference: entries carry
ticking timeout counters and background traffic churns the table.  The
simulation reproduces both properties — per-entry timeouts derived from
the virtual clock, plus boot-offset-dependent background entries created
from the timer interrupt — so the non-determinism filter (correctly,
per the paper) suppresses the leak.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..ktrace import kfunc
from ..memory import KCell, KList, KStruct
from ..task import Task
from .netns import NetNamespace

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Kernel

#: Conntrack entry lifetime, seconds (``nf_conntrack_udp_timeout``-ish).
ENTRY_TIMEOUT_SEC = 180


class ConntrackEntry(KStruct):
    """One tracked connection."""

    FIELDS = {"src_port": 2, "dst_port": 2, "created_sec": 8}

    def __init__(self, kernel: "Kernel", ns: NetNamespace, proto: str,
                 src_port: int, dst_port: int, created_sec: int):
        super().__init__(kernel.arena, src_port=src_port, dst_port=dst_port,
                         created_sec=created_sec)
        self.ns = ns
        self.proto = proto


class ConntrackSubsystem:
    """Entry table(s), the max sysctl, and the procfs dump."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        #: The buggy single global sysctl value (bug D).
        self.global_max = KCell(kernel.arena, 4, init=65536)
        #: Entries of every namespace (the dump iterates this, bug F).
        self.entries = KList(kernel.arena)

    @property
    def tracer(self):
        return self._kernel.tracer

    # -- sysctl (bug D) ----------------------------------------------------

    @kfunc
    def sysctl_read_max(self, task: Task, ns: NetNamespace) -> int:
        if self._kernel.bugs.conntrack_max_global:
            return self.global_max.get()
        return ns.nf_conntrack_max.get()

    @kfunc
    def sysctl_write_max(self, task: Task, ns: NetNamespace, value: int) -> int:
        from ..errno import EPERM, SyscallError
        from ..task import CAP_NET_ADMIN

        if not task.capable(CAP_NET_ADMIN):
            raise SyscallError(EPERM, "conntrack sysctls need CAP_NET_ADMIN")
        if self._kernel.bugs.conntrack_max_global:
            self.global_max.set(value)
        else:
            ns.nf_conntrack_max.set(value)
        return 0

    # -- entries (bug F) -----------------------------------------------------

    def track(self, ns: NetNamespace, proto: str, src_port: int, dst_port: int) -> None:
        """Record a connection (called from the transmit path)."""
        entry = ConntrackEntry(self._kernel, ns, proto, src_port, dst_port,
                               self._kernel.clock.now_sec())
        self.entries.append(entry)
        ns.conntrack.append(entry)

    def background_churn(self) -> None:
        """Timer-interrupt work: background traffic on the host.

        The number of live background entries depends on the boot offset,
        so two receiver-alone executions started at different times see
        different dumps — the inherent non-determinism that makes bug F
        invisible to functional interference testing (§6.2).
        """
        init_ns = self._kernel.init_net
        boot_sec = self._kernel.clock.boot_offset_ns // 1_000_000_000
        wanted = boot_sec % 3  # 0..2 background flows, boot-time dependent
        have = sum(1 for e in self.entries.peek_items() if e.proto == "udp-bg")
        while have < wanted:
            self.track(init_ns, "udp-bg", 30000 + have, 53)
            have += 1

    @kfunc
    def render_proc_conntrack(self, task: Task, ns: NetNamespace) -> str:
        """``/proc/net/nf_conntrack``.

        Buggy kernel: dumps entries of all namespaces.  Fixed kernel:
        only the reader's.  Either way each line carries the remaining
        timeout, which ticks with the clock.
        """
        now = self._kernel.clock.now_sec()
        lines: List[str] = []
        if self._kernel.bugs.conntrack_proc_leak:
            visible = list(self.entries)
        else:
            visible = list(ns.conntrack)
        for entry in visible:
            remaining = max(0, ENTRY_TIMEOUT_SEC - (now - entry.kget("created_sec")))
            lines.append(
                f"ipv4     2 {entry.proto:<6} 17 {remaining} "
                f"src=10.0.0.1 dst=10.0.0.2 sport={entry.kget('src_port')} "
                f"dport={entry.kget('dst_port')}"
            )
        return "\n".join(lines) + ("\n" if lines else "")
