"""IP Virtual Server — known bug C (Linux 4.15, commit c5504f724c86).

IPVS keeps virtual-service state per network namespace, but the
``/proc/net/ip_vs`` seq file iterated the service table without checking
the reader's namespace, leaking another container's load-balancer
configuration.  The fix filters services by namespace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errno import EEXIST, EPERM, SyscallError
from ..ktrace import kfunc
from ..memory import KList, KStruct
from ..task import Task
from .netns import NetNamespace

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Kernel


class IpvsService(KStruct):
    """One virtual service (VIP:port)."""

    FIELDS = {"addr": 4, "port": 2}

    def __init__(self, kernel: "Kernel", ns: NetNamespace, addr: int, port: int):
        super().__init__(kernel.arena, addr=addr, port=port)
        self.ns = ns


class IpvsSubsystem:
    """Service registration and the procfs dump."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        #: All services, every namespace (what the buggy dump iterates).
        self.services = KList(kernel.arena)

    @property
    def tracer(self):
        return self._kernel.tracer

    @kfunc
    def add_service(self, task: Task, ns: NetNamespace, addr: int, port: int) -> int:
        from ..task import CAP_NET_ADMIN

        if not task.capable(CAP_NET_ADMIN):
            raise SyscallError(EPERM, "IP_VS_SO_SET_ADD needs CAP_NET_ADMIN")
        for service in self.services.peek_items():
            if service.ns is ns and service.peek("addr") == addr \
                    and service.peek("port") == port:
                raise SyscallError(EEXIST, "service exists")
        service = IpvsService(self._kernel, ns, addr, port)
        self.services.append(service)
        ns.ipvs_services.append(service)
        return 0

    @kfunc
    def render_proc_ip_vs(self, task: Task, ns: NetNamespace) -> str:
        """``/proc/net/ip_vs`` — ns check missing on the buggy kernel."""
        lines: List[str] = [
            "IP Virtual Server version 1.2.1 (size=4096)",
            "Prot LocalAddress:Port Scheduler Flags",
        ]
        if self._kernel.bugs.ipvs_proc_no_ns_check:
            visible = list(self.services)
        else:
            visible = [s for s in self.services if s.ns is ns]
        for service in visible:
            lines.append(
                f"TCP  {service.kget('addr'):08X}:{service.kget('port'):04X} wlc"
            )
        return "\n".join(lines) + "\n"
