"""IPv6 flow label management — bugs #2 and #4 (paper §6.1, Figure 5).

Linux uses a two-stage management model.  While no *exclusive* flow label
is registered anywhere, any process may stamp packets with any label and
the expensive collision checks are skipped.  The moment one exclusive
label exists, the strict model kicks in: using an unregistered label on
``sendto`` (bug #2) or ``connect`` (bug #4) is rejected.

The root cause of both bugs is that the mode switch,
``ipv6_flowlabel_exclusive``, is a **global static key** rather than
per-net-namespace state: one container registering an exclusive label
flips every other container into the strict model.

The static key is a *jump label* — implemented by code patching, not by
a normal memory access — so KIT's profiling instrumentation cannot see
reads of it.  :class:`JumpLabel` reproduces that: with
``config.jump_label`` enabled, reads/writes bypass the traced arena
entirely (data-flow analysis is blind to them, §6.1); with the config
off, the key degrades to an ordinary traced cell, and the data-flow
analysis finds the bug.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errno import EEXIST, EINVAL, EPERM, SyscallError
from ..ktrace import kfunc
from ..memory import KCell, KernelArena, KStruct
from ..task import Task
from .netns import NetNamespace

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Kernel

#: ``IPV6_FLOWLABEL_MGR`` share modes (``linux/in6.h``).
FL_SHARE_NONE = 0
FL_SHARE_ANY = 255
FL_SHARE_PROCESS = 1
FL_SHARE_USER = 2
FL_SHARE_EXCL = 4

#: ``flr_action`` values.
FL_ACTION_GET = 1
FL_ACTION_PUT = 2

_LABEL_MASK = 0xFFFFF


class JumpLabel:
    """A static-branch key, optionally invisible to memory tracing.

    ``CONFIG_JUMP_LABEL=y`` (the default in distro kernels) implements
    static keys by code patching; the paper notes this hides the
    ``ipv6_flowlabel_exclusive`` data flow from KIT's instrumentation.
    """

    __slots__ = ("_patched", "_count", "_cell")

    def __init__(self, arena: KernelArena, patched: bool):
        self._patched = patched
        self._count = 0
        self._cell: Optional[KCell] = None if patched else KCell(arena, 4)

    def inc(self) -> None:
        if self._patched:
            self._count += 1
        else:
            # depth=3: credit the call site, as static-key code patching
            # would place the write at each inlined location.
            self._cell.set(self._cell.peek() + 1, depth=3)

    def dec(self) -> None:
        if self._patched:
            self._count -= 1
        else:
            self._cell.set(self._cell.peek() - 1, depth=3)

    def enabled(self) -> bool:
        if self._patched:
            return self._count > 0
        # depth=3: each static_branch_unlikely() use site is a distinct
        # instruction in the real kernel; credit the caller's line.
        return self._cell.get(depth=3) > 0

    def peek_count(self) -> int:
        return self._count if self._patched else self._cell.peek()


class FlowLabel(KStruct):
    """One registered flow label (``struct ip6_flowlabel``)."""

    FIELDS = {"label": 4, "share": 4, "owner_pid": 4}

    def __init__(self, arena: KernelArena, label: int, share: int, owner_pid: int):
        super().__init__(arena, label=label, share=share, owner_pid=owner_pid)


class FlowLabelSubsystem:
    """Flow label registration and the send/connect-time checks."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        #: The global static key — shared by all namespaces (the bug).
        self.exclusive_global = JumpLabel(kernel.arena, patched=kernel.config.jump_label)

    @property
    def tracer(self):
        return self._kernel.tracer

    @kfunc
    def fl_create(self, task: Task, ns: NetNamespace, label: int, share: int) -> int:
        """Register a flow label (``IPV6_FLOWLABEL_MGR`` / ``FL_ACTION_GET``)."""
        label &= _LABEL_MASK
        if label == 0:
            raise SyscallError(EINVAL, "label 0 is reserved")
        if ns.flowlabels.lookup(label) is not None:
            existing = ns.flowlabels.lookup(label)
            if existing.kget("share") == FL_SHARE_EXCL or share == FL_SHARE_EXCL:
                raise SyscallError(EEXIST, f"label {label:#x} taken")
            return 0
        entry = FlowLabel(self._kernel.arena, label, share, task.pid)
        ns.flowlabels.insert(label, entry)
        if self._fl_shared_exclusive(share):
            # fl_create(): static_branch_deferred_inc(&ipv6_flowlabel_exclusive)
            # — the increment is *global*, which is the root cause of
            # bugs #2 and #4.  The fixed kernel accounts per-namespace.
            if self._kernel.bugs.flowlabel_exclusive_global:
                self.exclusive_global.inc()
            else:
                ns.flowlabel_exclusive.set(ns.flowlabel_exclusive.peek() + 1)
        return 0

    @kfunc
    def fl_release(self, task: Task, ns: NetNamespace, label: int) -> int:
        label &= _LABEL_MASK
        entry = ns.flowlabels.lookup(label)
        if entry is None:
            raise SyscallError(EINVAL, f"label {label:#x} not registered")
        ns.flowlabels.delete(label)
        if self._fl_shared_exclusive(entry.kget("share")):
            if self._kernel.bugs.flowlabel_exclusive_global:
                self.exclusive_global.dec()
            else:
                ns.flowlabel_exclusive.set(ns.flowlabel_exclusive.peek() - 1)
        return 0

    @staticmethod
    def _fl_shared_exclusive(share: int) -> bool:
        return share == FL_SHARE_EXCL

    @kfunc
    def check_flowlabel_xmit(self, task: Task, ns: NetNamespace, label: int) -> None:
        """``fl6_sock_lookup`` check on the ``ip6_sendmsg`` path (bug #2).

        In the lenient model this is a no-op.  In the strict model the
        label must be registered in the namespace; unregistered labels
        are rejected — which is how the receiver observes the bug.

        The static-key read is written out inline (rather than shared
        with the connect path) because ``static_branch_unlikely`` is
        inlined per use site in the real kernel: the transmit-path and
        connect-path checks are *different instructions*, which is what
        lets DF-IA distinguish bugs #2 and #4 (Table 2 counts them
        separately).
        """
        label &= _LABEL_MASK
        if label == 0:
            return
        if self._kernel.bugs.flowlabel_exclusive_global:
            strict = self.exclusive_global.enabled()
        else:
            strict = ns.flowlabel_exclusive.get() > 0
        if strict:
            self._require_registered(task, ns, label)

    @kfunc
    def check_flowlabel_connect(self, task: Task, ns: NetNamespace, label: int) -> None:
        """``fl6_sock_lookup`` check on the ``ip6_datagram_connect`` path
        (bug #4).  See :meth:`check_flowlabel_xmit` for why the static-key
        read is duplicated here."""
        label &= _LABEL_MASK
        if label == 0:
            return
        if self._kernel.bugs.flowlabel_exclusive_global:
            strict = self.exclusive_global.enabled()
        else:
            strict = ns.flowlabel_exclusive.get() > 0
        if strict:
            self._require_registered(task, ns, label)

    @kfunc
    def _require_registered(self, task: Task, ns: NetNamespace, label: int) -> None:
        """Strict-model lookup: shared tail of both check paths."""
        entry = ns.flowlabels.lookup(label)
        if entry is None:
            raise SyscallError(EPERM, f"unregistered flow label {label:#x}")
        if entry.kget("share") == FL_SHARE_EXCL and entry.kget("owner_pid") != task.pid:
            raise SyscallError(EPERM, f"exclusive flow label {label:#x}")
