"""The socket layer: creation, binding, data transfer, accounting.

Hosts four of the Table-2 bugs directly:

* **#5** — the ``sockets: used`` counter shown by ``/proc/net/sockstat``
  is a single global incremented by every socket creation in any
  namespace (fixed: per-namespace counter).
* **#6** — socket cookies are assigned from a global monotonically
  increasing allocator, so a container generating cookies changes the
  values other containers observe (fixed: per-namespace allocator).
* **#8 / #9** — protocol memory accounting (``sk_memory_allocated``) is
  global per protocol; the totals surface in the ``mem`` column of
  ``/proc/net/sockstat`` (#8) and the ``memory`` column of
  ``/proc/net/protocols`` (#9).

and routes bind/connect/transmit through the flow label (bugs #2/#4),
RDS (#3), SCTP (#7), conntrack (D/F) and unix-diag (G) subsystems.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errno import (
    EADDRINUSE,
    EAGAIN,
    ECONNREFUSED,
    EINVAL,
    EISCONN,
    ENOENT,
    ENOTCONN,
    EOPNOTSUPP,
    EPROTONOSUPPORT,
    ESRCH,
    SyscallError,
)
from ..fdtable import FileObject
from ..klock import KLock
from ..ktrace import kfunc
from ..memory import KCell, KDict
from ..namespaces import NamespaceType
from ..task import Task
from .netns import NetNamespace

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Kernel

# -- address families -------------------------------------------------------
AF_UNIX = 1
AF_INET = 2
AF_NETLINK = 16
AF_PACKET = 17
AF_RDS = 21
AF_INET6 = 10

# -- socket types -------------------------------------------------------------
SOCK_STREAM = 1
SOCK_DGRAM = 2
SOCK_RAW = 3
SOCK_SEQPACKET = 5

# -- protocols ----------------------------------------------------------------
IPPROTO_TCP = 6
IPPROTO_UDP = 17
IPPROTO_SCTP = 132
NETLINK_ROUTE = 0
NETLINK_KOBJECT_UEVENT = 15

# -- socket options -----------------------------------------------------------
SOL_SOCKET = 1
SO_COOKIE = 57
SOL_IPV6 = 41
IPV6_FLOWLABEL_MGR = 32
IPV6_FLOWINFO_SEND = 33
SOL_SCTP = 132
SCTP_GET_ASSOC_ID = 1
SCTP_SOCKOPT_CONNECTX = 2

#: Memory "pages" charged per transmitted buffer (sk_mem accounting).
_PAGES_PER_SEND = 1


def _resource_kind(family: int, sock_type: int, proto: int) -> str:
    """The syzlang-lite resource identifier for a socket fd."""
    if family == AF_PACKET:
        return "sock_packet"
    if family == AF_RDS:
        return "sock_rds"
    if family == AF_UNIX:
        return "sock_unix"
    if family == AF_NETLINK:
        if proto == NETLINK_KOBJECT_UEVENT:
            return "sock_netlink_uevent"
        if proto == NETLINK_ROUTE:
            return "sock_netlink_route"
        return "sock_netlink"
    if proto == IPPROTO_SCTP:
        return "sock_sctp"
    if family == AF_INET6:
        return "sock_tcp6" if sock_type == SOCK_STREAM else "sock_udp6"
    if sock_type == SOCK_STREAM:
        return "sock_tcp"
    return "sock_udp"


def _proto_name(family: int, sock_type: int, proto: int) -> str:
    if proto == IPPROTO_SCTP:
        return "SCTP"
    if family in (AF_INET, AF_INET6):
        return "TCP" if sock_type == SOCK_STREAM else "UDP"
    if family == AF_UNIX:
        return "UNIX"
    if family == AF_PACKET:
        return "PACKET"
    if family == AF_RDS:
        return "RDS"
    return "NETLINK"


class Socket(FileObject):
    """An open socket."""

    def __init__(self, kernel: "Kernel", netns: NetNamespace,
                 family: int, sock_type: int, proto: int):
        super().__init__()
        self.netns = netns
        self.family = family
        self.type = sock_type
        self.proto = proto
        self.proto_name = _proto_name(family, sock_type, proto)
        self.bound: Optional[Tuple[int, int]] = None
        self.connected: Optional[Tuple[int, int]] = None
        self.listening = False
        self.flowlabel = 0
        self.cookie = 0
        self.sctp_assoc_id = 0
        self.rds_bound_key: Optional[Tuple[int, int]] = None
        self.ptype_entry = None
        self.unix_ino = 0
        self.rx_queue: List[str] = []
        #: Pending inbound connections (filled by connect, drained by accept).
        self.accept_queue: List["Socket"] = []
        #: Protocol memory pages currently charged to this socket.
        self.pages_charged = 0

    @property
    def resource_kind(self) -> str:  # type: ignore[override]
        return _resource_kind(self.family, self.type, self.proto)

    def describe(self) -> str:
        return f"socket({self.proto_name})"

    def on_close(self, kernel: "Kernel", task: Task) -> None:
        kernel.net.release(self)


class UnixSocketTable:
    """Global registry of unix sockets by inode — known bug G.

    The ``sock_diag``-style lookup on the buggy kernel searches sockets
    of **all** namespaces by inode (commit 0f5da659d8f1 fixed the
    namespace check).  The inode is allocated at runtime, so a fixed
    receiver program cannot know the value the sender obtained — the
    class of bug §6.2 explains functional interference testing cannot
    detect.
    """

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self.by_ino = KDict(kernel.arena)
        # Inodes come from the kernel-wide anonymous inode counter;
        # like real inode numbers they are far outside anything a
        # pre-written test program would guess (the crux of bug G's
        # non-detectability, §6.2).
        self.ino_next = KCell(kernel.arena, 8, init=0xBEEF0000)
        # unix_table_lock: the real kernel holds it while allocating an
        # inode and linking the socket into the table.  The diag lookup
        # and /proc walk read the table *without* it (RCU-side in the
        # real kernel) — so bug G's cross-namespace reads stay visible
        # to the race analysis while the create path's write pair does
        # not race with itself.
        self.lock = KLock("unix_table_lock")


class NetSubsystem:
    """Socket syscall implementations plus global accounting state."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        arena = kernel.arena
        #: Global 'sockets: used' counter (bug #5; fixed twin is per-ns).
        self.sockets_used_global = KCell(arena, 4)
        #: Global socket cookie allocator (bug #6).
        self.cookie_next_global = KCell(arena, 8)
        #: Global per-protocol memory accounting (bugs #8/#9).
        self.proto_mem_global: Dict[str, KCell] = {
            "TCP": KCell(arena, 8),
            "UDP": KCell(arena, 8),
            "SCTP": KCell(arena, 8),
        }
        #: In-flight fragment memory of sends being assembled (race bug
        #: T1; fixed twin is per-ns).  Charged and released within one
        #: sendto, so only a concurrent reader can see it non-zero.
        self.frag_inflight_global = KCell(arena, 8)
        self.unix = UnixSocketTable(kernel)

    @property
    def tracer(self):
        return self._kernel.tracer

    @staticmethod
    def _netns_of(task: Task) -> NetNamespace:
        ns = task.nsproxy.get(NamespaceType.NET)
        assert isinstance(ns, NetNamespace)
        return ns

    # -- creation / release -------------------------------------------------

    @kfunc
    def socket_create(self, task: Task, family: int, sock_type: int, proto: int) -> Socket:
        ns = self._netns_of(task)
        self._validate_triple(family, sock_type, proto)
        sock = Socket(self._kernel, ns, family, sock_type, proto)
        self._account_socket(ns, sock, created=True)
        # Initial buffer allocation charges protocol memory — a second
        # call site of the (globally mis-accounted) sk_mem path, like
        # the many inlined sk_mem_charge sites in the real kernel.
        self._charge_memory(ns, sock, _PAGES_PER_SEND)
        if family == AF_PACKET:
            sock.ptype_entry = self._kernel.ptype.dev_add_pack(sock, proto)
        if family == AF_UNIX:
            with self.unix.lock:
                sock.unix_ino = self.unix.ino_next.add(1)
                self.unix.by_ino.insert(sock.unix_ino, sock)
        return sock

    def _validate_triple(self, family: int, sock_type: int, proto: int) -> None:
        if family not in (AF_UNIX, AF_INET, AF_INET6, AF_NETLINK, AF_PACKET, AF_RDS):
            raise SyscallError(EINVAL, f"family {family}")
        if family == AF_RDS and sock_type != SOCK_SEQPACKET:
            raise SyscallError(EPROTONOSUPPORT, "RDS is SOCK_SEQPACKET")
        if proto == IPPROTO_SCTP and family not in (AF_INET, AF_INET6):
            raise SyscallError(EPROTONOSUPPORT, "SCTP is inet-only")
        if family == AF_NETLINK and proto not in (NETLINK_KOBJECT_UEVENT,
                                                   NETLINK_ROUTE):
            raise SyscallError(EPROTONOSUPPORT,
                               "only uevent/route netlink modelled")

    @kfunc
    def _account_socket(self, ns: NetNamespace, sock: Socket, created: bool) -> None:
        delta = 1 if created else -1
        # sock_inuse_add(): the buggy kernel counts into one global cell.
        if self._kernel.bugs.sockstat_used_global:
            self.sockets_used_global.add(delta)
        else:
            ns.sockets_used.add(delta)
        # Per-protocol inuse is per-namespace even on the buggy kernel.
        ns.proto_inuse_cell(self._kernel.arena, sock.proto_name).add(delta)

    @kfunc
    def release(self, sock: Socket) -> None:
        ns = sock.netns
        self._account_socket(ns, sock, created=False)
        # sk_mem_uncharge: destruction releases the pages this socket
        # charged, so a create-then-close sender leaves the accounting
        # exactly as it found it (transient interference — only the
        # concurrency extension can witness it).
        if sock.pages_charged:
            self._charge_memory(ns, sock, -sock.pages_charged)
            sock.pages_charged = 0
        if sock.ptype_entry is not None:
            self._kernel.ptype.dev_remove_pack(sock.ptype_entry)
            sock.ptype_entry = None
        if sock.rds_bound_key is not None:
            self._kernel.rds.rds_release(sock, ns)
        if sock.unix_ino and sock.unix_ino in self.unix.by_ino.peek_items():
            self.unix.by_ino.delete(sock.unix_ino)
        if sock.bound is not None and sock.family in (AF_INET, AF_INET6):
            key = (sock.proto_name, sock.bound[0], sock.bound[1])
            if ns.port_table.lookup(key) is sock:
                ns.port_table.delete(key)

    # -- bind / listen / connect ------------------------------------------

    @kfunc
    def bind(self, task: Task, sock: Socket, addr: int, port: int) -> int:
        ns = self._netns_of(task)
        if sock.bound is not None:
            raise SyscallError(EINVAL, "already bound")
        if sock.family == AF_RDS:
            self._kernel.rds.rds_bind(sock, ns, addr, port)
            sock.bound = (addr, port)
            return 0
        if sock.family in (AF_INET, AF_INET6):
            key = (sock.proto_name, addr, port)
            if port != 0 and ns.port_table.lookup(key) is not None:
                raise SyscallError(EADDRINUSE)
            ns.port_table.insert(key, sock)
            sock.bound = (addr, port)
            return 0
        if sock.family in (AF_UNIX, AF_NETLINK, AF_PACKET):
            sock.bound = (addr, port)
            return 0
        raise SyscallError(EOPNOTSUPP)

    @kfunc
    def listen(self, task: Task, sock: Socket) -> int:
        if sock.family not in (AF_INET, AF_INET6, AF_UNIX):
            raise SyscallError(EOPNOTSUPP)
        if sock.bound is None:
            raise SyscallError(EINVAL, "listen on unbound socket")
        sock.listening = True
        return 0

    @kfunc
    def connect(self, task: Task, sock: Socket, addr: int, port: int) -> int:
        ns = self._netns_of(task)
        if sock.connected is not None:
            raise SyscallError(EISCONN)
        if sock.family == AF_INET6 and sock.flowlabel:
            # ip6_datagram_connect() -> fl6_sock_lookup(): bug #4's check.
            self._kernel.flowlabel.check_flowlabel_connect(task, ns, sock.flowlabel)
        if sock.proto == IPPROTO_SCTP:
            # Creating the association draws an ID — bug #7's allocator.
            self._kernel.sctp.assoc_request(sock, ns)
            sock.connected = (addr, port)
            return 0
        if sock.family in (AF_INET, AF_INET6) and sock.type == SOCK_STREAM:
            key = (sock.proto_name, addr, port)
            peer = ns.port_table.lookup(key)
            if peer is None or not peer.listening:
                raise SyscallError(ECONNREFUSED)
            sock.connected = (addr, port)
            peer.accept_queue.append(sock)
            return 0
        # Datagram "connect" just pins the default destination.
        sock.connected = (addr, port)
        return 0

    @kfunc
    def accept(self, task: Task, sock: Socket) -> Socket:
        """``accept(2)``: dequeue one pending connection."""
        ns = self._netns_of(task)
        if not sock.listening:
            raise SyscallError(EINVAL, "accept on non-listening socket")
        if not sock.accept_queue:
            raise SyscallError(EAGAIN)
        client = sock.accept_queue.pop(0)
        child = Socket(self._kernel, ns, sock.family, sock.type, sock.proto)
        self._account_socket(ns, child, created=True)
        self._charge_memory(ns, child, _PAGES_PER_SEND)
        child.connected = client.bound or (0, 0)
        return child

    @kfunc
    def getsockname(self, task: Task, sock: Socket) -> Tuple[int, int]:
        """``getsockname(2)``: the socket's bound address."""
        return sock.bound or (0, 0)

    # -- data transfer -------------------------------------------------------

    @kfunc
    def sendto(self, task: Task, sock: Socket, size: int, addr: int, port: int) -> int:
        ns = self._netns_of(task)
        if size < 0:
            raise SyscallError(EINVAL)
        if sock.family == AF_NETLINK:
            raise SyscallError(EOPNOTSUPP)
        if sock.family == AF_INET6 and sock.flowlabel:
            # ip6_sendmsg() path: bug #2's check.
            self._kernel.flowlabel.check_flowlabel_xmit(task, ns, sock.flowlabel)
        if sock.type == SOCK_STREAM and sock.connected is None \
                and sock.family in (AF_INET, AF_INET6):
            raise SyscallError(ENOTCONN)
        self._charge_memory(ns, sock, _PAGES_PER_SEND)
        # Fragment assembly: in-flight memory is charged while the
        # datagram is built and released before sendto returns (race
        # bug T1 — the global counter is only ever non-zero *inside*
        # this window).
        self._charge_frag(ns, _PAGES_PER_SEND)
        try:
            if sock.proto == IPPROTO_UDP or (sock.family in (AF_INET, AF_INET6)
                                             and sock.type == SOCK_DGRAM):
                src_port = sock.bound[1] if sock.bound else 0
                self._kernel.conntrack.track(ns, "udp", src_port, port)
                peer = ns.port_table.lookup((sock.proto_name, addr, port))
                if peer is None:
                    # Authorized cross-namespace route: a veth pair wires
                    # this namespace to others (paper §2's "valid
                    # communication channels").
                    for linked_ns in ns.veth_peers:
                        peer = linked_ns.port_table.lookup(
                            (sock.proto_name, addr, port))
                        if peer is not None:
                            break
                if peer is not None:
                    peer.rx_queue.append("x" * size)
        finally:
            self._release_frag(ns, _PAGES_PER_SEND)
        return size

    @kfunc
    def _charge_frag(self, ns: NetNamespace, pages: int) -> None:
        """``frag_mem_add`` — global on the buggy kernel (race bug T1)."""
        if self._kernel.bugs.frag_inflight_global:
            self.frag_inflight_global.add(pages)
        else:
            ns.frag_inflight.add(pages)

    @kfunc
    def _release_frag(self, ns: NetNamespace, pages: int) -> None:
        """``frag_mem_sub`` — the release half of the T1 window."""
        if self._kernel.bugs.frag_inflight_global:
            self.frag_inflight_global.add(-pages)
        else:
            ns.frag_inflight.add(-pages)

    @kfunc
    def _charge_memory(self, ns: NetNamespace, sock: Socket, pages: int) -> None:
        """``sk_memory_allocated_add`` — global on the buggy kernel (#8/#9)."""
        if sock.proto_name not in self.proto_mem_global:
            return
        if self._kernel.bugs.proto_mem_global:
            self.proto_mem_global[sock.proto_name].add(pages)
        else:
            ns.proto_mem_cell(self._kernel.arena, sock.proto_name).add(pages)
        sock.pages_charged += pages

    @kfunc
    def recvfrom(self, task: Task, sock: Socket, count: int) -> str:
        ns = self._netns_of(task)
        if sock.family == AF_NETLINK and sock.proto == NETLINK_KOBJECT_UEVENT:
            if len(ns.uevent_queue) == 0:
                raise SyscallError(EAGAIN)
            return ns.uevent_queue.pop_front()[:count]
        if not sock.rx_queue:
            raise SyscallError(EAGAIN)
        return sock.rx_queue.pop(0)[:count]

    # -- socket options ---------------------------------------------------------

    @kfunc
    def setsockopt(self, task: Task, sock: Socket, level: int, optname: int,
                   value: int, extra: int = 0) -> int:
        ns = self._netns_of(task)
        if level == SOL_IPV6 and optname == IPV6_FLOWLABEL_MGR:
            if sock.family != AF_INET6:
                raise SyscallError(EINVAL, "flow labels are IPv6-only")
            return self._kernel.flowlabel.fl_create(task, ns, value, extra)
        if level == SOL_IPV6 and optname == IPV6_FLOWINFO_SEND:
            if sock.family != AF_INET6:
                raise SyscallError(EINVAL)
            sock.flowlabel = value & 0xFFFFF
            return 0
        if level == SOL_SCTP and optname == SCTP_SOCKOPT_CONNECTX:
            if sock.proto != IPPROTO_SCTP:
                raise SyscallError(EINVAL)
            self._kernel.sctp.assoc_request(sock, ns)
            return 0
        raise SyscallError(ENOENT, f"sockopt {level}/{optname}")

    @kfunc
    def getsockopt(self, task: Task, sock: Socket, level: int, optname: int) -> int:
        ns = self._netns_of(task)
        if level == SOL_SOCKET and optname == SO_COOKIE:
            return self._sock_gen_cookie(ns, sock)
        if level == SOL_SCTP and optname == SCTP_GET_ASSOC_ID:
            if sock.proto != IPPROTO_SCTP:
                raise SyscallError(EINVAL)
            if sock.sctp_assoc_id == 0:
                raise SyscallError(ENOTCONN, "no association yet")
            return sock.sctp_assoc_id
        raise SyscallError(ENOENT, f"sockopt {level}/{optname}")

    @kfunc
    def _sock_gen_cookie(self, ns: NetNamespace, sock: Socket) -> int:
        """Lazily assign the socket cookie — bug #6's allocator."""
        if sock.cookie == 0:
            if self._kernel.bugs.socket_cookie_global:
                sock.cookie = self.cookie_next_global.add(1)
            else:
                sock.cookie = ns.cookie_next.add(1)
        return sock.cookie

    # -- sock_diag (bug G) ---------------------------------------------------

    @kfunc
    def unix_diag_by_ino(self, task: Task, ino: int) -> Dict[str, int]:
        """Query a unix socket by inode, as SOCK_DIAG does.

        Buggy kernel: matches sockets in any namespace.  Fixed kernel:
        only the caller's.  Detecting the buggy variant requires knowing
        the exact runtime-allocated inode — which is why KIT (correctly)
        cannot detect it (§6.2).
        """
        ns = self._netns_of(task)
        sock = self.unix.by_ino.lookup(ino)
        if sock is None:
            raise SyscallError(ENOENT)
        if not self._kernel.bugs.unix_diag_cross_ns and sock.netns is not ns:
            raise SyscallError(ENOENT)
        return {"udiag_ino": ino, "udiag_type": sock.type}

    # -- procfs renderers ---------------------------------------------------

    @kfunc
    def render_sockstat(self, task: Task, ns: NetNamespace) -> str:
        """``/proc/net/sockstat`` — bugs #5 (used) and #8 (mem)."""
        if self._kernel.bugs.sockstat_used_global:
            used = self.sockets_used_global.get()
        else:
            used = ns.sockets_used.get()
        lines = [f"sockets: used {used}"]
        for proto in ("TCP", "UDP"):
            inuse = ns.proto_inuse_cell(self._kernel.arena, proto).get()
            # sockstat_seq_show reads sk_memory_allocated: a distinct
            # instruction from the /proc/net/protocols reader (bug #8).
            if self._kernel.bugs.proto_mem_global:
                mem = self.proto_mem_global[proto].get()
            else:
                mem = ns.proto_mem_cell(self._kernel.arena, proto).get()
            lines.append(f"{proto}: inuse {inuse} mem {mem}")
        # sockstat's FRAG line reads in-flight fragment memory: always 0
        # between syscalls, transiently non-zero inside a send (T1).
        if self._kernel.bugs.frag_inflight_global:
            frag = self.frag_inflight_global.get()
        else:
            frag = ns.frag_inflight.get()
        lines.append(f"FRAG: inflight {frag}")
        return "\n".join(lines) + "\n"

    @kfunc
    def render_protocols(self, task: Task, ns: NetNamespace) -> str:
        """``/proc/net/protocols`` — bug #9 (memory column)."""
        lines = ["protocol  size sockets  memory"]
        for proto, size in (("TCP", 2048), ("UDP", 1088), ("SCTP", 1824)):
            inuse = ns.proto_inuse_cell(self._kernel.arena, proto).get()
            # proto_seq_show's own read of sk_memory_allocated (bug #9).
            if self._kernel.bugs.proto_mem_global:
                mem = self.proto_mem_global[proto].get()
            else:
                mem = ns.proto_mem_cell(self._kernel.arena, proto).get()
            lines.append(f"{proto:<9} {size:4d} {inuse:7d} {mem:7d}")
        return "\n".join(lines) + "\n"

    @kfunc
    def render_proc_unix(self, task: Task, ns: NetNamespace) -> str:
        """``/proc/net/unix`` — correctly filtered by namespace here."""
        lines = ["Num       RefCount Protocol Flags    Type St Inode"]
        for ino in sorted(self.unix.by_ino.peek_items()):
            sock = self.unix.by_ino.lookup(ino)
            if sock.netns is not ns:
                continue
            lines.append(
                f"0000000000000000: 00000002 00000000 00000000 "
                f"{sock.type:04d} 01 {ino}"
            )
        return "\n".join(lines) + "\n"
