"""Per-network-namespace state (``struct net``).

Every field here is state Linux keeps (or, post-fix, *should* keep) per
network namespace.  The buggy global twins of several of these fields
live in :mod:`repro.kernel.net.socket` and friends; which copy a code
path consults is decided by the kernel's bug registry, so flipping a bug
flag toggles between the vulnerable and the patched kernel.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..memory import KCell, KDict, KernelArena, KList
from ..namespaces import Namespace, NamespaceType


class NetNamespace(Namespace):
    """A network namespace instance."""

    NS_TYPE = NamespaceType.NET
    FIELDS = {"inum": 8, "ifindex_next": 4}

    def __init__(self, arena: KernelArena, inum: int):
        super().__init__(arena, inum)
        self.poke("ifindex_next", 0)

        # -- socket accounting (per-ns copies; fixed kernels use these) --
        #: 'sockets: used' counter of /proc/net/sockstat (bug #5's fixed twin).
        self.sockets_used = KCell(arena, 4)
        #: socket cookie allocator (bug #6's fixed twin).
        self.cookie_next = KCell(arena, 8)
        #: SCTP association ID allocator (bug #7's fixed twin).
        self.sctp_assoc_next = KCell(arena, 4)
        #: per-protocol inuse counts (always per-ns, as in Linux).
        self.proto_inuse = KDict(arena)
        #: per-protocol memory pages (bugs #8/#9's fixed twin).
        self.proto_mem = KDict(arena)
        #: in-flight fragment memory (race bug T1's fixed twin).
        self.frag_inflight = KCell(arena, 8)
        #: in-flight device registrations (race bug T3's fixed twin).
        self.netdev_pending = KDict(arena)

        # -- IPv6 flow labels ------------------------------------------
        #: label -> FlowLabel struct, per-ns as documented.
        self.flowlabels = KDict(arena)
        #: per-ns exclusive-label count (bugs #2/#4's fixed twin).
        self.flowlabel_exclusive = KCell(arena, 4)

        # -- port/bind tables (per-ns, correct) -------------------------
        #: (proto, addr, port) -> Socket.
        self.port_table = KDict(arena)
        #: RDS per-ns bind table (bug #3's fixed twin).
        self.rds_binds = KDict(arena)

        # -- devices and uevents ----------------------------------------
        #: name -> NetDevice.
        self.devices = KDict(arena)
        #: Namespaces this one is wired to by veth pairs — the paper's
        #: §2 "authorized means" of cross-container communication.
        self.veth_peers: List[Any] = []
        #: pending kobject uevent payloads for listeners in this ns
        #: (traced: uevent delivery is a kernel data flow, known bug B).
        self.uevent_queue = KList(arena)

        # -- netfilter ---------------------------------------------------
        #: per-ns conntrack entry list (fixed twin of the global list).
        self.conntrack = KList(arena)
        #: per-ns nf_conntrack_max (bug D's fixed twin).
        self.nf_conntrack_max = KCell(arena, 4, init=65536)
        #: per-ns IPVS service list (bug C's fixed twin).
        self.ipvs_services = KList(arena)

        # -- unix ---------------------------------------------------------
        #: per-ns abstract-address allocator.
        self.unix_autobind_next = KCell(arena, 4)

    def alloc_ifindex(self) -> int:
        ifindex = self.peek("ifindex_next") + 1
        self.poke("ifindex_next", ifindex)
        return ifindex

    def proto_inuse_cell(self, arena: KernelArena, proto: str) -> KCell:
        cell = self.proto_inuse.lookup(proto)
        if cell is None:
            cell = KCell(arena, 4)
            self.proto_inuse.insert(proto, cell)
        return cell

    def proto_mem_cell(self, arena: KernelArena, proto: str) -> KCell:
        cell = self.proto_mem.lookup(proto)
        if cell is None:
            cell = KCell(arena, 8)
            self.proto_mem.insert(proto, cell)
        return cell
