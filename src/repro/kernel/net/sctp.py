"""SCTP association IDs — bug #7.

SCTP hands every association an identifier from an IDR.  The ID space is
**global**, not per network namespace: a container creating associations
advances the allocator for everyone, so the IDs observed by another
container change.  The paper reports that developers acknowledged the
space "ought to be" per-namespace but left it unfixed due to the
implementation effort involved (the bug's Table 2 status is "Known").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..ktrace import kfunc
from ..memory import KCell
from .netns import NetNamespace

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Kernel
    from .socket import Socket


class SctpSubsystem:
    """The SCTP association ID allocator(s)."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        #: The global IDR cursor shared by all namespaces (the bug).
        self.assoc_next_global = KCell(kernel.arena, 4)

    @property
    def tracer(self):
        return self._kernel.tracer

    @kfunc
    def assoc_request(self, sock: "Socket", ns: NetNamespace) -> int:
        """Create an association and return its ID."""
        if self._kernel.bugs.sctp_assoc_id_global:
            assoc_id = self.assoc_next_global.add(1)
        else:
            assoc_id = ns.sctp_assoc_next.add(1)
        sock.sctp_assoc_id = assoc_id
        return assoc_id
