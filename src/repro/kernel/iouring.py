"""io_uring path resolution — known bug E (CVE-2020-29373, Linux 5.6).

io_uring defers filesystem operations to kernel worker threads.  On the
buggy kernel those workers resolved paths with the *init* task's
filesystem context instead of the submitting task's, so a process that
had unmounted (or never could see) a host mount could still traverse it
by routing the open through io_uring — escaping its mount namespace.

The model collapses the SQE/CQE machinery into two operations (a path
read and a directory listing) that take the same wrong-namespace turn.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from .errno import EISDIR, ENOTDIR, SyscallError
from .fdtable import FileObject
from .ktrace import kfunc
from .task import Task
from .vfs import MntNamespace

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class IoUringFile(FileObject):
    """An io_uring instance fd."""

    resource_kind = "fd_io_uring"

    def describe(self) -> str:
        return "io_uring"


class IoUringSubsystem:
    """The (simplified) io_uring submission paths."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel

    @property
    def tracer(self):
        return self._kernel.tracer

    @kfunc
    def setup(self, task: Task) -> IoUringFile:
        return IoUringFile()

    def _resolution_ns(self, task: Task) -> MntNamespace:
        """The mount namespace the worker resolves paths in.

        Buggy kernel: the init mount namespace (the escape).  Fixed
        kernel: the submitter's own namespace, like a plain syscall.
        """
        if self._kernel.bugs.iouring_wrong_mnt_ns:
            return self._kernel.init_mnt_ns
        from .namespaces import NamespaceType

        ns = task.nsproxy.get(NamespaceType.MNT)
        assert isinstance(ns, MntNamespace)
        return ns

    @kfunc
    def read_path(self, task: Task, path: str, count: int) -> str:
        """IORING_OP_OPENAT + IORING_OP_READ on *path*."""
        vfs = self._kernel.vfs
        mount, inode, __ = vfs.lookup(task, path, mnt_ns=self._resolution_ns(task))
        if inode.is_dir:
            raise SyscallError(EISDIR, path)
        if inode.proc_key is not None:
            content = self._kernel.procfs.render(task, inode.proc_key)
        else:
            content = inode.content
        return content[:max(count, 0)]

    @kfunc
    def list_path(self, task: Task, path: str) -> List[str]:
        """IORING_OP_OPENAT + getdents-equivalent on a directory."""
        vfs = self._kernel.vfs
        mount, inode, relative = vfs.lookup(task, path, mnt_ns=self._resolution_ns(task))
        if not inode.is_dir:
            raise SyscallError(ENOTDIR, path)
        return vfs.list_dir(mount, relative)
