"""The kernel crypto algorithm table behind ``/proc/crypto``.

``/proc/crypto`` is **not** protected by any namespace — it is genuinely
global in Linux.  A sender allocating a transform bumps the algorithm's
reference count, which a receiver can observe through ``/proc/crypto``.

That is real, deterministic, cross-container interference on an
*unprotected* resource: exactly the class of candidate report that KIT's
specification filter must drop (paper §6.4 reports such cases among the
filtered false positives).  This module exists to exercise that filter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from .errno import ENOENT, SyscallError
from .ktrace import kfunc
from .memory import KDict, KernelArena, KStruct
from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: Algorithms registered at boot, as a real kernel would have.
BUILTIN_ALGORITHMS = ("sha256", "aes", "crc32c", "ghash")


class CryptoAlg(KStruct):
    """One entry of the global crypto algorithm table."""

    FIELDS = {"refcnt": 4, "priority": 4}

    def __init__(self, arena: KernelArena, name: str, priority: int = 100):
        super().__init__(arena, refcnt=1, priority=priority)
        self.name = name


class CryptoSubsystem:
    """Global (non-namespaced) crypto algorithm registry."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self.algorithms = KDict(kernel.arena)
        for name in BUILTIN_ALGORITHMS:
            self.algorithms.insert(name, CryptoAlg(kernel.arena, name))

    @property
    def tracer(self):
        return self._kernel.tracer

    @kfunc
    def crypto_alloc(self, task: Task, name: str) -> int:
        """Allocate a transform: bumps the global refcount (interference!)."""
        alg = self.algorithms.lookup(name)
        if alg is None:
            raise SyscallError(ENOENT, f"no algorithm {name!r}")
        alg.kset("refcnt", alg.kget("refcnt") + 1)
        return 0

    @kfunc
    def render_proc_crypto(self, task: Task) -> str:
        """Render ``/proc/crypto`` — identical for every reader namespace."""
        lines: List[str] = []
        for name in sorted(self.algorithms.peek_items()):
            alg = self.algorithms.lookup(name)
            lines.append(f"name         : {name}")
            lines.append(f"refcnt       : {alg.kget('refcnt')}")
            lines.append(f"priority     : {alg.kget('priority')}")
            lines.append("")
        return "\n".join(lines)
