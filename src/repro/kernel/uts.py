"""UTS namespace: hostname isolation.

A correctly-isolated subsystem — it exists so campaigns exercise syscalls
on protected resources that do *not* interfere, keeping the true-negative
path honest.
"""

from __future__ import annotations

from .errno import EINVAL, SyscallError
from .memory import KernelArena
from .namespaces import Namespace, NamespaceType

_HOST_NAME_MAX = 64


class UtsNamespace(Namespace):
    """A UTS namespace instance holding the hostname."""

    NS_TYPE = NamespaceType.UTS
    FIELDS = {"inum": 8, "hostname": 8}

    def __init__(self, arena: KernelArena, inum: int, hostname: str = "kit-vm"):
        super().__init__(arena, inum)
        self.poke("hostname", hostname)

    def set_hostname(self, name: str) -> None:
        if not name or len(name) > _HOST_NAME_MAX:
            raise SyscallError(EINVAL, "hostname length")
        self.kset("hostname", name)

    def get_hostname(self) -> str:
        return self.kget("hostname")
