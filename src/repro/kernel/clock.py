"""Virtual time for the simulated kernel.

All timing in the simulator derives from one virtual clock so executions
are perfectly repeatable *except* for the boot offset, which the test
harness varies deliberately.

This models the paper's approach to non-determinism (§4.3.2): system-call
results that depend on invocation time (timestamps in ``fstat``, the
uptime file, …) vary across receiver re-executions *because KIT re-runs
the receiver with different starting times*.  Here, "different starting
time" is literally a different ``boot_offset``.

The clock is deliberately **not traced** by the memory instrumentation —
the paper excludes timekeeping/debug internals from instrumentation since
they produce non-deterministic traces that swamp the data-flow analysis.
"""

from __future__ import annotations

#: Virtual nanoseconds advanced per timer tick (one tick per syscall).
#: 100 ms approximates a heavily instrumented syscall's wall-clock cost
#: and — importantly for fidelity — makes a preceding sender execution
#: shift the receiver's time-derived results across second boundaries,
#: reproducing the timing-induced candidate reports that dominate the
#: paper's Table-5 funnel (15,353 -> 891 after non-det filtering).
TICK_NS = 100_000_000

#: Default virtual boot time: seconds since the epoch, arbitrary but fixed.
DEFAULT_BOOT_NS = 1_600_000_000 * 1_000_000_000


class VirtualClock:
    """Deterministic kernel clock: ``now = boot_offset + ticks * TICK_NS``.

    ``tick()`` is invoked by the kernel's timer interrupt between
    syscalls; the amount of virtual time elapsed therefore depends only
    on the syscall sequence executed, never on wall-clock time.
    """

    __slots__ = ("boot_offset_ns", "ticks")

    def __init__(self, boot_offset_ns: int = DEFAULT_BOOT_NS):
        self.boot_offset_ns = boot_offset_ns
        self.ticks = 0

    def tick(self, count: int = 1) -> None:
        """Advance virtual time by *count* timer interrupts."""
        self.ticks += count

    def now_ns(self) -> int:
        """Current virtual time in nanoseconds since the virtual epoch."""
        return self.boot_offset_ns + self.ticks * TICK_NS

    def now_sec(self) -> int:
        return self.now_ns() // 1_000_000_000

    def uptime_ns(self) -> int:
        """Nanoseconds since (virtual) boot."""
        return self.ticks * TICK_NS

    def rebase(self, boot_offset_ns: int) -> None:
        """Change the boot offset — the harness's 'different starting time'."""
        self.boot_offset_ns = boot_offset_ns
