"""Kernel execution tracing — the simulated analogue of KIT's compiler
instrumentation (paper §5.1).

The real KIT instruments the kernel with a GCC GIMPLE pass so that, at run
time, the kernel emits a chronological trace with three entry types:

* *function enter* (carrying a unique per-function ID assigned at compile
  time),
* *function exit*, and
* *memory access* (address, width, read/write flag, instruction address).

The trace consumer then maintains a *simulated call stack* — pushing on
enter entries and popping on exit entries — to recover the call-stack
context of each memory access.

This module reproduces that design for the simulated kernel:

* ``@kfunc`` marks a Python function as an instrumented kernel function.
  A unique function ID is assigned at decoration ("compile") time.
* :class:`KernelTracer` is the runtime trace sink.  The memory arena
  (:mod:`repro.kernel.memory`) reports every load/store to it.
* "Instruction addresses" are synthesized from the source location of the
  kernel-model code performing the access, which is exactly as stable as
  a real instruction address is across identical builds.

Like the paper's implementation, the tracer skips accesses made in
interrupt context (``in_task()`` check) and can be restricted to the
kernel thread servicing the profiled test program.
"""

from __future__ import annotations

import functools
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Trace entry kinds, mirroring the three entry types of §5.1.
FUNC_ENTER = 0
FUNC_EXIT = 1
MEM_ACCESS = 2


@dataclass(frozen=True)
class FuncEnter:
    """A function-entry trace record."""

    func_id: int

    kind = FUNC_ENTER


@dataclass(frozen=True)
class FuncExit:
    """A function-exit trace record."""

    func_id: int

    kind = FUNC_EXIT


@dataclass(frozen=True)
class MemAccess:
    """A kernel memory access trace record.

    ``ip`` is the instruction address — in this model, a stable integer
    identifying the kernel-model source line that performed the access.
    """

    addr: int
    width: int
    is_write: bool
    ip: int

    kind = MEM_ACCESS


TraceEntry = object  # FuncEnter | FuncExit | MemAccess


class FunctionRegistry:
    """Assigns compile-time unique IDs to instrumented kernel functions.

    The registry is global, like the paper's per-function IDs baked in by
    the compiler pass: IDs depend only on module import order, which is
    deterministic for a fixed code base.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, int] = {}
        self._names: List[str] = []

    def register(self, name: str) -> int:
        if name in self._by_name:
            return self._by_name[name]
        func_id = len(self._names)
        self._by_name[name] = func_id
        self._names.append(name)
        return func_id

    def name_of(self, func_id: int) -> str:
        return self._names[func_id]

    def id_of(self, name: str) -> int:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._names)


class InstructionRegistry:
    """Maps kernel-model source locations to stable "instruction addresses".

    A location is a ``(filename, lineno)`` pair; the registry hands out
    monotonically increasing addresses starting at a kernel-ish base.
    """

    _BASE = 0xFFFFFFFF81000000

    def __init__(self) -> None:
        self._by_loc: Dict[Tuple[str, int], int] = {}
        self._locs: List[Tuple[str, int]] = []

    def address_for(self, filename: str, lineno: int) -> int:
        key = (filename, lineno)
        ip = self._by_loc.get(key)
        if ip is None:
            ip = self._BASE + len(self._locs)
            self._by_loc[key] = ip
            self._locs.append(key)
        return ip

    def location_of(self, ip: int) -> Tuple[str, int]:
        return self._locs[ip - self._BASE]

    def __len__(self) -> int:
        return len(self._locs)


#: Process-wide registries ("compile-time" state, not kernel state).
FUNCTIONS = FunctionRegistry()
INSTRUCTIONS = InstructionRegistry()


#: Thread-local preemption-hook slot.  Thread-local (not kernel state)
#: because thread-mode shards run concurrent machines in one process:
#: each worker's controlled-interleaving run must only observe its own
#: machine's instrumentation points.
_PREEMPTION = threading.local()

#: A preemption hook receives ``(func_id, kind)`` at every instrumented
#: kernel-function boundary, where *kind* is FUNC_ENTER or FUNC_EXIT.
PreemptionHook = Callable[[int, int], None]


def preemption_hook() -> Optional[PreemptionHook]:
    """The hook active on this thread, or None."""
    return getattr(_PREEMPTION, "hook", None)


@contextmanager
def preemption_scope(hook: PreemptionHook) -> Iterator[None]:
    """Install *hook* at every ``@kfunc`` boundary for the dynamic extent.

    Unlike the tracer the hook fires regardless of tracer enablement —
    the controlled scheduler (:mod:`repro.core.schedule`) needs boundary
    events during plain detection runs, which never trace.
    """
    previous = preemption_hook()
    _PREEMPTION.hook = hook
    try:
        yield
    finally:
        _PREEMPTION.hook = previous


@contextmanager
def preemption_suspended() -> Iterator[None]:
    """Mask boundary events for the dynamic extent.

    The kernel wraps interrupt-context work (timer ticks) in this: like
    the tracer's ``in_task()`` check, preemption points belong to the
    task's own syscall execution, not to background interrupts — and
    masking them keeps the event stream a pure function of the executed
    programs.
    """
    previous = preemption_hook()
    _PREEMPTION.hook = None
    try:
        yield
    finally:
        _PREEMPTION.hook = previous


class KernelTracer:
    """Runtime sink for kernel execution traces.

    The tracer is *disabled* by default; profiling runs enable it around
    the syscalls of the profiled test program.  It is never part of a
    kernel snapshot.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.entries: List[TraceEntry] = []
        self._interrupt_depth = 0
        self._stack: List[int] = []

    # -- control ---------------------------------------------------------

    def start(self) -> None:
        self.enabled = True

    def stop(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.entries = []
        self._stack = []

    def drain(self) -> List[TraceEntry]:
        """Return the collected entries and clear the buffer."""
        entries = self.entries
        self.entries = []
        return entries

    @contextmanager
    def interrupt_context(self) -> Iterator[None]:
        """Mark the dynamic extent as interrupt context.

        Mirrors the kernel's ``in_task()`` check: accesses made while an
        interrupt (timer tick, softirq) is being serviced are not traced
        because they do not result from the test program's syscalls and
        would make traces non-deterministic (paper §5.1).
        """
        self._interrupt_depth += 1
        try:
            yield
        finally:
            self._interrupt_depth -= 1

    @property
    def in_task(self) -> bool:
        return self._interrupt_depth == 0

    # -- recording -------------------------------------------------------

    def on_func_enter(self, func_id: int) -> None:
        if self.enabled and self.in_task:
            self.entries.append(FuncEnter(func_id))
            self._stack.append(func_id)

    def on_func_exit(self, func_id: int) -> None:
        if self.enabled and self.in_task:
            self.entries.append(FuncExit(func_id))
            if self._stack and self._stack[-1] == func_id:
                self._stack.pop()

    def on_access(self, addr: int, width: int, is_write: bool, ip: int) -> None:
        if self.enabled and self.in_task:
            self.entries.append(MemAccess(addr, width, is_write, ip))

    @property
    def current_stack(self) -> Tuple[int, ...]:
        """The live simulated call stack (function IDs, outermost first)."""
        return tuple(self._stack)


def kfunc(func: Optional[Callable] = None, *, instrument: bool = True) -> Callable:
    """Decorator marking a kernel-model function as instrumented.

    On every call the wrapper emits function enter/exit records to the
    kernel's tracer, allowing call-stack recovery exactly as in §5.1.
    Functions that do not return exactly once (the paper's ``noreturn``
    case) must be declared with ``instrument=False`` and are skipped.

    The decorated function's first argument must carry a ``tracer``
    attribute (by convention the :class:`~repro.kernel.kernel.Kernel`
    or a subsystem holding a back-reference to it).
    """

    def decorate(fn: Callable) -> Callable:
        if not instrument:
            fn.kit_func_id = None
            return fn

        func_id = FUNCTIONS.register(fn.__qualname__)

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            hook = getattr(_PREEMPTION, "hook", None)
            tracer = self.tracer
            traced = tracer is not None and tracer.enabled
            if hook is None and not traced:
                return fn(self, *args, **kwargs)
            if hook is not None:
                hook(func_id, FUNC_ENTER)
            if traced:
                tracer.on_func_enter(func_id)
            try:
                return fn(self, *args, **kwargs)
            finally:
                if traced:
                    tracer.on_func_exit(func_id)
                if hook is not None:
                    hook(func_id, FUNC_EXIT)

        wrapper.kit_func_id = func_id
        return wrapper

    if func is not None:
        return decorate(func)
    return decorate


def caller_instruction(depth: int = 2) -> int:
    """Synthesize the instruction address of the caller *depth* frames up."""
    frame = sys._getframe(depth)
    return INSTRUCTIONS.address_for(frame.f_code.co_filename, frame.f_lineno)


def walk_with_stack(entries: List[TraceEntry]) -> Iterator[Tuple[MemAccess, Tuple[int, ...]]]:
    """Yield ``(access, call_stack)`` pairs from a raw execution trace.

    Reimplements the paper's simulated call stack: push the function ID on
    enter entries, pop on exit entries, and read the stack off for every
    memory-access entry.  The stack tuple is outermost-first.
    """
    stack: List[int] = []
    for entry in entries:
        if entry.kind == FUNC_ENTER:
            stack.append(entry.func_id)
        elif entry.kind == FUNC_EXIT:
            if stack and stack[-1] == entry.func_id:
                stack.pop()
        else:
            yield entry, tuple(stack)
