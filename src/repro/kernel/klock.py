"""Kernel lock objects for the simulated kernel.

The model runs single-threaded — a syscall executes atomically — so a
:class:`KLock` never blocks.  It exists so the kernel source *states*
its locking discipline the way the real kernel does: critical sections
are wrapped in ``with self.lock:`` and the static lockset analysis
(:mod:`repro.analysis.races`) reads those blocks as must-held facts.
Two syscalls whose accesses to a shared location are both under the
same ``KLock`` are provably ordered on a real kernel and drop out of
the race-pair candidate set; an access outside any common lock stays a
candidate.

The lock is reentrant (a depth counter, like the real kernel's nested
``lock_sock``/``release_sock`` idiom) and carries only plain attributes
so kernel snapshots deep-copy and pickle it for free.
"""

from __future__ import annotations


class KLock:
    """No-op reentrant lock marking a critical section in the model."""

    def __init__(self, name: str):
        #: Canonical name, for diagnostics only — the static analysis
        #: identifies the lock by the state path it hangs off, not this.
        self.name = name
        self.depth = 0

    def __enter__(self) -> "KLock":
        self.depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.depth -= 1

    def held(self) -> bool:
        return self.depth > 0

    def __repr__(self) -> str:
        return f"KLock({self.name!r}, depth={self.depth})"
