"""Linux error numbers used by the simulated kernel.

Only the errno values that the simulated syscall surface can actually
return are defined.  Values match ``asm-generic/errno.h`` so that decoded
traces read like real strace output.
"""

from __future__ import annotations

EPERM = 1
ENOENT = 2
ESRCH = 3
EINTR = 4
EIO = 5
EBADF = 9
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EBUSY = 16
EXDEV = 18
EEXIST = 17
ENODEV = 19
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENFILE = 23
EMFILE = 24
ENOTTY = 25
ENOSPC = 28
ESPIPE = 29
EROFS = 30
ERANGE = 34
ENOSYS = 38
ENOTEMPTY = 39
ELOOP = 40
ENOMSG = 42
EIDRM = 43
ENOTSOCK = 88
EDESTADDRREQ = 89
EMSGSIZE = 90
EPROTONOSUPPORT = 93
EOPNOTSUPP = 95
EAFNOSUPPORT = 97
EADDRINUSE = 98
EADDRNOTAVAIL = 99
ENETUNREACH = 101
ECONNABORTED = 103
ECONNRESET = 104
ENOBUFS = 105
EISCONN = 106
ENOTCONN = 107
ETIMEDOUT = 110
ECONNREFUSED = 111
EALREADY = 114
EINPROGRESS = 115

_NAMES = {
    value: name
    for name, value in sorted(globals().items())
    if name.isupper() and isinstance(value, int)
}


def errno_name(errno: int) -> str:
    """Return the symbolic name for *errno* (e.g. ``1`` -> ``"EPERM"``)."""
    return _NAMES.get(errno, f"E?{errno}")


class SyscallError(Exception):
    """Raised by syscall handlers to signal an errno result.

    The executor converts this into a ``-1`` return value with the
    carried errno, mirroring the kernel/libc contract.
    """

    def __init__(self, errno: int, message: str = ""):
        super().__init__(message or errno_name(errno))
        self.errno = errno

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyscallError({errno_name(self.errno)})"
