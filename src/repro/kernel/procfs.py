"""procfs: the kernel's window into namespace-protected (and some
unprotected) state.

``/proc/net/*`` renders against the *reader's* network namespace, like
Linux (where ``/proc/net`` is a per-namespace magic symlink).  Several of
these files are the receiver-side observation point of the paper's bugs:

========================================  =======================
File                                      Bug observed through it
========================================  =======================
``/proc/net/ptype``                       #1 (packet_type leak)
``/proc/net/sockstat``                    #5 (used), #8 (mem)
``/proc/net/protocols``                   #9 (memory column)
``/proc/net/ip_vs``                       known bug C
``/proc/sys/net/netfilter/…_max``         known bug D
``/proc/net/nf_conntrack``                known bug F (non-detectable)
``/proc/crypto``                          unprotected (FP filter food)
``/proc/uptime``, ``/proc/meminfo``       time-dependent (non-det food)
========================================  =======================
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, List, Optional

from .errno import EACCES, EINVAL, SyscallError
from .ktrace import kfunc
from .namespaces import NamespaceType
from .task import Task
from .vfs import Inode, SuperBlock

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: Static directory layout (dir key -> entry names).
_DIRECTORIES: Dict[str, List[str]] = {
    "": ["net", "sys", "sysvipc", "self", "crypto", "uptime", "meminfo",
         "mounts", "loadavg", "stat", "version"],
    "net": ["ptype", "sockstat", "protocols", "dev", "ip_vs",
            "nf_conntrack", "unix", "tcp", "udp"],
    "sys": ["net", "kernel"],
    "sys/net": ["netfilter"],
    "sys/net/netfilter": ["nf_conntrack_max"],
    "sys/kernel": ["hostname"],
    "sysvipc": ["msg"],
    "self": ["status", "ns", "cgroup", "timens_offsets"],
    "self/ns": ["pid", "mnt", "uts", "ipc", "net", "user", "cgroup", "time"],
}

_FILES = {
    "net/ptype", "net/sockstat", "net/protocols", "net/dev", "net/ip_vs",
    "net/nf_conntrack", "net/unix", "net/tcp", "net/udp",
    "sys/net/netfilter/nf_conntrack_max", "sys/kernel/hostname",
    "sysvipc/msg", "crypto", "uptime", "meminfo", "mounts", "loadavg",
    "stat", "version",
}

_STATUS_RE = re.compile(r"^(self|\d+)/status$")
_CGROUP_RE = re.compile(r"^(self|\d+)/cgroup$")


class ProcFs:
    """Lazy inode table plus the render/write dispatchers."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel

    @property
    def tracer(self):
        return self._kernel.tracer

    # -- lookup ---------------------------------------------------------------

    def lookup(self, sb: SuperBlock, relative: str) -> Optional[Inode]:
        """Find (lazily creating) the inode for a proc path."""
        inode = sb.files.lookup(relative)
        if inode is not None:
            return inode
        if relative in _DIRECTORIES:
            inode = sb._new_inode(self._kernel.arena, is_dir=True, mtime=0)
        elif relative in _FILES or _STATUS_RE.match(relative) or \
                _CGROUP_RE.match(relative) or \
                relative == "self/timens_offsets" or \
                relative.startswith("self/ns/"):
            inode = sb._new_inode(self._kernel.arena, is_dir=False, mtime=0)
            inode.proc_key = relative
        else:
            return None
        sb.files.insert(relative, inode)
        return inode

    def list_dir(self, relative: str, task: Optional[Task] = None) -> List[str]:
        names = list(_DIRECTORIES.get(relative, []))
        if relative == "" and task is not None:
            # Per-process entries visible in the reader's PID namespace.
            names += [str(vpid) for vpid in
                      sorted(task.pid_ns.tasks.peek_items())]
        return sorted(names)

    # -- read -----------------------------------------------------------------

    @kfunc
    def render(self, task: Task, key: str) -> str:
        """Produce the file content for *key* as seen by *task*."""
        kernel = self._kernel
        net_ns = task.nsproxy.get(NamespaceType.NET)
        if key == "net/ptype":
            return kernel.ptype.render_proc_ptype(task, net_ns)
        if key == "net/sockstat":
            return kernel.net.render_sockstat(task, net_ns)
        if key == "net/protocols":
            return kernel.net.render_protocols(task, net_ns)
        if key == "net/dev":
            return kernel.netdev.render_proc_dev(task, net_ns)
        if key == "net/ip_vs":
            return kernel.ipvs.render_proc_ip_vs(task, net_ns)
        if key == "net/nf_conntrack":
            return kernel.conntrack.render_proc_conntrack(task, net_ns)
        if key == "net/unix":
            return kernel.net.render_proc_unix(task, net_ns)
        if key == "sys/net/netfilter/nf_conntrack_max":
            return f"{kernel.conntrack.sysctl_read_max(task, net_ns)}\n"
        if key == "sys/kernel/hostname":
            uts = task.nsproxy.get(NamespaceType.UTS)
            return f"{uts.get_hostname()}\n"
        if key == "crypto":
            return kernel.crypto.render_proc_crypto(task)
        if key == "uptime":
            uptime = kernel.clock.uptime_ns() / 1e9
            # The idle column depends on boot time: inherently non-det.
            idle = (kernel.clock.boot_offset_ns // 1_000_000_000) % 89 / 10.0
            return f"{uptime:.2f} {idle:.2f}\n"
        if key == "meminfo":
            free_kb = 8_000_000 + (kernel.clock.now_sec() % 97) * 16
            return (
                "MemTotal:       16384000 kB\n"
                f"MemFree:        {free_kb} kB\n"
            )
        if key == "loadavg":
            # Load depends on machine history: boot-offset jittered.
            base = (kernel.clock.boot_offset_ns // 1_000_000_000) % 7
            load = base / 10.0 + kernel.clock.ticks % 5 / 100.0
            runnable = 1 + base % 2
            return (f"{load:.2f} {load:.2f} {load:.2f} "
                    f"{runnable}/{len(kernel.tasks.all_tasks())} 0\n")
        if key == "stat":
            # Aggregate CPU time: pure function of ticks (deterministic
            # given the execution, shifted by a preceding sender).
            ticks = kernel.clock.ticks
            return (f"cpu  {ticks} 0 {ticks // 2} {ticks * 10}\n"
                    f"ctxt {kernel.syscall_seq * 3}\n"
                    f"processes {len(kernel.tasks.all_tasks())}\n")
        if key == "version":
            return (
                f"Linux version {self._kernel.config.version} "
                "(kit@sim) (gcc 9.3.0) #1 SMP\n"
            )
        if key == "mounts":
            return kernel.vfs.render_proc_mounts(task)
        if key == "sysvipc/msg":
            return self._render_sysvipc_msg(task)
        if key in ("net/tcp", "net/udp"):
            return self._render_net_sockets(task, key.rsplit("/", 1)[-1])
        if _STATUS_RE.match(key):
            return self._render_status(task, key.split("/", 1)[0])
        if _CGROUP_RE.match(key):
            target = self._resolve_pid(task, key.split("/", 1)[0])
            return kernel.cgroup.render_proc_cgroup(task, target)
        if key == "self/timens_offsets":
            time_ns = task.nsproxy.get(NamespaceType.TIME)
            return (f"monotonic {time_ns.kget('monotonic_offset')}\n"
                    f"boottime {time_ns.kget('boottime_offset')}\n")
        if key.startswith("self/ns/"):
            ns_type_name = key.rsplit("/", 1)[-1]
            from .nsfs import NS_FILE_NAMES

            ns_type = NS_FILE_NAMES.get(ns_type_name)
            if ns_type is None:
                raise SyscallError(EINVAL, key)
            return f"{ns_type_name}:[{task.nsproxy.get(ns_type).inum}]\n"
        raise SyscallError(EINVAL, f"unknown proc key {key!r}")

    def _resolve_pid(self, reader: Task, who: str) -> Task:
        if who == "self":
            return reader
        target = self._kernel.tasks.find_in_ns(reader.pid_ns, int(who))
        if target is None:
            raise SyscallError(EINVAL, f"no pid {who} here")
        return target

    def _render_status(self, reader: Task, who: str) -> str:
        """``/proc/<pid>/status`` — PIDs translated into the reader's
        namespace, the visibility boundary the PID namespace enforces."""
        target = self._resolve_pid(reader, who)
        vpid = target.vpid_in(reader.pid_ns) or 0
        # NSpid: the pid at each namespace level, outermost-visible first,
        # starting from the reader's namespace (as Linux renders it).
        ns_chain = [ns for ns in target.pid_ns.ancestry()][::-1]
        visible = [str(target.vpid_in(ns)) for ns in ns_chain
                   if target.vpid_in(ns) is not None
                   and (ns is reader.pid_ns or ns.peek("level") >=
                        reader.pid_ns.peek("level"))]
        return (
            f"Name:\t{target.comm}\n"
            f"Pid:\t{vpid}\n"
            f"NSpid:\t{' '.join(visible) or vpid}\n"
            f"Uid:\t{target.peek('uid')}\n"
        )

    def _render_sysvipc_msg(self, task: Task) -> str:
        """``/proc/sysvipc/msg`` — the reader's IPC namespace only."""
        ipc_ns = task.nsproxy.get(NamespaceType.IPC)
        lines = ["       key      msqid  qnum  lspid  lrpid"]
        for msqid in sorted(ipc_ns.msg_queues.peek_items()):
            queue = ipc_ns.msg_queues.lookup(msqid)
            lines.append(f"{queue.kget('key'):>10} {msqid:>10} "
                         f"{queue.kget('qnum'):>5} {queue.kget('lspid'):>6} "
                         f"{queue.kget('lrpid'):>6}")
        # In-flight msgget registrations: always empty between syscalls,
        # but a controlled interleaving can observe the T2 window
        # mid-syscall (the half-initialized entry has no msqid yet).
        ipc = self._kernel.ipc
        if self._kernel.bugs.msg_pending_global:
            pending = sorted(ipc.msg_pending_global)
        else:
            pending = sorted(ipc_ns.msg_pending)
        for key in pending:
            lines.append(f"{key:>10} {'-':>10} {0:>5} {0:>6} {0:>6}")
        return "\n".join(lines) + "\n"

    def _render_net_sockets(self, task: Task, proto: str) -> str:
        """``/proc/net/tcp`` / ``udp`` — bound sockets of the reader's
        namespace (correctly per-namespace, like Linux)."""
        net_ns = task.nsproxy.get(NamespaceType.NET)
        wanted = proto.upper()
        lines = ["  sl  local_address st"]
        index = 0
        for key in sorted(net_ns.port_table.peek_items()):
            proto_name, addr, port = key
            if proto_name != wanted:
                continue
            sock = net_ns.port_table.lookup(key)
            state = "0A" if sock.listening else "07"
            lines.append(f"{index:>4}: {addr:08X}:{port:04X} {state}")
            index += 1
        return "\n".join(lines) + "\n"

    # -- write ----------------------------------------------------------------

    @kfunc
    def write(self, task: Task, key: str, data: str) -> int:
        kernel = self._kernel
        net_ns = task.nsproxy.get(NamespaceType.NET)
        if key == "sys/net/netfilter/nf_conntrack_max":
            try:
                value = int(data.strip())
            except ValueError:
                raise SyscallError(EINVAL, "not a number") from None
            kernel.conntrack.sysctl_write_max(task, net_ns, value)
            return len(data)
        if key == "sys/kernel/hostname":
            uts = task.nsproxy.get(NamespaceType.UTS)
            uts.set_hostname(data.strip())
            return len(data)
        if key == "self/timens_offsets":
            # "monotonic <ns>" / "boottime <ns>", as Linux accepts.
            time_ns = task.nsproxy.get(NamespaceType.TIME)
            try:
                clock_name, offset = data.split()
                field = {"monotonic": "monotonic_offset",
                         "boottime": "boottime_offset"}[clock_name]
                time_ns.kset(field, int(offset))
            except (ValueError, KeyError):
                raise SyscallError(EINVAL, "timens_offsets format") from None
            return len(data)
        raise SyscallError(EACCES, f"{key} is read-only")
