"""The simulated Linux kernel — KIT's system under test.

This package is the substrate substitution for Linux 5.13 under
QEMU/KVM: a picklable kernel state machine exposing the same two
observation surfaces KIT uses on real kernels — syscall results and
instrumented kernel memory-access traces.  See DESIGN.md for the full
substitution argument.
"""

from .bugs import BugFlags, fixed_kernel, known_bug_kernel, linux_5_13
from .errno import SyscallError, errno_name
from .kernel import Kernel, KernelConfig, SyscallResult
from .ktrace import KernelTracer
from .namespaces import NamespaceType

__all__ = [
    "BugFlags",
    "Kernel",
    "KernelConfig",
    "KernelTracer",
    "NamespaceType",
    "SyscallError",
    "SyscallResult",
    "errno_name",
    "fixed_kernel",
    "known_bug_kernel",
    "linux_5_13",
]
