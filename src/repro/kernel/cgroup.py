"""Cgroups and the cgroup namespace (Table 1: "Cgroups root directory").

The model covers what the namespace isolates: a global cgroup hierarchy
(paths), each task's membership, and the *virtualized view* through
``/proc/self/cgroup`` — a task sees its cgroup path relative to its
namespace's root, and Linux renders paths outside that root with a
``/..`` escape marker (which is precisely the information the namespace
exists to hide).

``unshare(CLONE_NEWCGROUP)`` pins the new namespace's root to the
caller's current cgroup, as in Linux.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errno import EEXIST, ENOENT, SyscallError
from .ktrace import kfunc
from .memory import KDict, KStruct
from .namespaces import CgroupNamespace, NamespaceType
from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class Cgroup(KStruct):
    """One node of the global cgroup hierarchy."""

    FIELDS = {"nr_tasks": 4}

    def __init__(self, kernel: "Kernel", path: str):
        super().__init__(kernel.arena)
        self.path = path


class CgroupSubsystem:
    """The global hierarchy plus membership and the procfs view."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self.groups = KDict(kernel.arena)
        self.groups.insert("/", Cgroup(kernel, "/"))

    @property
    def tracer(self):
        return self._kernel.tracer

    # -- hierarchy ---------------------------------------------------------

    @kfunc
    def create(self, task: Task, path: str) -> int:
        """mkdir in cgroupfs: create a (namespace-relative) cgroup."""
        absolute = self.resolve(task, path)
        if self.groups.lookup(absolute) is not None:
            raise SyscallError(EEXIST, absolute)
        parent = absolute.rsplit("/", 1)[0] or "/"
        if self.groups.lookup(parent) is None:
            raise SyscallError(ENOENT, f"parent {parent}")
        self.groups.insert(absolute, Cgroup(self._kernel, absolute))
        return 0

    @kfunc
    def enter(self, task: Task, path: str) -> int:
        """Write to cgroup.procs: move the task into a cgroup."""
        absolute = self.resolve(task, path)
        target = self.groups.lookup(absolute)
        if target is None:
            raise SyscallError(ENOENT, absolute)
        current = self.groups.lookup(task.cgroup_path)
        if current is not None:
            current.kset("nr_tasks", max(0, current.peek("nr_tasks") - 1))
        target.kset("nr_tasks", target.peek("nr_tasks") + 1)
        task.cgroup_path = absolute
        return 0

    def resolve(self, task: Task, path: str) -> str:
        """A namespace-relative path -> the global hierarchy path."""
        root = self._ns_root(task)
        if not path.startswith("/"):
            raise SyscallError(ENOENT, path)
        if root == "/":
            return path
        return root if path == "/" else root + path

    def _ns_root(self, task: Task) -> str:
        ns = task.nsproxy.get(NamespaceType.CGROUP)
        root = ns.peek("root_path")
        return root if isinstance(root, str) and root else "/"

    # -- views ----------------------------------------------------------------

    @kfunc
    def render_proc_cgroup(self, reader: Task, target: Task) -> str:
        """``/proc/<pid>/cgroup`` as seen from *reader*'s namespace."""
        root = self._ns_root(reader)
        path = target.cgroup_path
        if root != "/":
            if path == root:
                path = "/"
            elif path.startswith(root + "/"):
                path = path[len(root):]
            else:
                # Outside the reader's root: Linux shows an escape marker
                # instead of the real location.
                path = "/.."
        return f"0::{path}\n"

    def on_unshare(self, task: Task, namespace: CgroupNamespace) -> None:
        """CLONE_NEWCGROUP pins the new root to the caller's cgroup."""
        namespace.poke("root_path", task.cgroup_path)
