"""Tasks, PID namespaces, and scheduler priorities.

The task model carries exactly the state the tested syscall surface
needs: credentials, an fd table, an nsproxy, per-PID-namespace PID
numbers, and a nice value.

PID namespaces form a hierarchy; a task created in namespace *N* has a
PID number in *N* and in every ancestor of *N* (``struct pid`` has one
``upid`` per level), which is what makes cross-namespace PID visibility
bugs (like the msgctl IPC_STAT leak of §2.1) expressible.

Known bug A (paper Table 3) lives here: ``setpriority(PRIO_USER, …)`` on
the buggy kernel walks *every* task of the matching UID in the system,
crossing PID-namespace boundaries; the fixed kernel restricts the walk to
tasks visible in the caller's PID namespace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from .errno import EACCES, EINVAL, ESRCH, SyscallError
from .fdtable import FdTable
from .ktrace import kfunc
from .memory import KDict, KernelArena, KStruct
from .namespaces import Namespace, NamespaceType, NsProxy

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: ``setpriority(2)`` / ``getpriority(2)`` "which" values.
PRIO_PROCESS = 0
PRIO_PGRP = 1
PRIO_USER = 2

PRIO_MIN = -20
PRIO_MAX = 19

#: Capability numbers (linux/capability.h); possession is derived from
#: the task's effective UID, root-in-namespace style.
CAP_NET_ADMIN = 12
CAP_SYS_ADMIN = 21
CAP_SYS_NICE = 23


class PidNamespace(Namespace):
    """A PID namespace instance: its own PID number space."""

    NS_TYPE = NamespaceType.PID
    FIELDS = {"inum": 8, "last_pid": 4, "level": 4}

    def __init__(self, arena: KernelArena, inum: int, parent: Optional["PidNamespace"] = None):
        super().__init__(arena, inum)
        self.parent = parent
        self.poke("level", 0 if parent is None else parent.peek("level") + 1)
        #: vpid -> Task, the processes visible in this namespace.
        self.tasks = KDict(arena)

    def alloc_pid(self) -> int:
        """Allocate the next PID number in this namespace."""
        vpid = self.peek("last_pid") + 1
        self.poke("last_pid", vpid)
        return vpid

    def ancestry(self) -> List["PidNamespace"]:
        """This namespace followed by all ancestors, innermost first."""
        chain: List[PidNamespace] = []
        node: Optional[PidNamespace] = self
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain


class Task(KStruct):
    """A simulated process."""

    FIELDS = {"nice": 4, "uid": 4, "euid": 4}

    def __init__(
        self,
        arena: KernelArena,
        nsproxy: NsProxy,
        uid: int = 0,
        comm: str = "executor",
    ):
        super().__init__(arena, nice=0, uid=uid, euid=uid)
        self.comm = comm
        self.nsproxy = nsproxy
        self.fdtable = FdTable()
        #: Membership in the global cgroup hierarchy.
        self.cgroup_path = "/" 
        #: PidNamespace -> PID number, one entry per level (struct upid).
        self.pid_numbers: Dict[PidNamespace, int] = {}
        self.exited = False

    @property
    def pid_ns(self) -> PidNamespace:
        ns = self.nsproxy.get(NamespaceType.PID)
        assert isinstance(ns, PidNamespace)
        return ns

    def vpid_in(self, pid_ns: PidNamespace) -> Optional[int]:
        """This task's PID as seen from *pid_ns*, or None if invisible."""
        return self.pid_numbers.get(pid_ns)

    def capable(self, capability: int) -> bool:
        """``ns_capable``-style check: root (euid 0) holds every
        capability in its own user namespace.  Container tasks run as
        (namespace-)root by default, like the paper's test setup, so
        privileged namespace operations succeed inside containers —
        which is precisely what makes bugs like D reachable from an
        unprivileged host user."""
        return self.peek("euid") == 0

    @property
    def pid(self) -> int:
        """PID in the task's own namespace."""
        return self.pid_numbers[self.pid_ns]


class TaskTable:
    """All live tasks plus PID allocation across the namespace hierarchy."""

    def __init__(self, arena: KernelArena):
        self._arena = arena
        self.tasks: List[Task] = []

    def attach(self, task: Task) -> None:
        """Register *task*, allocating a PID at every pid-ns level."""
        for level_ns in task.pid_ns.ancestry():
            vpid = level_ns.alloc_pid()
            task.pid_numbers[level_ns] = vpid
            level_ns.tasks.insert(vpid, task)
        self.tasks.append(task)

    def detach(self, task: Task) -> None:
        for level_ns, vpid in task.pid_numbers.items():
            level_ns.tasks.delete(vpid)
        self.tasks.remove(task)
        task.exited = True

    def find_in_ns(self, pid_ns: PidNamespace, vpid: int) -> Optional[Task]:
        return pid_ns.tasks.lookup(vpid)

    def all_tasks(self) -> List[Task]:
        return list(self.tasks)


class Scheduler:
    """The slice of the scheduler the priority syscalls touch.

    Holds a back-reference to the kernel for tracing and bug flags.
    """

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel

    @property
    def tracer(self):
        return self._kernel.tracer

    @kfunc
    def set_user_nice(self, task: Task, nice: int) -> None:
        task.kset("nice", nice)

    @kfunc
    def task_nice(self, task: Task) -> int:
        return task.kget("nice")

    @kfunc
    def set_one_prio(self, caller: Task, task: Task, nice: int) -> None:
        if task.kget("uid") != caller.kget("euid") and caller.kget("euid") != 0:
            return
        self.set_user_nice(task, nice)

    @kfunc
    def sys_setpriority(self, caller: Task, which: int, who: int, nice: int) -> int:
        """``setpriority(2)``.

        PRIO_USER on the buggy kernel (known bug A) iterates every task
        in the system whose UID matches, including tasks in other PID
        namespaces; the fixed kernel only walks tasks visible in the
        caller's PID namespace.
        """
        nice = max(PRIO_MIN, min(PRIO_MAX, nice))
        if nice < 0 and not caller.capable(CAP_SYS_NICE):
            raise SyscallError(EACCES, "raising priority needs CAP_SYS_NICE")
        if which == PRIO_PROCESS:
            task = caller if who == 0 else self._kernel.tasks.find_in_ns(caller.pid_ns, who)
            if task is None:
                raise SyscallError(ESRCH)
            self.set_one_prio(caller, task, nice)
            return 0
        if which == PRIO_PGRP:
            # Process groups are collapsed to single tasks in this model.
            task = caller if who == 0 else self._kernel.tasks.find_in_ns(caller.pid_ns, who)
            if task is None:
                raise SyscallError(ESRCH)
            self.set_one_prio(caller, task, nice)
            return 0
        if which == PRIO_USER:
            uid = caller.kget("euid") if who == 0 else who
            for task in self._iter_user_tasks(caller, uid):
                self.set_one_prio(caller, task, nice)
            return 0
        raise SyscallError(EINVAL)

    @kfunc
    def sys_getpriority(self, caller: Task, which: int, who: int) -> int:
        """``getpriority(2)``; returns the kernel's ``20 - nice`` encoding."""
        if which == PRIO_PROCESS or which == PRIO_PGRP:
            task = caller if who == 0 else self._kernel.tasks.find_in_ns(caller.pid_ns, who)
            if task is None:
                raise SyscallError(ESRCH)
            return 20 - self.task_nice(task)
        if which == PRIO_USER:
            uid = caller.kget("euid") if who == 0 else who
            best: Optional[int] = None
            for task in self._iter_user_tasks(caller, uid):
                nice = self.task_nice(task)
                if best is None or nice < best:
                    best = nice
            if best is None:
                raise SyscallError(ESRCH)
            return 20 - best
        raise SyscallError(EINVAL)

    def _iter_user_tasks(self, caller: Task, uid: int) -> List[Task]:
        """Tasks affected by PRIO_USER — the site of known bug A."""
        bugs = self._kernel.bugs
        candidates = []
        for task in self._kernel.tasks.all_tasks():
            if task.kget("uid") != uid:
                continue
            if not bugs.prio_user_crosses_pidns:
                # Fixed kernel: only tasks visible in the caller's pid ns.
                if task.vpid_in(caller.pid_ns) is None:
                    continue
            candidates.append(task)
        return candidates
