"""Deterministic fault injection + chaos recovery for the campaign.

See :mod:`repro.faults.plan` for the injection model and
``docs/FAULTS.md`` for the site catalogue and recovery semantics.
"""

from .invariants import CacheOwnerLeakError, verify_owner_invariant
from .plan import (
    ALL_SITES,
    SITE_CACHE_EVICT,
    SITE_CACHE_STALE_OWNER,
    SITE_EXEC_TIMEOUT,
    SITE_RESTORE_FAIL,
    SITE_RESULT_DROP,
    SITE_SEGMENT_CORRUPT,
    SITE_WORKER_CRASH,
    SITE_WORKER_SLOW,
    STALE_OWNER,
    ExecTimeoutInjected,
    FaultInjectedError,
    FaultPlan,
    FaultRetriesExhausted,
    FaultStats,
    RestoreFaultInjected,
    WorkerCrashInjected,
    call_with_fault_retries,
    decision,
)

__all__ = [
    "ALL_SITES",
    "CacheOwnerLeakError",
    "ExecTimeoutInjected",
    "FaultInjectedError",
    "FaultPlan",
    "FaultRetriesExhausted",
    "FaultStats",
    "RestoreFaultInjected",
    "SITE_CACHE_EVICT",
    "SITE_CACHE_STALE_OWNER",
    "SITE_EXEC_TIMEOUT",
    "SITE_RESTORE_FAIL",
    "SITE_RESULT_DROP",
    "SITE_SEGMENT_CORRUPT",
    "SITE_WORKER_CRASH",
    "SITE_WORKER_SLOW",
    "STALE_OWNER",
    "WorkerCrashInjected",
    "call_with_fault_retries",
    "decision",
    "verify_owner_invariant",
]
