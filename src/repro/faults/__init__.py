"""Deterministic fault injection + chaos recovery for the campaign.

See :mod:`repro.faults.plan` for the injection model and
``docs/FAULTS.md`` for the site catalogue and recovery semantics.
"""

from .invariants import CacheOwnerLeakError, verify_owner_invariant
from .plan import (
    ALL_SITES,
    SITE_CACHE_EVICT,
    SITE_CACHE_STALE_OWNER,
    SITE_EXEC_TIMEOUT,
    SITE_JOURNAL_TORN,
    SITE_RESTORE_FAIL,
    SITE_RESULT_DROP,
    SITE_SEGMENT_CORRUPT,
    SITE_STORE_FSYNC_FAIL,
    SITE_WORKER_CRASH,
    SITE_WORKER_SLOW,
    STALE_OWNER,
    ExecTimeoutInjected,
    FaultInjectedError,
    FaultPlan,
    FaultRetriesExhausted,
    FaultStats,
    JournalTornInjected,
    RestoreFaultInjected,
    StoreFsyncInjected,
    WorkerCrashInjected,
    call_with_fault_retries,
    decision,
)
from .retry import CAUSE_TRANSIT, CAUSE_WORKER_DEATH, RetryPolicy

__all__ = [
    "ALL_SITES",
    "CAUSE_TRANSIT",
    "CAUSE_WORKER_DEATH",
    "CacheOwnerLeakError",
    "ExecTimeoutInjected",
    "FaultInjectedError",
    "FaultPlan",
    "FaultRetriesExhausted",
    "FaultStats",
    "JournalTornInjected",
    "RestoreFaultInjected",
    "RetryPolicy",
    "SITE_CACHE_EVICT",
    "SITE_CACHE_STALE_OWNER",
    "SITE_EXEC_TIMEOUT",
    "SITE_JOURNAL_TORN",
    "SITE_RESTORE_FAIL",
    "SITE_RESULT_DROP",
    "SITE_SEGMENT_CORRUPT",
    "SITE_STORE_FSYNC_FAIL",
    "SITE_WORKER_CRASH",
    "SITE_WORKER_SLOW",
    "STALE_OWNER",
    "StoreFsyncInjected",
    "WorkerCrashInjected",
    "call_with_fault_retries",
    "decision",
    "verify_owner_invariant",
]
