"""Deterministic, seed-driven fault injection for the campaign substrate.

OS-level failure-injection work (SystemTap fault seeding, eBPF-driven
concurrency perturbation) shows two things: recovery bugs hide on the
paths clean tests never take, and injected faults are only debuggable
when the injection schedule is *reproducible*.  This module provides the
reproducible half: a :class:`FaultPlan` decides, for every registered
injection *site*, whether its *k*-th occurrence fires — as a pure
function of ``(seed, site, k)``.  No global RNG stream is consumed, so
the decision for one site is independent of how occurrences of other
sites interleave; a single-threaded campaign is bit-reproducible, and a
multi-worker campaign keeps deterministic per-``(site, k)`` decisions
(only the *attribution* of a firing to a particular job can vary with
thread scheduling).

Every injection must eventually be accounted for: a recovery path either
absorbs it (``recovered``) or gives up after bounded retries
(``infra_failed``).  :meth:`FaultStats.accounted` checks the books:
``injected == recovered + infra_failed``, per site and in total.
"""

from __future__ import annotations

import random
import threading
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple)

#: Snapshot restore fails outright (vm/snapshot.py, vm/segments.py).
SITE_RESTORE_FAIL = "restore.fail"
#: A dirty segment is silently left unrestored; the canonical-form
#: consistency check is what must catch it (vm/segments.py).
SITE_SEGMENT_CORRUPT = "segment.corrupt"
#: A cluster worker dies mid-job, leaving its job unfinished (vm/cluster.py).
SITE_WORKER_CRASH = "worker.crash"
#: A cluster worker stalls before running its job (vm/cluster.py).
SITE_WORKER_SLOW = "worker.slow"
#: A computed job result is lost before reaching the server (vm/cluster.py).
SITE_RESULT_DROP = "result.drop"
#: A shard process is SIGKILLed mid-job — no unwinding, no cleanup
#: handlers, the hardest death the supervisor must absorb
#: (vm/shardpool.py; process shard mode only).
SITE_WORKER_KILL = "worker.kill"
#: A syscall execution times out mid-program (vm/executor.py).
SITE_EXEC_TIMEOUT = "exec.timeout"
#: A shared-cache entry is spuriously evicted (BaselineCache/NondetStore).
SITE_CACHE_EVICT = "cache.evict"
#: A shared-cache insert is tagged with a stale owner id, so owner-based
#: invalidation can no longer find it (BaselineCache/NondetStore).
SITE_CACHE_STALE_OWNER = "cache.stale_owner"
#: A memoized post-sender state delta is spuriously evicted
#: (SenderStateCache); the caller re-executes the sender from the base
#: snapshot, so the fault is absorbed by construction.
SITE_SENDER_CACHE_EVICT = "sender_cache.evict"
#: A sender-state insert is tagged with a stale owner id, so owner-based
#: invalidation can no longer find it (SenderStateCache).
SITE_SENDER_CACHE_STALE_OWNER = "sender_cache.stale_owner"
#: A campaign-journal append is torn mid-record — only a prefix of the
#: line reaches the file, simulating a crash between ``write`` and the
#: trailing newline; the journal's tail-repair path must truncate the
#: torn bytes before the record is re-written (repro.store.journal).
SITE_JOURNAL_TORN = "journal.torn"
#: An ``fsync`` on the durable campaign store fails (repro.store); the
#: store retries within the plan budget and degrades to flushed-only
#: durability when the budget is exhausted.
SITE_STORE_FSYNC_FAIL = "store.fsync_fail"
#: A controlled-interleaving schedule execution dies mid-run — the
#: machine state is torn between sender and receiver progress, so the
#: whole test case must be retried from the snapshot
#: (repro.core.schedule).
SITE_SCHED_PREEMPT = "sched.preempt"

ALL_SITES: Tuple[str, ...] = (
    SITE_RESTORE_FAIL,
    SITE_SEGMENT_CORRUPT,
    SITE_WORKER_CRASH,
    SITE_WORKER_SLOW,
    SITE_RESULT_DROP,
    SITE_WORKER_KILL,
    SITE_EXEC_TIMEOUT,
    SITE_CACHE_EVICT,
    SITE_CACHE_STALE_OWNER,
    SITE_SENDER_CACHE_EVICT,
    SITE_SENDER_CACHE_STALE_OWNER,
    SITE_JOURNAL_TORN,
    SITE_STORE_FSYNC_FAIL,
    SITE_SCHED_PREEMPT,
)

#: Owner tag written by a :data:`SITE_CACHE_STALE_OWNER` injection —
#: never a real cluster worker id, so owner-based invalidation misses
#: the entry until the end-of-campaign sweep repairs it.
STALE_OWNER = -1

#: Occurrence-frequency compensation applied to the blanket campaign
#: rate.  ``exec.timeout`` fires per *syscall* — orders of magnitude
#: more occurrences than the per-reset / per-job sites — so without
#: scaling, one campaign rate would make nearly every multi-call run
#: fail and bounded retries could never converge.  Explicit per-site
#: ``rates`` overrides are taken verbatim (no scaling): the blanket
#: rate expresses campaign intensity, an override expresses an exact
#: per-occurrence probability.
SITE_RATE_SCALE: Dict[str, float] = {
    SITE_EXEC_TIMEOUT: 0.01,
    # sched.preempt fires once per explored schedule — dozens of
    # occurrences per interleaved case vs. one per-reset occurrence.
    SITE_SCHED_PREEMPT: 0.02,
}


class FaultInjectedError(Exception):
    """Base of every exception raised *by* an injection site."""

    def __init__(self, site: str, message: str = ""):
        self.site = site
        super().__init__(message or f"injected fault at {site}")


class RestoreFaultInjected(FaultInjectedError):
    """A snapshot restore was made to fail."""


class ExecTimeoutInjected(FaultInjectedError):
    """A syscall execution was made to time out."""


class JournalTornInjected(FaultInjectedError):
    """A journal append was torn after writing a partial record."""


class StoreFsyncInjected(FaultInjectedError):
    """A durable-store fsync was made to fail."""


class SchedulePreemptInjected(FaultInjectedError):
    """A controlled-interleaving schedule execution was made to die."""


class WorkerCrashInjected(BaseException):
    """Kills a cluster worker thread mid-job.

    Deliberately a ``BaseException``: it must escape the worker's
    per-job ``except Exception`` handler and take the whole thread down,
    exactly like a real crash would.
    """

    def __init__(self, message: str = "injected worker crash"):
        self.site = SITE_WORKER_CRASH
        super().__init__(message)


class FaultRetriesExhausted(RuntimeError):
    """A recovery path gave up after its bounded retries."""

    def __init__(self, sites: Sequence[str], context: str = ""):
        self.sites = list(sites)
        detail = f" ({context})" if context else ""
        super().__init__(
            f"fault recovery exhausted after {len(self.sites)} injected "
            f"fault(s) [{', '.join(self.sites)}]{detail}")


class FaultStats:
    """Thread-safe injected/recovered/infra-failed/poisoned counters.

    ``poisoned`` is the quarantine column: injections charged to a job
    that killed its workers often enough to be quarantined as a poison
    pair (see :mod:`repro.faults.retry`) land here instead of infra.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.injected: Dict[str, int] = {}
        self.recovered: Dict[str, int] = {}
        self.infra_failed: Dict[str, int] = {}
        self.poisoned: Dict[str, int] = {}

    def note_injected(self, site: str) -> None:
        with self._lock:
            self.injected[site] = self.injected.get(site, 0) + 1

    def note_recovered(self, sites: Iterable[str]) -> None:
        with self._lock:
            for site in sites:
                self.recovered[site] = self.recovered.get(site, 0) + 1

    def note_infra_failed(self, sites: Iterable[str]) -> None:
        with self._lock:
            for site in sites:
                self.infra_failed[site] = self.infra_failed.get(site, 0) + 1

    def note_poisoned(self, sites: Iterable[str]) -> None:
        with self._lock:
            for site in sites:
                self.poisoned[site] = self.poisoned.get(site, 0) + 1

    @property
    def injected_total(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    @property
    def recovered_total(self) -> int:
        with self._lock:
            return sum(self.recovered.values())

    @property
    def infra_failed_total(self) -> int:
        with self._lock:
            return sum(self.infra_failed.values())

    @property
    def poisoned_total(self) -> int:
        with self._lock:
            return sum(self.poisoned.values())

    def accounted(self) -> bool:
        """Every injection was recovered, charged to infra, or poisoned."""
        with self._lock:
            sites = set(self.injected) | set(self.recovered) \
                | set(self.infra_failed) | set(self.poisoned)
            return all(
                self.injected.get(site, 0)
                == self.recovered.get(site, 0)
                + self.infra_failed.get(site, 0)
                + self.poisoned.get(site, 0)
                for site in sites
            )

    def snapshot(self) -> Tuple[Dict[str, int], Dict[str, int],
                                Dict[str, int], Dict[str, int]]:
        with self._lock:
            return (dict(self.injected), dict(self.recovered),
                    dict(self.infra_failed), dict(self.poisoned))

    def merge_delta(self, injected: Mapping[str, int],
                    recovered: Mapping[str, int],
                    infra_failed: Mapping[str, int],
                    poisoned: Optional[Mapping[str, int]] = None) -> None:
        """Fold another process's counter growth into these books.

        Shard processes each carry a forked copy of the plan; they ship
        per-site counter *deltas* (growth since fork) back to the
        supervisor, which merges them here so :meth:`accounted` sees one
        campaign-wide ledger.
        """
        with self._lock:
            for site, count in injected.items():
                self.injected[site] = self.injected.get(site, 0) + count
            for site, count in recovered.items():
                self.recovered[site] = self.recovered.get(site, 0) + count
            for site, count in infra_failed.items():
                self.infra_failed[site] = \
                    self.infra_failed.get(site, 0) + count
            for site, count in (poisoned or {}).items():
                self.poisoned[site] = self.poisoned.get(site, 0) + count


def decision(seed: int, site: str, occurrence: int) -> float:
    """The deterministic draw for one (site, occurrence) pair.

    Seeding :class:`random.Random` with a string goes through SHA-512,
    so the value is stable across processes and unaffected by
    ``PYTHONHASHSEED`` — the reproducibility the whole design rests on.
    """
    return random.Random(f"{seed}:{site}:{occurrence}").random()


class FaultPlan:
    """One campaign's seeded injection schedule, with accounting.

    Probability mode: every enabled site fires its *k*-th occurrence iff
    ``decision(seed, site, k) < rate``.  Schedule mode: a site with an
    explicit occurrence-index set fires exactly at those indices —
    deterministic single-shot placement for targeted tests.
    """

    def __init__(self, seed: int = 0, rate: float = 0.0,
                 rates: Optional[Mapping[str, float]] = None,
                 schedule: Optional[Mapping[str, Iterable[int]]] = None,
                 sites: Optional[Iterable[str]] = None,
                 max_retries: int = 5,
                 max_job_retries: int = 12,
                 slow_seconds: float = 0.001):
        self.seed = seed
        enabled = tuple(sites) if sites is not None else ALL_SITES
        for site in enabled:
            if site not in ALL_SITES:
                raise ValueError(f"unknown fault site {site!r} "
                                 f"(known: {', '.join(ALL_SITES)})")
        self._rates: Dict[str, float] = {
            site: rate * SITE_RATE_SCALE.get(site, 1.0) for site in enabled}
        for site, site_rate in (rates or {}).items():
            if site not in ALL_SITES:
                raise ValueError(f"unknown fault site {site!r}")
            self._rates[site] = site_rate
        self._schedule: Dict[str, frozenset] = {
            site: frozenset(indices)
            for site, indices in (schedule or {}).items()
        }
        for site in self._schedule:
            if site not in ALL_SITES:
                raise ValueError(f"unknown fault site {site!r}")
        #: Bounded-retry budget shared by every recovery path.
        self.max_retries = max_retries
        #: Re-queue budget for cluster jobs, deliberately deeper than
        #: ``max_retries``: a lost attempt (crashed worker, dropped
        #: result) costs one cheap re-run, and at rate *r* with both
        #: cluster sites enabled an attempt is lost with probability
        #: ≈ 2r — the budget keeps exhaustion vanishingly rare at the
        #: rates chaos campaigns actually use.
        self.max_job_retries = max_job_retries
        #: Stall length for :data:`SITE_WORKER_SLOW` injections.
        self.slow_seconds = slow_seconds
        self.stats = FaultStats()
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}

    # -- the injection decision ---------------------------------------------

    def should_inject(self, site: str) -> bool:
        """Advance *site*'s occurrence counter and decide injection."""
        with self._lock:
            occurrence = self._counters.get(site, 0)
            self._counters[site] = occurrence + 1
        fired = self._fires(site, occurrence)
        if fired:
            self.stats.note_injected(site)
        return fired

    def _fires(self, site: str, occurrence: int) -> bool:
        scheduled = self._schedule.get(site)
        if scheduled is not None:
            return occurrence in scheduled
        rate = self._rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return decision(self.seed, site, occurrence) < rate

    def preview(self, site: str, count: int) -> List[bool]:
        """The first *count* decisions for *site*, without side effects."""
        return [self._fires(site, k) for k in range(count)]

    def fires_at(self, site: str, occurrence: int) -> bool:
        """Decision for an explicit occurrence index — no counter, no books.

        Process shards each fork a copy of the plan, so per-site counter
        streams would restart identically in every shard (a scheduled
        occurrence would fire in all of them, every round).  Sites
        consulted inside shards therefore key the decision on a globally
        meaningful index — ``job_id + attempt * stride`` — and the caller
        does its own accounting.
        """
        return self._fires(site, occurrence)

    def occurrences(self, site: str) -> int:
        with self._lock:
            return self._counters.get(site, 0)

    # -- accounting ----------------------------------------------------------

    def record_recovered(self, sites: Iterable[str]) -> None:
        self.stats.note_recovered(sites)

    def record_infra_failed(self, sites: Iterable[str]) -> None:
        self.stats.note_infra_failed(sites)

    def record_poisoned(self, sites: Iterable[str]) -> None:
        self.stats.note_poisoned(sites)

    def signature(self) -> Dict[str, Any]:
        """The plan's result-affecting identity, for config fingerprints.

        Two plans with equal signatures make identical injection
        decisions, so a resumed campaign replays the same chaos schedule
        an uninterrupted run would have seen.
        """
        return {
            "seed": self.seed,
            "rates": {site: rate for site, rate
                      in sorted(self._rates.items()) if rate > 0.0},
            "schedule": {site: sorted(indices) for site, indices
                         in sorted(self._schedule.items())},
            "max_retries": self.max_retries,
            "max_job_retries": self.max_job_retries,
        }

    # -- construction helpers ------------------------------------------------

    @classmethod
    def parse(cls, spec: str, **kwargs) -> "FaultPlan":
        """Build a plan from the CLI's ``seed:rate[:site,site…]`` spec.

        ``7:0.2`` enables every site at rate 0.2 with seed 7;
        ``7:0.2:worker.crash,exec.timeout`` restricts to two sites.
        A bare ``7`` uses the default rate 0.1.
        """
        parts = spec.split(":")
        try:
            seed = int(parts[0])
        except ValueError:
            raise ValueError(f"bad fault spec {spec!r}: seed must be an int")
        rate = 0.1
        if len(parts) > 1 and parts[1]:
            try:
                rate = float(parts[1])
            except ValueError:
                raise ValueError(
                    f"bad fault spec {spec!r}: rate must be a float")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"bad fault spec {spec!r}: rate must be in [0, 1]")
        sites = None
        if len(parts) > 2 and parts[2]:
            sites = tuple(part.strip() for part in parts[2].split(","))
        if len(parts) > 3:
            raise ValueError(f"bad fault spec {spec!r}: "
                             "expected seed:rate[:site,site…]")
        return cls(seed=seed, rate=rate, sites=sites, **kwargs)


def call_with_fault_retries(plan: Optional[FaultPlan], fn, *args,
                            budget: Optional[int] = None,
                            context: str = ""):
    """Run *fn*, retrying on injected faults within the plan's budget.

    The universal recovery wrapper for operations that are pure
    functions of the snapshot (profiling runs, test-case checks,
    diagnosis re-runs): an injected fault aborts the attempt, the next
    attempt starts from a fresh restore, and the result is provably the
    one the clean run would have produced.  On success every absorbed
    injection is recorded as recovered; on exhaustion they are charged
    to infra and :class:`FaultRetriesExhausted` is raised for the caller
    to degrade gracefully.
    """
    if plan is None:
        return fn(*args)
    limit = plan.max_retries if budget is None else budget
    pending: List[str] = []
    while True:
        try:
            value = fn(*args)
        except FaultRetriesExhausted:
            # A nested recovery path (e.g. the machine's restore loop)
            # gave up and already charged its own sites; charge this
            # wrapper's pending injections too so the books balance.
            if pending:
                plan.record_infra_failed(pending)
            raise
        except FaultInjectedError as error:
            pending.append(error.site)
            if len(pending) > limit:
                plan.record_infra_failed(pending)
                raise FaultRetriesExhausted(pending, context=context)
            continue
        if pending:
            plan.record_recovered(pending)
        return value
