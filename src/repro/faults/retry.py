"""Self-healing retry policy: per-site budgets, backoff, quarantine.

The flat ``max_job_retries`` budget of the original supervisors treats
every failure the same: a dropped result (cheap, transient) and a job
that SIGKILLs its worker every single time (expensive, almost certainly
deterministic) both get the same number of blind re-runs.  A
:class:`RetryPolicy` replaces that with three mechanisms:

* **per-site budgets** — each failure is attributed to a cause (the
  injected fault site that produced it, or the synthetic
  :data:`CAUSE_WORKER_DEATH` / :data:`CAUSE_TRANSIT` causes for real
  deaths and lost results), and each cause has its own retry budget;
* **exponential backoff** — between supervision rounds that re-queue
  failed jobs the supervisor sleeps ``base * factor**(attempt-1)``
  seconds (capped), so a persistently failing substrate is probed at a
  decaying rate instead of hammered;
* **poison quarantine** — a job that *kills its worker*
  ``poison_after`` times is quarantined as a poison pair: it is
  reported with ``JobResult.poisoned`` set (the pipeline records the
  case as ``Outcome.POISONED`` and journals it), and is never retried
  again — not in this run, and, via the campaign journal, not in any
  resumed run either.

The policy is pure configuration: the supervisors in
:mod:`repro.vm.cluster` and :mod:`repro.vm.shardpool` consult it when
one is passed and keep their historical flat-budget behaviour when not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

#: Synthetic failure cause for a worker that died holding the job when
#: no injected fault site can be blamed (a real crash, a watchdog kill).
CAUSE_WORKER_DEATH = "worker.death"
#: Synthetic failure cause for a result lost in transit with no site
#: attribution (should not occur outside chaos, but the books need a
#: column for it).
CAUSE_TRANSIT = "transit"


@dataclass(frozen=True)
class RetryPolicy:
    """Per-site retry budgets with exponential backoff and quarantine."""

    #: Retry budget per failure cause; causes not listed fall back to
    #: ``default_budget``.  A job whose failures attributed to one cause
    #: exceed that cause's budget is exhausted (``infra_failed``).
    site_budgets: Mapping[str, int] = field(default_factory=dict)
    default_budget: int = 12
    #: Worker deaths (crashes, SIGKILLs, watchdog kills) attributed to
    #: one job before it is quarantined as a poison pair.
    poison_after: int = 5
    #: Backoff between supervision rounds that re-queue failed jobs:
    #: ``base * factor**(attempt-1)`` seconds, capped at ``backoff_max``.
    #: The default base of 0 disables sleeping (the simulated kernel
    #: runs at microsecond timescales; real deployments raise it).
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 1.0

    def budget_for(self, cause: str) -> int:
        return self.site_budgets.get(cause, self.default_budget)

    def backoff_seconds(self, attempt: int) -> float:
        """Sleep before re-running a job on its *attempt*-th retry."""
        if self.backoff_base <= 0.0 or attempt <= 0:
            return 0.0
        delay = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        return min(delay, self.backoff_max)

    def should_poison(self, worker_deaths: int) -> bool:
        return self.poison_after > 0 and worker_deaths >= self.poison_after

    def exhausted_cause(self, site_failures: Mapping[str, int]
                        ) -> Optional[str]:
        """The first cause over its budget, or None while budgets hold."""
        for cause, count in sorted(site_failures.items()):
            if count > self.budget_for(cause):
                return cause
        return None


def describe_failures(site_failures: Mapping[str, int]) -> str:
    """Render a per-cause failure ledger for error messages."""
    if not site_failures:
        return "no attributed causes"
    return ", ".join(f"{cause}x{count}"
                     for cause, count in sorted(site_failures.items()))


def tally(site_failures: Dict[str, int], cause: str) -> None:
    site_failures[cause] = site_failures.get(cause, 0) + 1
