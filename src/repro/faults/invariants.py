"""Cross-cutting invariants the fault-injection campaign must uphold.

The shared caches (``BaselineCache``, ``NondetStore``) tag entries with
the cluster worker that computed them so a dead worker's possibly
corrupt results can be dropped.  Two things can break that protocol:

* a worker dies between its baseline insert and its nondet insert, and
  the death hook is not wired — the baseline entry then outlives its
  owner (the leak of ISSUE 4's second satellite);
* a :data:`~repro.faults.plan.SITE_CACHE_STALE_OWNER` injection tags an
  entry with an owner id invalidation can never match.

:func:`verify_owner_invariant` audits any set of owner-tagged caches
after the cluster has retired workers; the pipeline runs it after every
distributed stage and at campaign end.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .plan import STALE_OWNER


class CacheOwnerLeakError(AssertionError):
    """An owner-tagged cache entry outlived its (dead) owner."""

    def __init__(self, leaks: Dict[str, List[int]]):
        self.leaks = leaks
        detail = "; ".join(
            f"{name}: owner(s) {sorted(set(owners))} "
            f"({len(owners)} entr{'y' if len(owners) == 1 else 'ies'})"
            for name, owners in sorted(leaks.items()))
        super().__init__(
            f"owner-tagged cache entries leaked past worker death: {detail}")


def verify_owner_invariant(retired_owners: Iterable[int], **caches) -> None:
    """Assert no cache entry is still owned by a retired worker.

    *caches* maps a display name to any object exposing
    ``owner_tags() -> List[Optional[int]]`` (one tag per live entry).
    Entries tagged :data:`STALE_OWNER` are also leaks — they were meant
    to be swept before this check runs.  Raises
    :class:`CacheOwnerLeakError` naming every offender.
    """
    retired = set(retired_owners)
    retired.add(STALE_OWNER)
    leaks: Dict[str, List[int]] = {}
    for name, cache in caches.items():
        offenders = [tag for tag in cache.owner_tags()
                     if tag is not None and tag in retired]
        if offenders:
            leaks[name] = offenders
    if leaks:
        raise CacheOwnerLeakError(leaks)
