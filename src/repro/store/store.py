"""The durable campaign store: one directory per campaign fingerprint.

Layout under a ``--store DIR`` root::

    DIR/
      <campaign-id>/            # first 12 hex chars of the fingerprint
        campaign.json           # fingerprint + config summary
        journal.jsonl           # the write-ahead journal (repro.store.journal)
        journal.jsonl.1 ...     # archived journals of earlier runs
        result.json             # full campaign result, written at completion

The campaign id is derived from the **config fingerprint** — a SHA-256
over every result-affecting knob (kernel preset, corpus identity,
strategy and seeds, spec, offsets, chaos plan signature).  Resume
verifies the stored fingerprint against the live config before trusting
a single journal record: a campaign journal only ever replays into the
exact campaign that wrote it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..faults.plan import FaultPlan
from .journal import (
    RECORD_ATTEMPT,
    RECORD_BEGIN,
    RECORD_CASE,
    RECORD_END,
    RECORD_POISONED,
    CampaignJournal,
    scan,
)

CAMPAIGN_FILE = "campaign.json"
JOURNAL_FILE = "journal.jsonl"
RESULT_FILE = "result.json"


class StoreError(RuntimeError):
    """A store operation that cannot proceed (bad root, bad campaign)."""


class ResumeMismatchError(StoreError):
    """--resume pointed at a journal written by a different config."""


def case_key(sender_hash: str, receiver_hash: str) -> str:
    """The journal key of one (sender, receiver) pair.

    The kernel is part of the campaign fingerprint, so (key, campaign)
    uniquely names a (sender, receiver, kernel) execution.
    """
    return f"{sender_hash}:{receiver_hash}"


def summarize_config(config: Any) -> Dict[str, Any]:
    """The result-affecting identity of a CampaignConfig, as plain JSON.

    Duck-typed (no import of the pipeline module — it imports us).
    Performance knobs proven result-neutral elsewhere in the test suite
    (worker counts, shard mode, sender cache, profile cache) are
    deliberately excluded so a campaign can resume under a different
    pool shape.
    """
    machine = config.machine
    corpus = None
    if config.corpus is not None:
        corpus = [program.hash_hex for program in config.corpus]
    faults: Optional[FaultPlan] = config.faults
    summary = {
        "kernel_version": machine.kernel.version,
        "jump_label": machine.kernel.jump_label,
        "bugs_enabled": sorted(machine.bugs.enabled()),
        "spec": config.spec.describe(),
        "corpus_size": config.corpus_size,
        "corpus_seed": config.corpus_seed,
        "corpus_hashes": corpus,
        "strategy": config.strategy,
        "rand_budget": config.rand_budget,
        "rand_seed": config.rand_seed,
        "rep_seed": config.rep_seed,
        "max_test_cases": config.max_test_cases,
        "nondet_offsets": list(config.nondet_offsets),
        "static_prefilter": config.static_prefilter,
        "diagnose": config.diagnose,
        "faults": faults.signature() if faults is not None else None,
    }
    if getattr(config, "interleave", False):
        # Present only for interleaved campaigns, so every sequential
        # fingerprint (including pre-scheduling journals) is unchanged.
        summary["schedule"] = {
            "strategy": config.schedule_strategy,
            "budget": config.schedule_budget,
            "seed": config.schedule_seed,
            "depth": config.schedule_depth,
            "points": config.schedule_points,
            "pairs": config.schedule_pairs,
        }
    return summary


def campaign_fingerprint(summary: Dict[str, Any]) -> str:
    canonical = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ResumeState:
    """Everything journal replay recovered about a prior run."""

    #: case key -> terminal case record (outcome + optional report).
    cases: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: case key -> worker deaths attributed across all prior runs.
    deaths: Dict[str, int] = field(default_factory=dict)
    #: case keys quarantined as poison pairs.
    poisoned: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Bytes of torn tail truncated away on open.
    torn_bytes: int = 0
    #: Total valid records replayed.
    records: int = 0
    #: The prior run completed (an end record landed).
    completed: bool = False

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]],
                     torn_bytes: int = 0) -> "ResumeState":
        state = cls(torn_bytes=torn_bytes, records=len(records))
        for record in records:
            kind = record.get("t")
            key = record.get("k")
            if kind == RECORD_CASE and key is not None:
                state.cases.setdefault(key, record)
            elif kind == RECORD_ATTEMPT and key is not None:
                state.deaths[key] = state.deaths.get(key, 0) + 1
            elif kind == RECORD_POISONED and key is not None:
                state.poisoned.setdefault(key, record)
            elif kind == RECORD_END:
                state.completed = True
        return state


@dataclass
class CampaignEntry:
    """One campaign directory, as ``store ls`` sees it."""

    campaign_id: str
    path: str
    summary: Dict[str, Any]
    fingerprint: str
    cases_done: int = 0
    poisoned: int = 0
    attempts: int = 0
    completed: bool = False
    accounting: Dict[str, Any] = field(default_factory=dict)

    def status(self) -> str:
        return "completed" if self.completed else "interrupted"


class CampaignHandle:
    """An open campaign: its journal plus its replayed prior state."""

    def __init__(self, campaign_id: str, path: str, fingerprint: str,
                 resume_state: ResumeState, journal: CampaignJournal):
        self.campaign_id = campaign_id
        self.path = path
        self.fingerprint = fingerprint
        self.resume_state = resume_state
        self.journal = journal

    def write_result(self, document: Dict[str, Any]) -> str:
        """Atomically publish the final result document."""
        target = os.path.join(self.path, RESULT_FILE)
        staging = target + ".tmp"
        with open(staging, "w") as handle:
            json.dump(document, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, target)
        return target

    def close(self) -> None:
        self.journal.close()


class CampaignStore:
    """The ``--store DIR`` root: open, resume, list, and load campaigns."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- opening ---------------------------------------------------------------

    def open_campaign(self, summary: Dict[str, Any], resume: bool = False,
                      faults: Optional[FaultPlan] = None) -> CampaignHandle:
        fingerprint = campaign_fingerprint(summary)
        campaign_id = fingerprint[:12]
        path = os.path.join(self.root, campaign_id)
        meta_path = os.path.join(path, CAMPAIGN_FILE)
        journal_path = os.path.join(path, JOURNAL_FILE)

        if resume:
            if not os.path.exists(meta_path):
                raise ResumeMismatchError(
                    f"nothing to resume: campaign {campaign_id} has no "
                    f"journal under {self.root}")
            with open(meta_path) as handle:
                stored = json.load(handle)
            if stored.get("fingerprint") != fingerprint:
                raise ResumeMismatchError(
                    f"campaign {campaign_id}: stored fingerprint "
                    f"{stored.get('fingerprint', '?')[:12]} does not match "
                    f"this configuration ({fingerprint[:12]}); refusing to "
                    "replay a journal written by a different campaign")
        else:
            os.makedirs(path, exist_ok=True)
            self._archive_journal(path)
            stale_result = os.path.join(path, RESULT_FILE)
            if os.path.exists(stale_result):
                os.replace(stale_result, stale_result + ".old")
            with open(meta_path, "w") as handle:
                json.dump({"fingerprint": fingerprint, "summary": summary},
                          handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())

        journal = CampaignJournal(journal_path, faults=faults)
        if resume:
            replay = scan(journal_path)
            state = ResumeState.from_records(
                replay.records, torn_bytes=journal.torn_bytes_repaired)
        else:
            state = ResumeState()
            journal.append({"t": RECORD_BEGIN, "fingerprint": fingerprint,
                            "summary": summary})
        return CampaignHandle(campaign_id, path, fingerprint, state, journal)

    @staticmethod
    def _archive_journal(path: str) -> None:
        journal_path = os.path.join(path, JOURNAL_FILE)
        if not os.path.exists(journal_path):
            return
        suffix = 1
        while os.path.exists(f"{journal_path}.{suffix}"):
            suffix += 1
        os.replace(journal_path, f"{journal_path}.{suffix}")

    # -- inspection ------------------------------------------------------------

    def list_campaigns(self) -> List[CampaignEntry]:
        entries: List[CampaignEntry] = []
        if not os.path.isdir(self.root):
            return entries
        for name in sorted(os.listdir(self.root)):
            entry = self._load_entry(name)
            if entry is not None:
                entries.append(entry)
        return entries

    def _load_entry(self, campaign_id: str) -> Optional[CampaignEntry]:
        path = os.path.join(self.root, campaign_id)
        meta_path = os.path.join(path, CAMPAIGN_FILE)
        if not os.path.isfile(meta_path):
            return None
        try:
            with open(meta_path) as handle:
                stored = json.load(handle)
        except ValueError:
            return None
        entry = CampaignEntry(campaign_id=campaign_id, path=path,
                              summary=stored.get("summary", {}),
                              fingerprint=stored.get("fingerprint", ""))
        replay = scan(os.path.join(path, JOURNAL_FILE))
        for record in replay.records:
            kind = record.get("t")
            if kind == RECORD_CASE:
                entry.cases_done += 1
            elif kind == RECORD_POISONED:
                entry.poisoned += 1
            elif kind == RECORD_ATTEMPT:
                entry.attempts += 1
            elif kind == RECORD_END:
                entry.completed = True
                entry.accounting = record.get("accounting", {})
        return entry

    def entry(self, campaign_id: str) -> CampaignEntry:
        entry = self._load_entry(campaign_id)
        if entry is None:
            raise StoreError(f"no campaign {campaign_id!r} under {self.root}")
        return entry

    def result_path(self, campaign_id: str) -> Optional[str]:
        path = os.path.join(self.root, campaign_id, RESULT_FILE)
        return path if os.path.exists(path) else None
