"""The append-only campaign journal: checksummed JSONL with tail repair.

One campaign writes one journal.  Every record is a single line::

    {"c": <crc32 of the payload json>, "r": {<payload>}}\\n

The payload checksum is computed over the canonical (sorted-keys,
compact-separators) JSON encoding of the record body, so a record
re-encoded by any writer produces the same line and a torn or corrupted
line can never masquerade as a valid record.

Crash model
-----------

The journal is designed around SIGKILL-anywhere semantics:

* **Torn tail** — a crash between ``write`` and the trailing newline
  leaves a partial line at the end of the file.  Opening the journal
  (for replay or append) scans it and truncates everything from the
  first invalid line onward, so the journal always re-converges to its
  longest valid prefix.  Records after a mid-file corruption are
  discarded too: a journal is an ordered log, and trusting records that
  follow bytes we cannot parse would re-order history.
* **At-least-once commits** — the same logical record may be appended
  twice (a result recomputed after a dropped transfer, a resumed run
  re-executing an in-flight pair).  Appends deduplicate by the record's
  ``key`` when one is present — first write wins — and replay applies
  the same rule, so duplicated commits are harmless.
* **Durability** — every append flushes; ``fsync`` runs through the
  :data:`~repro.faults.plan.SITE_STORE_FSYNC_FAIL` chaos site with
  bounded retries and degrades to flushed-only durability (charged to
  the infra column) when the budget is exhausted.

The :data:`~repro.faults.plan.SITE_JOURNAL_TORN` chaos site exercises
the torn-write path in-process: the append writes a partial line,
then runs the same tail repair a crashed writer's successor would run,
and re-writes the record — injected == recovered by construction, and
the repair code is exercised on every chaos campaign, not only on real
crashes.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set

from ..faults.plan import (
    SITE_JOURNAL_TORN,
    SITE_STORE_FSYNC_FAIL,
    FaultPlan,
)

#: Record types understood by the campaign pipeline.
RECORD_BEGIN = "begin"        # campaign config fingerprint + summary
RECORD_CASE = "case"          # one pair's terminal outcome (maybe report)
RECORD_ATTEMPT = "attempt"    # a worker died holding the pair
RECORD_POISONED = "poisoned"  # pair quarantined after repeated kills
RECORD_END = "end"            # campaign completed; final accounting


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_line(record: Dict[str, Any]) -> str:
    payload = _canonical(record)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return json.dumps({"c": crc, "r": json.loads(payload)},
                      sort_keys=True, separators=(",", ":")) + "\n"


def decode_line(line: str) -> Optional[Dict[str, Any]]:
    """The record carried by one journal line, or None if invalid."""
    if not line.endswith("\n"):
        return None  # torn: the newline is the commit marker
    try:
        envelope = json.loads(line)
    except ValueError:
        return None
    if not isinstance(envelope, dict) or "c" not in envelope \
            or "r" not in envelope:
        return None
    record = envelope["r"]
    if not isinstance(record, dict):
        return None
    crc = zlib.crc32(_canonical(record).encode("utf-8")) & 0xFFFFFFFF
    if crc != envelope["c"]:
        return None
    return record


@dataclass
class JournalReplay:
    """Everything a journal scan recovered."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Byte offset of the end of the longest valid prefix.
    valid_bytes: int = 0
    #: Bytes discarded past the valid prefix (torn tail, corruption).
    torn_bytes: int = 0
    #: Duplicate keyed records dropped by first-write-wins dedup.
    duplicates: int = 0

    def by_type(self, record_type: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("t") == record_type]


def scan(path: str) -> JournalReplay:
    """Replay a journal file: longest valid prefix, first-wins dedup."""
    replay = JournalReplay()
    if not os.path.exists(path):
        return replay
    seen: Set[str] = set()
    offset = 0
    with open(path, "r", encoding="utf-8", newline="\n") as handle:
        for line in handle:
            record = decode_line(line)
            if record is None:
                break
            offset += len(line.encode("utf-8"))
            key = record.get("k")
            if key is not None and record.get("t") in (RECORD_CASE,
                                                       RECORD_POISONED):
                dedup_key = f"{record.get('t')}:{key}"
                if dedup_key in seen:
                    replay.duplicates += 1
                    continue
                seen.add(dedup_key)
            replay.records.append(record)
    replay.valid_bytes = offset
    replay.torn_bytes = os.path.getsize(path) - offset
    return replay


class CampaignJournal:
    """Append-only write-ahead journal for one campaign.

    Thread-safe: execution workers commit results concurrently.  Opening
    an existing journal repairs its tail (truncating torn bytes) before
    the first append, so a journal is always in its longest-valid-prefix
    state while a writer owns it.
    """

    def __init__(self, path: str, faults: Optional[FaultPlan] = None,
                 fsync: bool = True):
        self.path = path
        self.faults = faults
        self._fsync_enabled = fsync
        self._lock = threading.Lock()
        self._seen_keys: Set[str] = set()
        self.appended = 0
        self.fsync_degraded = 0
        #: Torn bytes truncated away when this writer opened the file.
        self.torn_bytes_repaired = 0
        replay = self.repair_tail()
        self.torn_bytes_repaired = replay.torn_bytes
        for record in replay.records:
            key = record.get("k")
            if key is not None and record.get("t") in (RECORD_CASE,
                                                       RECORD_POISONED):
                self._seen_keys.add(f"{record.get('t')}:{key}")
        self._handle = open(self.path, "a", encoding="utf-8", newline="\n")

    # -- tail repair ---------------------------------------------------------

    def repair_tail(self) -> JournalReplay:
        """Truncate the file back to its longest valid prefix."""
        replay = scan(self.path)
        if replay.torn_bytes:
            with open(self.path, "r+b") as handle:
                handle.truncate(replay.valid_bytes)
        return replay

    # -- appending -----------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> bool:
        """Durably append one record; False if deduplicated away.

        Records carrying a ``k`` key commit at most once per (type, key)
        — the at-least-once execution layer may offer the same result
        twice (re-run after a dropped transfer, a resumed in-flight
        pair) and the first commit wins.
        """
        with self._lock:
            key = record.get("k")
            dedup_key = None
            if key is not None and record.get("t") in (RECORD_CASE,
                                                       RECORD_POISONED):
                dedup_key = f"{record.get('t')}:{key}"
                if dedup_key in self._seen_keys:
                    return False
            line = encode_line(record)
            self._write_line(line)
            if dedup_key is not None:
                self._seen_keys.add(dedup_key)
            self.appended += 1
            return True

    def _write_line(self, line: str) -> None:
        faults = self.faults
        if faults is not None and faults.should_inject(SITE_JOURNAL_TORN):
            # Tear the write: a strict prefix of the line reaches the
            # file with no newline, exactly what a crash between write()
            # and the commit marker leaves behind.  Then run the same
            # tail repair a successor process would run on open, and
            # fall through to the real append — the fault is absorbed
            # by the repair path it exists to exercise.
            torn = line[:max(1, len(line) // 2)].rstrip("\n")
            self._handle.write(torn)
            self._handle.flush()
            self._handle.close()
            self.repair_tail()
            self._handle = open(self.path, "a", encoding="utf-8",
                                newline="\n")
            faults.record_recovered([SITE_JOURNAL_TORN])
        self._handle.write(line)
        self._handle.flush()
        self._sync()

    def _sync(self) -> None:
        if not self._fsync_enabled:
            return
        faults = self.faults
        pending: List[str] = []
        budget = faults.max_retries if faults is not None else 0
        while True:
            if faults is not None \
                    and faults.should_inject(SITE_STORE_FSYNC_FAIL):
                pending.append(SITE_STORE_FSYNC_FAIL)
                if len(pending) > budget:
                    # Durability degrades to flushed-only for this
                    # record; the campaign continues and the books
                    # charge the failed syncs to infra.
                    faults.record_infra_failed(pending)
                    self.fsync_degraded += 1
                    return
                continue
            os.fsync(self._handle.fileno())
            if faults is not None and pending:
                faults.record_recovered(pending)
            return

    # -- record constructors ---------------------------------------------------

    def append_case(self, key: str, outcome: str, raw_diff_count: int,
                    report: Optional[Dict[str, Any]]) -> bool:
        return self.append({
            "t": RECORD_CASE, "k": key, "outcome": outcome,
            "raw": raw_diff_count, "report": report,
        })

    def append_attempt(self, key: str, sites: List[str]) -> bool:
        return self.append({"t": RECORD_ATTEMPT, "k": key, "sites": sites})

    def append_poisoned(self, key: str, deaths: int, error: str) -> bool:
        return self.append({"t": RECORD_POISONED, "k": key,
                            "deaths": deaths, "error": error})

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def iter_records(path: str) -> Iterator[Dict[str, Any]]:
    """Valid records of a journal file, deduplicated, in order."""
    return iter(scan(path).records)
