"""Crash-safe campaign persistence: write-ahead journal + durable store.

See ``docs/CAMPAIGN_STORE.md`` for the journal format, resume
semantics, and the poison-pair quarantine policy.
"""

from .journal import (
    RECORD_ATTEMPT,
    RECORD_BEGIN,
    RECORD_CASE,
    RECORD_END,
    RECORD_POISONED,
    CampaignJournal,
    JournalReplay,
    decode_line,
    encode_line,
    iter_records,
    scan,
)
from .store import (
    CampaignEntry,
    CampaignHandle,
    CampaignStore,
    ResumeMismatchError,
    ResumeState,
    StoreError,
    campaign_fingerprint,
    case_key,
    summarize_config,
)

__all__ = [
    "CampaignEntry",
    "CampaignHandle",
    "CampaignJournal",
    "CampaignStore",
    "JournalReplay",
    "RECORD_ATTEMPT",
    "RECORD_BEGIN",
    "RECORD_CASE",
    "RECORD_END",
    "RECORD_POISONED",
    "ResumeMismatchError",
    "ResumeState",
    "StoreError",
    "campaign_fingerprint",
    "case_key",
    "decode_line",
    "encode_line",
    "iter_records",
    "scan",
    "summarize_config",
]
