"""KIT: Testing OS-Level Virtualization for Functional Interference Bugs.

A full-system Python reproduction of the ASPLOS 2023 paper by Liu, Gong,
and Fonseca.  The package splits the same way the system does:

* :mod:`repro.kernel` — the system under test: a simulated Linux kernel
  with namespaces, an instrumented memory arena, and the paper's bugs
  injected behind version presets.
* :mod:`repro.vm` — machines, snapshots, executors, and the distributed
  test cluster.
* :mod:`repro.corpus` — syzkaller-style test programs, seeds, and the
  random generator.
* :mod:`repro.core` — KIT itself: data-flow-guided test case generation,
  two-execution testing, trace-AST divergence detection with non-det and
  specification filtering, Algorithm-2 diagnosis, and report aggregation.
* :mod:`repro.faults` — deterministic, seed-driven fault injection and
  the chaos-recovery invariants the campaign substrate is tested under.

Quickstart::

    from repro import CampaignConfig, Kit, MachineConfig, linux_5_13

    config = CampaignConfig(machine=MachineConfig(bugs=linux_5_13()),
                            corpus_size=120)
    result = Kit(config).run()
    print(sorted(result.bugs_found()))
"""

from .core import (
    CampaignConfig,
    CampaignResult,
    CampaignStats,
    Detector,
    Diagnoser,
    Kit,
    Specification,
    TestCase,
    TestReport,
    default_specification,
)
from .corpus import TestProgram, build_corpus, prog, seed_programs
from .faults import (
    ALL_SITES,
    CacheOwnerLeakError,
    FaultPlan,
    FaultRetriesExhausted,
    FaultStats,
    verify_owner_invariant,
)
from .kernel import (
    BugFlags,
    Kernel,
    KernelConfig,
    fixed_kernel,
    known_bug_kernel,
    linux_5_13,
)
from .vm import ContainerConfig, Machine, MachineConfig

__version__ = "1.0.0"

__all__ = [
    "ALL_SITES",
    "BugFlags",
    "CacheOwnerLeakError",
    "CampaignConfig",
    "CampaignResult",
    "CampaignStats",
    "ContainerConfig",
    "Detector",
    "Diagnoser",
    "FaultPlan",
    "FaultRetriesExhausted",
    "FaultStats",
    "Kernel",
    "KernelConfig",
    "Kit",
    "Machine",
    "MachineConfig",
    "Specification",
    "TestCase",
    "TestProgram",
    "TestReport",
    "__version__",
    "build_corpus",
    "default_specification",
    "fixed_kernel",
    "known_bug_kernel",
    "linux_5_13",
    "prog",
    "seed_programs",
    "verify_owner_invariant",
]
