"""Distributed test execution — the server/client mode of §5.2.

KIT "can run distributed tests… When running in server mode, KIT exposes
several RPC services to clients to distribute VM snapshots, transfer
test cases, and collect test results."  This module reproduces that job
protocol with an in-process server and worker threads: the server hands
out the machine configuration (from which each worker boots an identical
machine — snapshot distribution), streams jobs, and collects results in
completion order while preserving a deterministic merge by job id.

The worker body is generic over a ``case_runner`` callable so the
cluster layer stays independent of the detection pipeline built on top.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional

from .machine import Machine, MachineConfig


@dataclass
class Job:
    """One unit of distributed work."""

    job_id: int
    payload: Any


@dataclass
class JobResult:
    """A completed job."""

    job_id: int
    outcome: Any
    worker: int
    error: Optional[str] = None


class ClusterServer:
    """Job distribution and result collection."""

    def __init__(self, machine_config: MachineConfig, payloads: Iterable[Any]):
        self._machine_config = machine_config
        self._jobs: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._results: List[JobResult] = []
        self._lock = threading.Lock()
        self._count = 0
        for payload in payloads:
            self._jobs.put(Job(self._count, payload))
            self._count += 1

    # -- "RPC" surface ---------------------------------------------------------

    def fetch_machine_config(self) -> MachineConfig:
        """Snapshot distribution: workers boot from the same config."""
        return self._machine_config

    def fetch_job(self) -> Optional[Job]:
        try:
            return self._jobs.get_nowait()
        except queue.Empty:
            return None

    def submit_result(self, result: JobResult) -> None:
        with self._lock:
            self._results.append(result)

    # -- results -----------------------------------------------------------------

    def results_in_order(self) -> List[JobResult]:
        with self._lock:
            return sorted(self._results, key=lambda r: r.job_id)

    @property
    def job_count(self) -> int:
        return self._count


class ClusterWorker(threading.Thread):
    """One test client: boots a machine, pulls jobs, pushes results."""

    def __init__(self, server: ClusterServer, worker_id: int,
                 case_runner: Callable[[Machine, Any], Any]):
        super().__init__(name=f"kit-worker-{worker_id}", daemon=True)
        self._server = server
        self.worker_id = worker_id
        self._case_runner = case_runner
        #: Error that killed the worker before it could drain the queue
        #: (e.g. a Machine boot failure); inspected by run_distributed.
        self.fatal_error: Optional[str] = None
        #: The booted machine, exposed so callers can collect telemetry
        #: (restore stats) after the pool joins.
        self.machine: Optional[Machine] = None

    def run(self) -> None:
        try:
            machine = Machine(self._server.fetch_machine_config())
        except Exception as error:  # boot failure: report, leave queue alone
            self.fatal_error = f"{type(error).__name__}: {error}"
            return
        machine.cluster_worker_id = self.worker_id
        self.machine = machine
        try:
            while True:
                job = self._server.fetch_job()
                if job is None:
                    return
                try:
                    outcome = self._case_runner(machine, job.payload)
                    result = JobResult(job.job_id, outcome, self.worker_id)
                except Exception as error:  # defensive: report, keep worker
                    result = JobResult(job.job_id, None, self.worker_id,
                                       error=f"{type(error).__name__}: "
                                             f"{error}")
                self._server.submit_result(result)
        except BaseException as error:  # worker death (SystemExit, ...)
            # Anything escaping the per-job handler kills the worker
            # mid-queue; record it so run_distributed can name the cause
            # and let owners invalidate this worker's cache entries.
            self.fatal_error = f"{type(error).__name__}: {error}"


def run_distributed(machine_config: MachineConfig, payloads: Iterable[Any],
                    case_runner: Callable[[Machine, Any], Any],
                    workers: int = 2,
                    machines_out: Optional[List[Machine]] = None,
                    on_worker_death: Optional[Callable[[int], None]] = None
                    ) -> List[JobResult]:
    """Run *payloads* through *case_runner* on a worker pool.

    Returns results ordered by job id, so the output is independent of
    worker scheduling.  The pool is clamped to the number of jobs (never
    below one) — booting more machines than there are jobs is pure
    overhead.  If workers die before the queue drains (machine boot
    failure, a crashed thread), a RuntimeError names every unfinished
    job id instead of silently returning a short result list.

    *machines_out*, if given, receives each worker's booted machine
    after the pool joins, for restore/cache telemetry collection.

    *on_worker_death*, if given, is called with each dead worker's id
    before the RuntimeError is raised — the hook for invalidating
    shared-cache entries that the dead worker owned (it may have died
    mid-computation, leaving partial state behind).
    """
    server = ClusterServer(machine_config, payloads)
    if server.job_count == 0:
        return []
    pool_size = min(max(1, workers), server.job_count)
    pool = [ClusterWorker(server, i, case_runner) for i in range(pool_size)]
    for worker in pool:
        worker.start()
    for worker in pool:
        worker.join()
    if machines_out is not None:
        machines_out.extend(w.machine for w in pool if w.machine is not None)
    dead = [w for w in pool if w.fatal_error is not None]
    if dead and on_worker_death is not None:
        for worker in dead:
            on_worker_death(worker.worker_id)
    results = server.results_in_order()
    if len(results) != server.job_count:
        finished = {result.job_id for result in results}
        missing = [job_id for job_id in range(server.job_count)
                   if job_id not in finished]
        boot_errors = "; ".join(
            f"worker {w.worker_id}: {w.fatal_error}"
            for w in dead) or "unknown cause"
        raise RuntimeError(
            f"cluster finished with {len(missing)} unfinished job(s) "
            f"{missing} ({boot_errors})")
    return results
