"""Distributed test execution — the server/client mode of §5.2.

KIT "can run distributed tests… When running in server mode, KIT exposes
several RPC services to clients to distribute VM snapshots, transfer
test cases, and collect test results."  This module reproduces that job
protocol with an in-process server and worker threads: the server hands
out the machine configuration (from which each worker boots an identical
machine — snapshot distribution), streams jobs, and collects results in
completion order while preserving a deterministic merge by job id.

The worker body is generic over a ``case_runner`` callable so the
cluster layer stays independent of the detection pipeline built on top.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional

from .machine import Machine, MachineConfig


@dataclass
class Job:
    """One unit of distributed work."""

    job_id: int
    payload: Any


@dataclass
class JobResult:
    """A completed job."""

    job_id: int
    outcome: Any
    worker: int
    error: Optional[str] = None


class ClusterServer:
    """Job distribution and result collection."""

    def __init__(self, machine_config: MachineConfig, payloads: Iterable[Any]):
        self._machine_config = machine_config
        self._jobs: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._results: List[JobResult] = []
        self._lock = threading.Lock()
        self._count = 0
        for payload in payloads:
            self._jobs.put(Job(self._count, payload))
            self._count += 1

    # -- "RPC" surface ---------------------------------------------------------

    def fetch_machine_config(self) -> MachineConfig:
        """Snapshot distribution: workers boot from the same config."""
        return self._machine_config

    def fetch_job(self) -> Optional[Job]:
        try:
            return self._jobs.get_nowait()
        except queue.Empty:
            return None

    def submit_result(self, result: JobResult) -> None:
        with self._lock:
            self._results.append(result)

    # -- results -----------------------------------------------------------------

    def results_in_order(self) -> List[JobResult]:
        with self._lock:
            return sorted(self._results, key=lambda r: r.job_id)

    @property
    def job_count(self) -> int:
        return self._count


class ClusterWorker(threading.Thread):
    """One test client: boots a machine, pulls jobs, pushes results."""

    def __init__(self, server: ClusterServer, worker_id: int,
                 case_runner: Callable[[Machine, Any], Any]):
        super().__init__(name=f"kit-worker-{worker_id}", daemon=True)
        self._server = server
        self._worker_id = worker_id
        self._case_runner = case_runner

    def run(self) -> None:
        machine = Machine(self._server.fetch_machine_config())
        while True:
            job = self._server.fetch_job()
            if job is None:
                return
            try:
                outcome = self._case_runner(machine, job.payload)
                result = JobResult(job.job_id, outcome, self._worker_id)
            except Exception as error:  # defensive: report, don't kill worker
                result = JobResult(job.job_id, None, self._worker_id,
                                   error=f"{type(error).__name__}: {error}")
            self._server.submit_result(result)


def run_distributed(machine_config: MachineConfig, payloads: Iterable[Any],
                    case_runner: Callable[[Machine, Any], Any],
                    workers: int = 2) -> List[JobResult]:
    """Run *payloads* through *case_runner* on a worker pool.

    Returns results ordered by job id, so the output is independent of
    worker scheduling.
    """
    server = ClusterServer(machine_config, payloads)
    pool = [ClusterWorker(server, i, case_runner) for i in range(max(1, workers))]
    for worker in pool:
        worker.start()
    for worker in pool:
        worker.join()
    return server.results_in_order()
