"""Distributed test execution — the server/client mode of §5.2.

KIT "can run distributed tests… When running in server mode, KIT exposes
several RPC services to clients to distribute VM snapshots, transfer
test cases, and collect test results."  This module reproduces that job
protocol with an in-process server and worker threads: the server hands
out the machine configuration (from which each worker boots an identical
machine — snapshot distribution), streams jobs, and collects results in
completion order while preserving a deterministic merge by job id.

The worker body is generic over a ``case_runner`` callable so the
cluster layer stays independent of the detection pipeline built on top.

Fault tolerance
---------------

:func:`run_distributed` supervises the pool in *rounds*: workers drain
the queue until they exit, then the server audits which jobs produced no
result.  A missing job — its worker crashed mid-run, or its result was
lost in transit — is re-queued with a failure count, and replacement
workers (with fresh ids, so cache-owner tags never alias) are spawned
for the next round.  Only when a job exhausts ``max_job_retries``
does the run fail: loudly (the historical ``RuntimeError`` naming every
unfinished job) under ``strict``, or gracefully (a ``JobResult``
carrying the error, for the pipeline to record as ``infra_failed``)
otherwise.  Jobs are pure functions of (payload, snapshot), so a re-run
on a fresh machine is provably equivalent to the first attempt.

Three chaos injection sites live in this layer (``worker.crash``,
``worker.slow``, ``result.drop``); see :mod:`repro.faults.plan`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..faults.plan import (
    SITE_RESULT_DROP,
    SITE_WORKER_CRASH,
    SITE_WORKER_SLOW,
    FaultPlan,
    WorkerCrashInjected,
)
from ..faults.retry import (
    CAUSE_TRANSIT,
    CAUSE_WORKER_DEATH,
    RetryPolicy,
    describe_failures,
    tally,
)
from .machine import Machine, MachineConfig


def affinity_order(keys: List[Any]) -> List[int]:
    """Schedule permutation grouping equal affinity keys adjacently.

    Returns the job order (a permutation of ``range(len(keys))``) that
    sorts by *keys* with ties broken **by original index** — the
    tie-break is explicit in the sort key, not an artifact of sort
    stability, so equal-key payloads can never be reordered between
    runs and the inverse permutation (``results[order[i]] = ...``)
    always reproduces the caller's original order deterministically.

    The pipeline uses two-level keys ``(sender hash, receiver hash)``:
    the major level lands every test case sharing a sender in one
    consecutive batch (so a worker's first case populates the sender
    state cache and the rest of the batch hits it), and the minor level
    clusters shared receivers within the batch for the baseline and
    non-determinism caches.
    """
    return sorted(range(len(keys)), key=lambda i: (keys[i], i))


@dataclass
class Job:
    """One unit of distributed work."""

    job_id: int
    payload: Any
    #: Failed attempts so far (crashed worker, dropped result).
    failures: int = 0
    #: Injected-fault sites charged to this job, pending resolution:
    #: recovered when a result finally lands, infra on exhaustion.
    pending_sites: List[str] = field(default_factory=list)
    #: Failed attempts attributed per cause (fault site or the
    #: synthetic worker-death / transit causes) — the retry-policy and
    #: error-message ledger; survives pending-site resolution.
    site_failures: Dict[str, int] = field(default_factory=dict)
    #: Workers this job took down with it (crash, SIGKILL, watchdog
    #: kill); reaching the policy's ``poison_after`` quarantines it.
    worker_deaths: int = 0
    #: Cause charged by the most recent failed attempt.
    last_cause: Optional[str] = None
    #: Set for the current audit when a dead worker held this job.
    death_attributed: bool = field(default=False, repr=False)


@dataclass
class JobResult:
    """A completed job."""

    job_id: int
    outcome: Any
    worker: int
    error: Optional[str] = None
    #: Failed attempts the job survived before this result (or before
    #: exhausting its budget).
    attempts: int = 0
    #: The cause charged by the last failed attempt, when any.
    last_fault_site: Optional[str] = None
    #: The job was quarantined as a poison pair: it killed its worker
    #: once too often and will never be retried again.
    poisoned: bool = False


class ClusterServer:
    """Job distribution, result collection, and the retry ledger."""

    def __init__(self, machine_config: MachineConfig, payloads: Iterable[Any],
                 faults: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 on_result: Optional[Callable[[Job, JobResult], None]] = None,
                 on_job_failure: Optional[Callable[[Job, str], None]] = None,
                 prior_deaths: Optional[Dict[int, int]] = None):
        self._machine_config = machine_config
        self.faults = faults
        self.retry_policy = retry_policy
        #: Called once per *committed* result (first-to-land dedup has
        #: already happened) — the pipeline's journal-commit hook.
        self.on_result = on_result
        #: Called when a job is charged a failed attempt, with the kind
        #: of settlement: ``retry`` | ``infra`` | ``poisoned``.
        self.on_job_failure = on_job_failure
        self._jobs: "queue.Queue[Job]" = queue.Queue()
        self._by_id: Dict[int, Job] = {}
        self._completed: Dict[int, JobResult] = {}
        self._failed: Dict[int, JobResult] = {}
        self._lock = threading.Lock()
        self._count = 0
        for payload in payloads:
            job = Job(self._count, payload)
            if prior_deaths:
                # Worker deaths journaled by earlier (crashed) runs of
                # the same campaign keep counting toward quarantine.
                job.worker_deaths = prior_deaths.get(self._count, 0)
            self._by_id[self._count] = job
            self._jobs.put(job)
            self._count += 1

    # -- "RPC" surface ---------------------------------------------------------

    def fetch_machine_config(self) -> MachineConfig:
        """Snapshot distribution: workers boot from the same config."""
        return self._machine_config

    def fetch_job(self) -> Optional[Job]:
        try:
            return self._jobs.get_nowait()
        except queue.Empty:
            return None

    def submit_result(self, job: Job, result: JobResult) -> None:
        """Record one finished job — unless the transfer is faulted away.

        A ``result.drop`` injection loses the result in transit; the
        round audit will notice the gap and re-queue the job.  The first
        result to land for a job id wins (a re-run after a dropped
        result is the same pure computation).
        """
        faults = self.faults
        if faults is not None and faults.should_inject(SITE_RESULT_DROP):
            job.pending_sites.append(SITE_RESULT_DROP)
            return
        result.attempts = job.failures
        result.last_fault_site = job.last_cause
        committed = False
        with self._lock:
            if result.job_id not in self._completed:
                self._completed[result.job_id] = result
                committed = True
        # Any landed result proves the faults previously charged to this
        # job were absorbed — resolve them even if another attempt's
        # result won the first-to-land race.
        if faults is not None and job.pending_sites:
            faults.record_recovered(job.pending_sites)
            job.pending_sites = []
        if committed and self.on_result is not None:
            self.on_result(job, result)

    # -- round audit -------------------------------------------------------------

    def audit_round(self, max_job_retries: int, cause: str,
                    charge_queued: bool = False) -> List[Job]:
        """Settle the round: re-queue each missing job or mark it failed.

        Must only run while no worker is live (between rounds).  Jobs
        still sitting in the queue — the dead pool never fetched them —
        are normally not failures; they are drained and re-put (draining
        first is what prevents duplicate queue entries, which would let
        one job run twice and strand its fault accounting).  A job that
        was fetched but produced no result — its worker crashed, or the
        result was dropped in transit — is charged a failed attempt.
        When *charge_queued* is set (no worker in the round even booted,
        so the queue could never drain), the still-queued jobs are
        charged too — otherwise a pool that can never boot would respawn
        forever.

        Returns the jobs carried into the next round (empty means every
        job is settled: completed, or failed with retries exhausted).
        """
        requeued: List[Job] = []
        still_queued: List[Job] = []
        while True:
            try:
                still_queued.append(self._jobs.get_nowait())
            except queue.Empty:
                break
        with self._lock:
            settled = set(self._completed) | set(self._failed)
            queued_ids = {job.job_id for job in still_queued}
            missing = [self._by_id[job_id] for job_id in range(self._count)
                       if job_id not in settled
                       and job_id not in queued_ids]
        if charge_queued:
            missing = still_queued + missing
        else:
            for job in still_queued:
                self._jobs.put(job)
                requeued.append(job)
        for job in missing:
            job.failures += 1
            # Attribute a cause to this failed attempt: the fault site
            # charged most recently, a real worker death, or (when the
            # ledger has nothing to pin it on) a lost transfer.
            if job.pending_sites:
                attempt_cause = job.pending_sites[-1]
            elif job.death_attributed:
                attempt_cause = CAUSE_WORKER_DEATH
            else:
                attempt_cause = CAUSE_TRANSIT
            job.last_cause = attempt_cause
            tally(job.site_failures, attempt_cause)
            settlement = self._settle(job, max_job_retries, cause, requeued)
            if self.on_job_failure is not None:
                self.on_job_failure(job, settlement)
            job.death_attributed = False
        return requeued

    def _settle(self, job: Job, max_job_retries: int, cause: str,
                requeued: List[Job]) -> str:
        """Settle one charged job: ``retry`` | ``infra`` | ``poisoned``."""
        policy = self.retry_policy
        if policy is None:
            # Historical flat budget: every failure counts the same.
            if job.failures <= max_job_retries:
                self._jobs.put(job)
                requeued.append(job)
                return "retry"
            return self._fail(job, JobResult(
                job.job_id, None, worker=-1,
                error=f"retries exhausted after {job.failures} "
                      f"failed attempt(s) ({cause})",
                attempts=job.failures, last_fault_site=job.last_cause))
        if policy.should_poison(job.worker_deaths):
            # Poison-pair quarantine: this job keeps taking its worker
            # down with it.  Stop feeding it workers — report it as
            # poisoned, never to be retried (journal durability extends
            # the quarantine across resumed runs).
            result = JobResult(
                job.job_id, None, worker=-1,
                error=f"poisoned: killed {job.worker_deaths} worker(s) "
                      f"({describe_failures(job.site_failures)})",
                attempts=job.failures, last_fault_site=job.last_cause,
                poisoned=True)
            with self._lock:
                self._failed[job.job_id] = result
            if self.faults is not None:
                self.faults.record_poisoned(job.pending_sites)
                job.pending_sites = []
            return "poisoned"
        exhausted = policy.exhausted_cause(job.site_failures)
        if exhausted is None:
            self._jobs.put(job)
            requeued.append(job)
            return "retry"
        return self._fail(job, JobResult(
            job.job_id, None, worker=-1,
            error=f"retry budget for {exhausted!r} exhausted after "
                  f"{job.failures} failed attempt(s) "
                  f"({describe_failures(job.site_failures)})",
            attempts=job.failures, last_fault_site=job.last_cause))

    def _fail(self, job: Job, result: JobResult) -> str:
        with self._lock:
            self._failed[job.job_id] = result
        if self.faults is not None and job.pending_sites:
            self.faults.record_infra_failed(job.pending_sites)
            job.pending_sites = []
        return "infra"

    # -- results -----------------------------------------------------------------

    def results_in_order(self) -> List[JobResult]:
        with self._lock:
            merged = {**self._completed, **self._failed}
            return [merged[job_id] for job_id in sorted(merged)]

    def failed_results(self) -> List[JobResult]:
        with self._lock:
            return [self._failed[job_id] for job_id in sorted(self._failed)]

    def unfinished_count(self) -> int:
        with self._lock:
            return self._count - len(self._completed) - len(self._failed)

    @property
    def job_count(self) -> int:
        return self._count


class ClusterWorker(threading.Thread):
    """One test client: boots a machine, pulls jobs, pushes results."""

    def __init__(self, server: ClusterServer, worker_id: int,
                 case_runner: Callable[[Machine, Any], Any]):
        super().__init__(name=f"kit-worker-{worker_id}", daemon=True)
        self._server = server
        self.worker_id = worker_id
        self._case_runner = case_runner
        #: Error that killed the worker before it could drain the queue
        #: (e.g. a Machine boot failure); inspected by run_distributed.
        self.fatal_error: Optional[str] = None
        #: The booted machine, exposed so callers can collect telemetry
        #: (restore stats) after the pool joins.
        self.machine: Optional[Machine] = None
        #: Last sign of life, for the hang watchdog (monotonic seconds).
        self.heartbeat: float = time.monotonic()
        #: The job this worker is holding right now — worker-death
        #: attribution reads it when the thread dies mid-run.
        self.current_job: Optional[Job] = None
        #: Set by the watchdog when this worker stopped beating: the
        #: supervisor has written it off, so it must take no more work
        #: (a late result for the held job is deduplicated first-wins).
        self.abandoned = False

    def run(self) -> None:
        try:
            machine = Machine(self._server.fetch_machine_config())
        except Exception as error:  # boot failure: report, leave queue alone
            self.fatal_error = f"{type(error).__name__}: {error}"
            return
        machine.cluster_worker_id = self.worker_id
        self.machine = machine
        faults = self._server.faults
        try:
            while True:
                if self.abandoned:
                    return
                job = self._server.fetch_job()
                if job is None:
                    return
                self.current_job = job
                self.heartbeat = time.monotonic()
                if faults is not None:
                    if faults.should_inject(SITE_WORKER_SLOW):
                        # A stalled worker only costs wall clock; the
                        # job-id merge keeps results order-independent.
                        time.sleep(faults.slow_seconds)
                        faults.record_recovered([SITE_WORKER_SLOW])
                    if faults.should_inject(SITE_WORKER_CRASH):
                        job.pending_sites.append(SITE_WORKER_CRASH)
                        raise WorkerCrashInjected(
                            f"injected crash on worker {self.worker_id} "
                            f"holding job {job.job_id}")
                try:
                    outcome = self._case_runner(machine, job.payload)
                    result = JobResult(job.job_id, outcome, self.worker_id)
                except Exception as error:  # defensive: report, keep worker
                    result = JobResult(job.job_id, None, self.worker_id,
                                       error=f"{type(error).__name__}: "
                                             f"{error}")
                self._server.submit_result(job, result)
                self.current_job = None
                self.heartbeat = time.monotonic()
        except BaseException as error:  # worker death (SystemExit, ...)
            # Anything escaping the per-job handler kills the worker
            # mid-queue; record it so run_distributed can name the cause
            # and let owners invalidate this worker's cache entries.
            self.fatal_error = f"{type(error).__name__}: {error}"


def run_distributed(machine_config: MachineConfig, payloads: Iterable[Any],
                    case_runner: Callable[[Machine, Any], Any],
                    workers: int = 2,
                    machines_out: Optional[List[Machine]] = None,
                    on_worker_death: Optional[Callable[[int], None]] = None,
                    faults: Optional[FaultPlan] = None,
                    max_job_retries: int = 0,
                    strict: bool = True,
                    mode: str = "thread",
                    retry_policy: Optional[RetryPolicy] = None,
                    hang_timeout: Optional[float] = None,
                    on_result: Optional[Callable[[Job, JobResult],
                                                 None]] = None,
                    on_job_failure: Optional[Callable[[Job, str],
                                                      None]] = None,
                    prior_deaths: Optional[Dict[int, int]] = None,
                    hung_out: Optional[List[int]] = None) -> List[JobResult]:
    """Run *payloads* through *case_runner* on a supervised worker pool.

    Returns results ordered by job id, so the output is independent of
    worker scheduling.  The pool is clamped to the number of jobs (never
    below one) — booting more machines than there are jobs is pure
    overhead.

    When workers die before the queue drains (machine boot failure, a
    crashed thread, an injected fault), their unfinished jobs are
    re-queued up to *max_job_retries* times and replacement workers with
    fresh ids are spawned.  *on_worker_death* is called with each dead
    worker's id as soon as its round settles — the hook for invalidating
    shared-cache entries the dead worker owned — and always before any
    replacement can re-publish under a different id.  Only a job whose
    retries are exhausted fails the run: with *strict* (the default) a
    RuntimeError names every unfinished job, matching the historical
    contract; with ``strict=False`` the job's ``JobResult`` carries the
    error instead, so a chaos campaign can degrade gracefully.

    *machines_out*, if given, receives every worker's booted machine
    (including replacements) after the pool retires, for restore/cache
    telemetry collection.

    Self-healing extensions (all opt-in, defaults preserve the
    historical behaviour exactly):

    * *retry_policy* replaces the flat budget with per-cause budgets,
      exponential backoff between rounds, and poison-pair quarantine
      (see :class:`~repro.faults.retry.RetryPolicy`);
    * *hang_timeout* arms a heartbeat watchdog: a worker silent for
      longer than this many seconds is abandoned (treated as dead — its
      machine is excluded from *machines_out*, its caches retired, its
      held job re-queued) and its id appended to *hung_out*;
    * *on_result* fires once per committed (first-to-land) result and
      *on_job_failure* once per charged failed attempt with its
      settlement (``retry`` / ``infra`` / ``poisoned``) — the campaign
      journal's commit hooks;
    * *prior_deaths* (job id → worker deaths journaled by earlier runs)
      lets quarantine counts survive a crash-and-resume.

    ``mode="process"`` delegates to the shared-nothing process pool
    (:func:`~repro.vm.shardpool.run_sharded`) with the same retry,
    strictness, and death-hook contracts; *machines_out* is unsupported
    there (shard machines live and die in their own processes).  The
    pipeline's process path calls ``run_sharded`` directly for its
    extra hooks — this switch is the drop-in form.
    """
    if mode == "process":
        from .shardpool import run_sharded
        if machines_out is not None:
            raise ValueError("machines_out is not available in process "
                             "mode: shard machines are per-process")
        report = run_sharded(machine_config, list(payloads), case_runner,
                             workers=workers, faults=faults,
                             max_job_retries=max_job_retries,
                             strict=strict, on_worker_death=on_worker_death,
                             retry_policy=retry_policy,
                             hang_timeout=hang_timeout,
                             on_result=on_result,
                             on_job_failure=on_job_failure,
                             prior_deaths=prior_deaths)
        if hung_out is not None:
            hung_out.extend(report.hung_shards)
        return report.results
    if mode != "thread":
        raise ValueError(f"unknown cluster mode {mode!r} "
                         "(expected 'thread' or 'process')")
    server = ClusterServer(machine_config, payloads, faults=faults,
                           retry_policy=retry_policy, on_result=on_result,
                           on_job_failure=on_job_failure,
                           prior_deaths=prior_deaths)
    if server.job_count == 0:
        return []
    pool_size = min(max(1, workers), server.job_count)
    next_worker_id = 0
    dead: List[ClusterWorker] = []
    while True:
        spawn = min(pool_size, max(1, server.unfinished_count()))
        pool = [ClusterWorker(server, next_worker_id + i, case_runner)
                for i in range(spawn)]
        next_worker_id += spawn
        for worker in pool:
            worker.start()
        hung = _join_round(pool, hang_timeout)
        if hung:
            if hung_out is not None:
                hung_out.extend(w.worker_id for w in hung)
        if machines_out is not None:
            # A hung worker's machine is written off with it — its state
            # is unknown, so its telemetry must not be trusted either.
            machines_out.extend(w.machine for w in pool
                                if w.machine is not None and not w.abandoned)
        round_dead = [w for w in pool if w.fatal_error is not None]
        dead.extend(round_dead)
        # Worker-death attribution: each dead (or hung) worker's held
        # job took a worker down — the quarantine ledger counts it.
        for worker in round_dead:
            held = worker.current_job
            if held is not None:
                held.worker_deaths += 1
                held.death_attributed = True
        # Retire the dead workers' cache ownership *now*: a replacement
        # must never observe (or re-compute around) entries published
        # from a machine that died in an undefined state.
        if on_worker_death is not None:
            for worker in round_dead:
                on_worker_death(worker.worker_id)
        cause = "; ".join(f"worker {w.worker_id}: {w.fatal_error}"
                          for w in dead) or "result lost in transit"
        # A round where not a single worker booted can never drain the
        # queue — charge the queued jobs so retries stay bounded.
        round_booted = any(w.machine is not None for w in pool)
        requeued = server.audit_round(max_job_retries, cause,
                                      charge_queued=not round_booted)
        if not requeued:
            break
        if retry_policy is not None:
            delay = retry_policy.backoff_seconds(
                max(job.failures for job in requeued))
            if delay > 0.0:
                time.sleep(delay)
    failed = server.failed_results()
    if failed and strict:
        missing = [result.job_id for result in failed]
        boot_errors = "; ".join(f"worker {w.worker_id}: {w.fatal_error}"
                                for w in dead) or "unknown cause"
        details = "; ".join(
            f"job {r.job_id}: {r.attempts} attempt(s), last cause "
            f"{r.last_fault_site or 'unknown'}" for r in failed)
        raise RuntimeError(
            f"cluster finished with {len(missing)} unfinished job(s) "
            f"{missing} ({boot_errors}) [{details}]")
    return server.results_in_order()


def _join_round(pool: List[ClusterWorker],
                hang_timeout: Optional[float]) -> List[ClusterWorker]:
    """Join one round of workers, abandoning any that stop beating.

    Without a *hang_timeout* this is a plain join.  With one, workers
    are polled: a worker whose heartbeat is older than the timeout is
    marked abandoned (it exits at its next loop check — Python threads
    cannot be killed) and written off as dead with its held job still
    attributed, exactly like a crash.  Returns the hung workers.
    """
    if hang_timeout is None:
        for worker in pool:
            worker.join()
        return []
    hung: List[ClusterWorker] = []
    active = list(pool)
    while active:
        for worker in list(active):
            worker.join(timeout=min(0.02, hang_timeout / 4))
            if not worker.is_alive():
                active.remove(worker)
                continue
            silent = time.monotonic() - worker.heartbeat
            if silent > hang_timeout:
                worker.abandoned = True
                worker.fatal_error = (
                    f"hung: worker {worker.worker_id} silent for "
                    f"{silent:.3f}s (> {hang_timeout:.3f}s watchdog)")
                hung.append(worker)
                active.remove(worker)
    return hung
