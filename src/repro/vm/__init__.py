"""VM layer: machines, snapshots, executors, and the distributed cluster."""

from .cluster import ClusterServer, ClusterWorker, Job, JobResult, run_distributed
from .executor import ExecutionResult, Executor, SyscallRecord
from .machine import (
    RECEIVER,
    SENDER,
    ContainerConfig,
    Machine,
    MachineConfig,
    MachineStats,
)
from .segments import RestoreConsistencyError, SegmentedImage, state_fingerprint
from .snapshot import Snapshot

__all__ = [
    "ClusterServer",
    "ClusterWorker",
    "ContainerConfig",
    "ExecutionResult",
    "Executor",
    "Job",
    "JobResult",
    "Machine",
    "MachineConfig",
    "MachineStats",
    "RECEIVER",
    "RestoreConsistencyError",
    "SENDER",
    "SegmentedImage",
    "Snapshot",
    "SyscallRecord",
    "run_distributed",
    "state_fingerprint",
]
