"""VM layer: machines, snapshots, executors, and the distributed cluster."""

from .cluster import (
    ClusterServer,
    ClusterWorker,
    Job,
    JobResult,
    affinity_order,
    run_distributed,
)
from .executor import ExecutionResult, Executor, SteppedExecution, SyscallRecord
from .machine import (
    RECEIVER,
    SENDER,
    ContainerConfig,
    Machine,
    MachineConfig,
    MachineStats,
)
from .segments import (
    RestoreConsistencyError,
    SegmentedImage,
    StateDelta,
    state_fingerprint,
)
from .snapshot import Snapshot

__all__ = [
    "ClusterServer",
    "ClusterWorker",
    "ContainerConfig",
    "ExecutionResult",
    "Executor",
    "Job",
    "JobResult",
    "Machine",
    "MachineConfig",
    "MachineStats",
    "RECEIVER",
    "RestoreConsistencyError",
    "SENDER",
    "SegmentedImage",
    "Snapshot",
    "StateDelta",
    "SteppedExecution",
    "SyscallRecord",
    "affinity_order",
    "run_distributed",
    "state_fingerprint",
]
