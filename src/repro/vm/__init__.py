"""VM layer: machines, snapshots, executors, and the distributed cluster."""

from .cluster import (
    ClusterServer,
    ClusterWorker,
    Job,
    JobResult,
    affinity_order,
    run_distributed,
)
from .executor import ExecutionResult, Executor, SteppedExecution, SyscallRecord
from .machine import (
    RECEIVER,
    SENDER,
    ContainerConfig,
    Machine,
    MachineConfig,
    MachineStats,
)
from .segments import (
    RestoreConsistencyError,
    SegmentedImage,
    StateDelta,
    state_fingerprint,
)
from .shardpool import ShardRunReport, fork_available, run_sharded
from .shm import (
    HAVE_SHM,
    DeltaStore,
    SegmentStore,
    SharedSnapshot,
    SharedSnapshotView,
)
from .snapshot import Snapshot

__all__ = [
    "ClusterServer",
    "ClusterWorker",
    "ContainerConfig",
    "DeltaStore",
    "ExecutionResult",
    "Executor",
    "HAVE_SHM",
    "Job",
    "JobResult",
    "Machine",
    "MachineConfig",
    "MachineStats",
    "RECEIVER",
    "RestoreConsistencyError",
    "SENDER",
    "SegmentStore",
    "SegmentedImage",
    "ShardRunReport",
    "SharedSnapshot",
    "SharedSnapshotView",
    "Snapshot",
    "StateDelta",
    "SteppedExecution",
    "SyscallRecord",
    "affinity_order",
    "fork_available",
    "run_distributed",
    "run_sharded",
    "state_fingerprint",
]
