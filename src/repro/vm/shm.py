"""Shared-memory segment store for the multiprocess shard pool.

The snapshot a campaign boots from, and the hot post-sender
:class:`~repro.vm.segments.StateDelta` blobs the sender cache memoizes,
are immutable byte strings.  When execution shards are separate
processes (``shard_mode="process"``), copying those bytes into every
shard would multiply the campaign's memory footprint by the shard count
and serialize boot on the copy.  This module instead places them in
POSIX shared memory (``multiprocessing.shared_memory``), so every shard
maps the same physical pages:

* :class:`SegmentStore` — the refcounted lifecycle manager.  Every
  segment a campaign creates carries a campaign-unique name prefix, so
  an end-of-campaign :meth:`~SegmentStore.cleanup` sweep can reclaim
  *every* segment — including ones published by a shard that was
  SIGKILLed mid-write — by globbing ``/dev/shm``.  No segment survives
  a campaign; :meth:`~SegmentStore.active_segments` is the leak audit.

* :class:`SharedSnapshot` — the base snapshot published once by the
  parent: the full kernel pickle plus the per-group segmented payloads,
  packed into one segment behind an offset table.  A shard attaches and
  boots its machine directly from the mapped bytes (zero copies of the
  payloads; see :meth:`~repro.vm.machine.Machine` ``shared_snapshot``).

* :class:`DeltaStore` — the shared tier of the two-tier sender cache.
  Entries use *deterministic* names (digest of the cache key), so no
  cross-process index is needed: publish is create-or-already-exists,
  fetch is attach-or-miss.

Torn-write safety: each segment starts with an 8-byte committed-length
header that is written *last*.  A reader that attaches a segment whose
writer died mid-copy sees length 0 and treats it as a miss; the
half-written segment is reclaimed by the cleanup sweep.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import resource_tracker, shared_memory
    HAVE_SHM = True
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]
    HAVE_SHM = False

#: Committed payload length, little-endian u64, written after the body.
_HEADER = struct.Struct("<Q")

#: Where Linux materializes POSIX shared memory as files; the cleanup
#: sweep and the leak audit glob this directory by campaign prefix.
_SHM_DIR = "/dev/shm"


def _untrack(name: str) -> None:
    """Detach *name* from the resource tracker's shutdown bookkeeping.

    Python registers every ``SharedMemory`` — attachments included —
    with the per-process resource tracker, which unlinks (and warns
    about) anything still registered at interpreter exit.  The store
    owns its segments' lifecycle explicitly, so tracker interference
    would double-unlink live segments out from under sibling shards.
    """
    if resource_tracker is None:
        return
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class SegmentStore:
    """Refcounted create/attach/close/unlink for one campaign's segments.

    All names share the campaign-unique :attr:`prefix`; suffixes are
    chosen by callers (the snapshot publisher, the delta store).  The
    store tracks every open mapping with a refcount so a segment's
    buffer is only closed when its last view is released, and remembers
    every name it ever touched so :meth:`cleanup` reclaims them even on
    platforms without a globbable ``/dev/shm``.
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        if not HAVE_SHM:
            raise RuntimeError("multiprocessing.shared_memory is not "
                               "available on this platform")
        self.prefix = prefix or \
            f"kitshm-{os.getpid():x}-{os.urandom(4).hex()}"
        self._lock = threading.Lock()
        #: full name -> (mapping, refcount, exported payload view).
        self._open: Dict[str, Tuple[Any, int, memoryview]] = {}
        #: every full name this store created or attached (cleanup set).
        self._known: set = set()
        #: mappings whose payload views are still borrowed (e.g. a live
        #: machine booted from them): detached from bookkeeping but kept
        #: referenced so they are not finalized under the borrower; the
        #: pages are freed when the process exits.
        self._zombies: List[Tuple[Any, memoryview]] = []
        self.created = 0
        self.created_bytes = 0

    def _release_mapping(self, segment: Any, view: memoryview) -> None:
        """Close one mapping, parking it if its view is still borrowed."""
        try:
            view.release()
            segment.close()
        except BufferError:
            # Neutralize the finalizer: it would retry the close at
            # interpreter shutdown (in arbitrary GC order) and spray
            # ignored BufferErrors.  The mapping is freed at exit.
            segment.close = lambda: None  # type: ignore[method-assign]
            with self._lock:
                self._zombies.append((segment, view))

    # -- naming ------------------------------------------------------------

    def name_of(self, suffix: str) -> str:
        return f"{self.prefix}-{suffix}"

    # -- create / attach ---------------------------------------------------

    def create(self, suffix: str, payload: bytes) -> bool:
        """Create and commit one segment; False if it already exists.

        The already-exists outcome is the deduplication contract the
        delta store's deterministic names rely on: two shards publishing
        the same key race on ``FileExistsError``, and the loser simply
        keeps its local copy.  The committed-length header is written
        after the body, so a reader never observes a torn payload.
        """
        name = self.name_of(suffix)
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=_HEADER.size + len(payload))
        except FileExistsError:
            return False
        try:
            _untrack(name)
            # Registered before the commit: if the copy below fails,
            # cleanup() can still find the name on platforms without a
            # globbable /dev/shm (the known set is its only fallback).
            with self._lock:
                self._known.add(name)
            segment.buf[_HEADER.size:_HEADER.size + len(payload)] = payload
            segment.buf[:_HEADER.size] = _HEADER.pack(len(payload))
        finally:
            segment.close()
        with self._lock:
            self.created += 1
            self.created_bytes += len(payload)
        return True

    def attach_view(self, suffix: str) -> Optional[memoryview]:
        """Map one committed segment and return its payload as a view.

        Returns ``None`` for a missing or uncommitted segment.  The
        mapping stays open (refcounted) until a matching
        :meth:`detach`; views are read-only so no shard can scribble on
        pages every other shard has mapped.
        """
        name = self.name_of(suffix)
        with self._lock:
            entry = self._open.get(name)
            if entry is not None:
                segment, refs, view = entry
                self._open[name] = (segment, refs + 1, view)
                return view
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return None
        _untrack(name)
        (length,) = _HEADER.unpack_from(segment.buf, 0)
        if _HEADER.size + length > segment.size:
            length = 0  # header corrupt: treat as uncommitted
        if length == 0:
            segment.close()
            return None
        view = segment.buf[_HEADER.size:_HEADER.size + length].toreadonly()
        with self._lock:
            self._known.add(name)
            racing = self._open.get(name)
            if racing is not None:
                # Lost an attach race in another thread: keep theirs.
                other, refs, other_view = racing
                self._open[name] = (other, refs + 1, other_view)
                view.release()
                segment.close()
                return other_view
            self._open[name] = (segment, 1, view)
        return view

    def detach(self, suffix: str) -> None:
        """Release one reference to an attached segment."""
        name = self.name_of(suffix)
        with self._lock:
            entry = self._open.get(name)
            if entry is None:
                return
            segment, refs, view = entry
            if refs > 1:
                self._open[name] = (segment, refs - 1, view)
                return
            del self._open[name]
        self._release_mapping(segment, view)

    def refcount(self, suffix: str) -> int:
        with self._lock:
            entry = self._open.get(self.name_of(suffix))
            return entry[1] if entry is not None else 0

    def fetch(self, suffix: str) -> Optional[bytes]:
        """Copy one committed segment's payload out (attach/copy/detach)."""
        view = self.attach_view(suffix)
        if view is None:
            return None
        try:
            return bytes(view)
        finally:
            self.detach(suffix)

    # -- unlink / cleanup --------------------------------------------------

    def unlink(self, suffix: str) -> bool:
        """Remove one segment's name; open mappings elsewhere stay valid.

        POSIX semantics: unlinking only removes the name, so a shard
        that already attached the segment keeps reading its pages; any
        later attach by name misses.  Idempotent — a second unlink (or
        unlinking a name a dead shard never finished creating) is a
        no-op.
        """
        name = self.name_of(suffix)
        with self._lock:
            entry = self._open.pop(name, None)
        if entry is not None:
            segment, _refs, view = entry
            self._release_mapping(segment, view)
        return self._unlink_name(name)

    def _unlink_name(self, name: str) -> bool:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        # No _untrack here: this attach registered with the tracker, and
        # segment.unlink() below unregisters — the pair balances.  An
        # extra unregister would make the tracker daemon log a KeyError.
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            _untrack(name)
            return False
        return True

    def active_segments(self) -> List[str]:
        """Every live segment with this store's prefix (the leak audit).

        Scans ``/dev/shm`` where available, so it also finds segments
        published by shards the parent never heard from (a SIGKILL
        between create and announce); falls back to the known-name set.
        """
        found = set()
        if os.path.isdir(_SHM_DIR):
            try:
                for entry in os.listdir(_SHM_DIR):
                    if entry.startswith(self.prefix):
                        found.add(entry)
            except OSError:  # pragma: no cover
                pass
        with self._lock:
            known = list(self._known)
        for name in known:
            if name not in found and os.path.exists(
                    os.path.join(_SHM_DIR, name)):
                found.add(name)
        return sorted(found)

    def open_mappings(self) -> int:
        """Number of segments this store currently has mapped."""
        with self._lock:
            return len(self._open)

    def cleanup(self) -> int:
        """Close every mapping and unlink every segment of this campaign.

        Returns the number of segments reclaimed.  Run in a ``finally``
        around the execution stage: combined with the campaign-unique
        prefix it guarantees no ``/dev/shm`` entry outlives the run, no
        matter how workers died.
        """
        with self._lock:
            open_now = list(self._open.values())
            self._open.clear()
        for segment, _refs, view in open_now:
            self._release_mapping(segment, view)
        reclaimed = 0
        for name in self.active_segments():
            if self._unlink_name(name):
                reclaimed += 1
        return reclaimed


def pack_segments(parts: Sequence[bytes]) -> bytes:
    """Concatenate byte blobs behind a u64 count + per-part length table."""
    head = _HEADER.pack(len(parts)) + b"".join(
        _HEADER.pack(len(part)) for part in parts)
    return head + b"".join(bytes(part) for part in parts)


def unpack_views(buffer: memoryview) -> List[memoryview]:
    """Slice a packed buffer back into zero-copy per-part views."""
    (count,) = _HEADER.unpack_from(buffer, 0)
    lengths = [_HEADER.unpack_from(buffer, _HEADER.size * (1 + i))[0]
               for i in range(count)]
    views: List[memoryview] = []
    offset = _HEADER.size * (1 + count)
    for length in lengths:
        views.append(buffer[offset:offset + length])
        offset += length
    return views


class SharedSnapshotView:
    """One shard's mapping of the published base snapshot."""

    __slots__ = ("content_id", "description", "blob", "payloads")

    def __init__(self, content_id: str, description: str,
                 blob: memoryview, payloads: Optional[List[memoryview]]):
        self.content_id = content_id
        self.description = description
        self.blob = blob
        #: Per-group segmented payloads, or None for full-restore
        #: snapshots (no segmented image was published).
        self.payloads = payloads


class SharedSnapshot:
    """The base snapshot, published once and mapped by every shard.

    Layout (one segment, suffix ``snap``): a pickled metadata dict
    (content id, description, whether a segmented image is included),
    the full kernel pickle, then one part per segmented group payload —
    all behind :func:`pack_segments`' offset table.  The content id is
    carried from the parent, so a shard's machine reports the *same*
    :attr:`~repro.vm.machine.Machine.snapshot_id` without hashing the
    blob again — the compatibility key every shared delta relies on.
    """

    SUFFIX = "snap"

    def __init__(self, store: SegmentStore) -> None:
        self._store = store

    @classmethod
    def publish(cls, store: SegmentStore, snapshot: Any) -> "SharedSnapshot":
        """Pack *snapshot* (a :class:`~repro.vm.snapshot.Snapshot`)."""
        meta = {
            "content_id": snapshot.content_id,
            "description": snapshot.description,
            "segmented": snapshot.image is not None,
        }
        parts: List[bytes] = [
            pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL),
            snapshot.blob,
        ]
        if snapshot.image is not None:
            parts.extend(snapshot.image.payloads)
        if not store.create(cls.SUFFIX, pack_segments(parts)):
            raise RuntimeError("base snapshot already published "
                               f"under prefix {store.prefix}")
        return cls(store)

    def attach(self) -> SharedSnapshotView:
        """Map the published snapshot (call in the shard process)."""
        buffer = self._store.attach_view(self.SUFFIX)
        if buffer is None:
            raise RuntimeError("shared base snapshot is missing "
                               f"(prefix {self._store.prefix})")
        parts = unpack_views(buffer)
        meta = pickle.loads(parts[0])
        payloads = list(parts[2:]) if meta["segmented"] else None
        return SharedSnapshotView(meta["content_id"], meta["description"],
                                  parts[1], payloads)

    def detach(self) -> None:
        self._store.detach(self.SUFFIX)


class DeltaStore:
    """Publish-once shared blobs under deterministic digest names.

    The shared tier of the two-tier sender cache: keys are the local
    tier's ``(snapshot content id, sender hash)`` tuples, hashed into a
    segment suffix.  Because the name is a pure function of the key, no
    cross-process index exists to keep coherent — *the shm namespace is
    the index*.  ``publish`` is idempotent across shards (first create
    wins); ``fetch`` is attach-or-miss.

    Each process tracks the names it published
    (:meth:`take_published`) so the shard protocol can report them to
    the supervisor — the hook for unlinking a dead shard's blobs, the
    process-mode analogue of cache owner invalidation.
    """

    def __init__(self, store: SegmentStore) -> None:
        self._store = store
        self._lock = threading.Lock()
        self._published: List[str] = []
        self.publishes = 0
        self.fetch_hits = 0
        self.fetch_misses = 0

    @staticmethod
    def suffix_of(key: Any) -> str:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return f"d{digest[:32]}"

    def publish(self, key: Any, payload: bytes) -> Optional[str]:
        """Publish *payload* under *key*; None if already present."""
        suffix = self.suffix_of(key)
        if not self._store.create(suffix, payload):
            return None
        with self._lock:
            self._published.append(suffix)
            self.publishes += 1
        return suffix

    def fetch(self, key: Any) -> Optional[bytes]:
        payload = self._store.fetch(self.suffix_of(key))
        with self._lock:
            if payload is None:
                self.fetch_misses += 1
            else:
                self.fetch_hits += 1
        return payload

    def unlink(self, suffix: str) -> bool:
        return self._store.unlink(suffix)

    def take_published(self) -> List[str]:
        """Names published by this process since the last take."""
        with self._lock:
            published, self._published = self._published, []
            return published
