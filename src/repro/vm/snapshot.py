"""Kernel snapshots — the QEMU/QMP snapshot stand-in (§5.2).

A snapshot is a pickled kernel; ``restore()`` deserializes a completely
independent copy, so every test-case execution and profiling run starts
from the identical machine state (§4.1.1's "systematic execution
environment").  Tracers are excluded from snapshots by the kernel's own
``__getstate__``.
"""

from __future__ import annotations

import pickle
from typing import Optional

from ..kernel.kernel import Kernel


class Snapshot:
    """An immutable, restorable kernel state."""

    __slots__ = ("blob", "description")

    def __init__(self, blob: bytes, description: str = ""):
        self.blob = blob
        self.description = description

    @classmethod
    def take(cls, kernel: Kernel, description: str = "") -> "Snapshot":
        return cls(pickle.dumps(kernel, protocol=pickle.HIGHEST_PROTOCOL),
                   description)

    def restore(self, boot_offset_ns: Optional[int] = None) -> Kernel:
        """Materialize a fresh kernel from the snapshot.

        *boot_offset_ns* rebases the virtual clock — the mechanism behind
        "re-runs the receiver program multiple times with different
        starting times" (§4.3.2).
        """
        kernel: Kernel = pickle.loads(self.blob)
        if boot_offset_ns is not None:
            kernel.clock.rebase(boot_offset_ns)
        return kernel

    @property
    def size_bytes(self) -> int:
        return len(self.blob)
