"""Kernel snapshots — the QEMU/QMP snapshot stand-in (§5.2).

A snapshot is a pickled kernel; ``restore()`` deserializes a completely
independent copy, so every test-case execution and profiling run starts
from the identical machine state (§4.1.1's "systematic execution
environment").  Tracers are excluded from snapshots by the kernel's own
``__getstate__``.

Snapshots can additionally be taken *segmented*
(``Snapshot.take(kernel, segmented=True)``): the same kernel state is
also decomposed into per-root payloads by
:class:`~repro.vm.segments.SegmentedImage`, bound to the live kernel the
snapshot was taken from.  :class:`~repro.vm.machine.Machine` uses the
image to restore **in place**, reloading only the segments a run
dirtied — the fast path behind the §6.5 throughput numbers.  The full
blob is always kept: it serves independent-copy restores (cluster
workers, tests) and is the byte-identity reference for the segmented
consistency check.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Optional

from ..faults.plan import SITE_RESTORE_FAIL, FaultPlan, RestoreFaultInjected
from ..kernel.kernel import Kernel
from .segments import SegmentedImage


class Snapshot:
    """An immutable, restorable kernel state."""

    __slots__ = ("blob", "description", "image", "_content_id")

    def __init__(self, blob: bytes, description: str = "",
                 image: Optional[SegmentedImage] = None,
                 content_id: Optional[str] = None):
        self.blob = blob
        self.description = description
        #: Segmented view bound to the snapshotted kernel, when taken
        #: with ``segmented=True``; None otherwise.
        self.image = image
        #: *content_id* pre-seeds the digest — a shard booting from a
        #: shared-memory snapshot view inherits the publisher's id
        #: instead of re-hashing the (borrowed) blob, so derived-state
        #: cache keys agree across processes by construction.
        self._content_id: Optional[str] = content_id

    @property
    def content_id(self) -> str:
        """Digest of the snapshot blob — the cache key for derived state.

        Machines booted from the same :class:`MachineConfig` in the same
        process produce identical pickles (same construction order, same
        hash seed), hence the same content id and the same segmented
        group layout — which is exactly the compatibility a
        :class:`~repro.vm.segments.StateDelta` needs to move between
        cluster workers.
        """
        if self._content_id is None:
            self._content_id = hashlib.sha256(self.blob).hexdigest()
        return self._content_id

    @classmethod
    def take(cls, kernel: Kernel, description: str = "",
             segmented: bool = False) -> "Snapshot":
        blob = pickle.dumps(kernel, protocol=pickle.HIGHEST_PROTOCOL)
        image = SegmentedImage.build(kernel) if segmented else None
        return cls(blob, description, image)

    def restore(self, boot_offset_ns: Optional[int] = None,
                faults: Optional[FaultPlan] = None) -> Kernel:
        """Materialize a fresh, independent kernel from the snapshot.

        *boot_offset_ns* rebases the virtual clock — the mechanism behind
        "re-runs the receiver program multiple times with different
        starting times" (§4.3.2).

        *faults* registers this full deserialization as a
        ``restore.fail`` injection site: a firing raises
        :class:`RestoreFaultInjected` before any state is produced, the
        stand-in for a QMP ``loadvm`` that errors out.  The caller
        (:meth:`Machine.reset <repro.vm.machine.Machine.reset>`) owns
        the bounded-retry recovery.
        """
        if faults is not None and faults.should_inject(SITE_RESTORE_FAIL):
            raise RestoreFaultInjected(
                SITE_RESTORE_FAIL, "injected full-snapshot restore failure")
        kernel: Kernel = pickle.loads(self.blob)
        if boot_offset_ns is not None:
            kernel.clock.rebase(boot_offset_ns)
        return kernel

    @property
    def size_bytes(self) -> int:
        return len(self.blob)

    @property
    def segment_count(self) -> int:
        """Number of independently restorable segments (0 if unsegmented)."""
        return self.image.group_count if self.image is not None else 0

    @property
    def segmented_bytes(self) -> int:
        """Total payload size of the segmented view (0 if unsegmented)."""
        return self.image.segmented_bytes if self.image is not None else 0
