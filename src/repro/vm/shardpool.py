"""The multiprocess shard pool: shared-nothing workers, stolen ranges.

The thread cluster (:mod:`repro.vm.cluster`) reproduces KIT's job
protocol but stays GIL-bound; this module is the same protocol across
*processes*.  Each shard is forked from the supervisor, boots its own
:class:`~repro.vm.machine.Machine` (from the shared-memory base
snapshot when one is provided), and owns a contiguous, affinity-ordered
*range* of the round's jobs instead of pulling from a single queue.

Work stealing
-------------

A single shared queue would serialize shards on a lock; static ranges
alone would strand a fast shard while a slow one drags its tail.  The
dispatcher splits the difference with victim-acknowledged stealing:

1. A shard that exhausts its range reports ``idle``.
2. The supervisor picks the victim with the most unfinished jobs and
   sends it a ``steal`` request (at most one outstanding per victim).
3. The victim — the only authority on its own cursor — answers at its
   next job boundary with the tail half of its remaining range (possibly
   empty), which the supervisor grants to the thief.

The split is at job-range granularity and never includes the victim's
in-flight job, so a job runs on exactly one shard per round and the
inverse-permutation merge by job id stays byte-deterministic regardless
of who executed what.

Supervision
-----------

Rounds mirror ``run_distributed``: shards run until they exit, the
supervisor settles the round (dead shard's *held* job charged a failed
attempt, the rest of its range re-queued uncharged), and fresh worker
ids are spawned for whatever remains.  Process death is observed via
``multiprocessing.connection.wait`` on the process sentinels, so a
SIGKILLed shard — the ``worker.kill`` chaos site announces itself, then
kills its own process — is detected without polling.  Fault accounting
crosses the process boundary as counter *deltas* shipped in each
shard's final message; a shard that dies silently loses only
locally-balanced counters, so the campaign invariant
``injected == recovered + infra_failed`` holds regardless.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from multiprocessing.connection import wait as _wait_ready

from ..faults.plan import (
    SITE_RESULT_DROP,
    SITE_WORKER_CRASH,
    SITE_WORKER_KILL,
    SITE_WORKER_SLOW,
    FaultPlan,
    WorkerCrashInjected,
)
from ..faults.retry import (
    CAUSE_TRANSIT,
    CAUSE_WORKER_DEATH,
    RetryPolicy,
    describe_failures,
    tally,
)
from .cluster import Job, JobResult
from .machine import Machine, MachineConfig


#: Occurrence key for worker-site decisions inside a shard is
#: ``job_id + attempt * _ATTEMPT_STRIDE``: globally deterministic (no
#: per-process counter stream), unique per (job, retry attempt), and a
#: retried job draws a fresh decision so scheduled faults fire once.
_ATTEMPT_STRIDE = 1_000_003


def fork_available() -> bool:
    """Process shards need ``fork`` (closures cross via inherited memory)."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover
        return False


@dataclass
class ShardRunReport:
    """Everything one ``run_sharded`` call produced."""

    #: Results ordered by job id (inverse-permutation merge input).
    results: List[JobResult] = field(default_factory=list)
    #: One entry per cleanly-retired shard: whatever the caller's
    #: ``telemetry_hook(machine)`` returned in that shard process.
    telemetry: List[Any] = field(default_factory=list)
    steals_attempted: int = 0
    steals_granted: int = 0
    jobs_stolen: int = 0
    rounds: int = 0
    shards_spawned: int = 0
    shards_died: int = 0
    #: Worker ids of shards the heartbeat watchdog SIGKILLed (they went
    #: silent, or sat on one job, longer than ``hang_timeout``).  Hung
    #: shards also count in ``shards_died``.
    hung_shards: List[int] = field(default_factory=list)
    #: Shared-segment names announced by shards that later died; the
    #: supervisor passed each batch to ``on_owner_segments``.
    retired_segments: List[str] = field(default_factory=list)


def _stats_delta(faults: Optional[FaultPlan],
                 base: Optional[Tuple[Dict[str, int], ...]]
                 ) -> Optional[Tuple[Dict[str, int], ...]]:
    """Per-site counter growth in this process since *base*."""
    if faults is None or base is None:
        return None
    now = faults.stats.snapshot()
    return tuple(
        {site: count - earlier.get(site, 0)
         for site, count in current.items()
         if count - earlier.get(site, 0)}
        for current, earlier in zip(now, base)
    )


def _merge_stats_delta(faults: Optional[FaultPlan],
                       delta: Optional[Tuple[Dict[str, int], ...]]) -> None:
    if faults is None or delta is None:
        return
    if len(delta) == 4:
        injected, recovered, infra, poisoned = delta
    else:  # a 3-column delta from an older shard snapshot shape
        injected, recovered, infra = delta
        poisoned = None
    faults.stats.merge_delta(injected, recovered, infra, poisoned)


def _shard_main(worker_id: int, ctrl, out, boot: Callable[[], Machine],
                round_jobs: Sequence[Tuple[int, Any]],
                case_runner: Callable[[Machine, Any], Any],
                faults: Optional[FaultPlan],
                telemetry_hook: Optional[Callable[[Machine], Any]],
                published_names: Optional[Callable[[], List[str]]],
                flush_hook: Optional[Callable[[], None]],
                start: int, end: int,
                heartbeat_interval: Optional[float] = None) -> None:
    """One shard process: run ranges, answer steals, report, retire.

    All messages go child -> parent on *out*; the parent commands via
    *ctrl* (``("steal", id)``, ``("range", start, end)``, ``("stop",)``).
    Ranges index into *round_jobs*, the round-local job list inherited
    through fork.  *flush_hook* runs before the final stats delta is
    computed on every messaged exit (done and fatal alike), so
    shard-local recovery paths — e.g. purging stale-tagged cache
    entries — settle their books before they are shipped.

    With a *heartbeat_interval*, a background thread sends
    ``("hb", worker_id, held_index)`` on that cadence after boot — the
    supervisor's watchdog input.  The heartbeat thread shares *out* with
    the main thread, so every send goes through one lock: pipe writes
    from two threads must never interleave mid-message.
    """
    names = published_names or (lambda: [])
    base = faults.stats.snapshot() if faults is not None else None
    send_lock = threading.Lock()

    def send(message: tuple) -> None:
        with send_lock:
            out.send(message)

    def flush() -> None:
        if flush_hook is not None:
            try:
                flush_hook()
            except Exception:  # pragma: no cover - best-effort settle
                pass
    try:
        machine = boot()
    except Exception as error:
        send(("fatal", worker_id, None,
              f"{type(error).__name__}: {error}", [],
              _stats_delta(faults, base), names()))
        return
    machine.cluster_worker_id = worker_id
    cursor, limit = start, end
    held: Optional[int] = None
    stopping = False

    if heartbeat_interval is not None:
        beat_stop = threading.Event()

        def beat() -> None:
            while not beat_stop.wait(heartbeat_interval):
                try:
                    send(("hb", worker_id, held))
                except (BrokenPipeError, OSError):
                    return

        threading.Thread(target=beat, name=f"kit-shard-{worker_id}-hb",
                         daemon=True).start()

    def handle(command: tuple) -> bool:
        """Apply one control message; False means stop."""
        nonlocal cursor, limit
        kind = command[0]
        if kind == "steal":
            remaining = limit - cursor
            give = remaining // 2
            send(("steal_ack", worker_id, command[1],
                  limit - give, limit))
            limit -= give
            return True
        if kind == "range":
            cursor, limit = command[1], command[2]
            return True
        return False  # "stop"

    try:
        while True:
            while ctrl.poll():
                if not handle(ctrl.recv()):
                    stopping = True
                    break
            if stopping:
                break
            if cursor >= limit:
                send(("idle", worker_id, names()))
                while cursor >= limit:
                    if not handle(ctrl.recv()):
                        stopping = True
                        break
                if stopping:
                    break
                continue
            index = cursor
            held = index
            job_id, payload, attempt = round_jobs[index]
            if faults is not None:
                occurrence = job_id + attempt * _ATTEMPT_STRIDE
                if faults.fires_at(SITE_WORKER_SLOW, occurrence):
                    faults.stats.note_injected(SITE_WORKER_SLOW)
                    time.sleep(faults.slow_seconds)
                    faults.record_recovered([SITE_WORKER_SLOW])
                if faults.fires_at(SITE_WORKER_CRASH, occurrence):
                    faults.stats.note_injected(SITE_WORKER_CRASH)
                    raise WorkerCrashInjected(
                        f"injected crash on shard {worker_id} "
                        f"holding job {job_id}")
                if faults.fires_at(SITE_WORKER_KILL, occurrence):
                    # Announce, flush, die: the supervisor accounts the
                    # injection (this process's counters die with it)
                    # and charges exactly the announced job.
                    send(("killing", worker_id, index, names()))
                    os.kill(os.getpid(), signal.SIGKILL)
            try:
                outcome = case_runner(machine, payload)
                error = None
            except Exception as failure:  # defensive: report, keep shard
                outcome = None
                error = f"{type(failure).__name__}: {failure}"
            send(("result", worker_id, index, outcome, error, names()))
            held = None
            cursor += 1
    except WorkerCrashInjected as error:
        flush()
        send(("fatal", worker_id, held,
              f"{type(error).__name__}: {error}", [SITE_WORKER_CRASH],
              _stats_delta(faults, base), names()))
        return
    except BaseException as error:  # genuine shard death
        flush()
        send(("fatal", worker_id, held,
              f"{type(error).__name__}: {error}", [],
              _stats_delta(faults, base), names()))
        return
    flush()
    telemetry = telemetry_hook(machine) if telemetry_hook is not None else None
    send(("done", worker_id, telemetry,
          _stats_delta(faults, base), names()))


@dataclass
class _Shard:
    """Supervisor-side state of one live shard process."""

    worker_id: int
    proc: Any
    ctrl: Any
    out: Any
    #: Round-local indices granted and not yet executed, in order.
    remaining: List[int]
    state: str = "running"  # running | waiting | granted | stopping
    booted: bool = False
    steal_pending: bool = False
    exit_kind: Optional[str] = None  # done | fatal | killed | died | hung
    fatal_error: Optional[str] = None
    held_index: Optional[int] = None
    pending_sites: List[str] = field(default_factory=list)
    published: List[str] = field(default_factory=list)
    telemetry: Any = None
    #: Watchdog inputs: time of the last message received from this
    #: shard, and how long it has reported the same held job.
    last_message: float = 0.0
    last_held: Optional[int] = None
    held_since: float = 0.0


def run_sharded(machine_config: MachineConfig, payloads: Sequence[Any],
                case_runner: Callable[[Machine, Any], Any],
                workers: int = 2, *,
                boot: Optional[Callable[[], Machine]] = None,
                faults: Optional[FaultPlan] = None,
                max_job_retries: int = 0,
                strict: bool = True,
                on_worker_death: Optional[Callable[[int], None]] = None,
                on_owner_segments: Optional[Callable[[List[str]],
                                                     None]] = None,
                telemetry_hook: Optional[Callable[[Machine], Any]] = None,
                published_names: Optional[Callable[[],
                                                   List[str]]] = None,
                flush_hook: Optional[Callable[[], None]] = None,
                retry_policy: Optional[RetryPolicy] = None,
                hang_timeout: Optional[float] = None,
                on_result: Optional[Callable[[Job, JobResult],
                                             None]] = None,
                on_job_failure: Optional[Callable[[Job, str],
                                                  None]] = None,
                prior_deaths: Optional[Dict[int, int]] = None
                ) -> ShardRunReport:
    """Run *payloads* through *case_runner* on a process shard pool.

    The process-mode counterpart of
    :func:`~repro.vm.cluster.run_distributed`, with the same retry,
    strictness, and ``on_worker_death`` contracts.  Extra hooks:

    * *boot* builds each shard's machine inside the shard process
      (default: ``Machine(machine_config)``; the pipeline passes a
      shared-snapshot boot closure).
    * *telemetry_hook* runs in the shard at clean retirement; its
      (picklable) return value lands in ``report.telemetry``.
    * *published_names* is polled in the shard for shared-segment names
      it published since last poll; *on_owner_segments* receives a dead
      shard's announced names so the caller can unlink them (the
      process-mode owner invalidation).

    Self-healing extensions mirror ``run_distributed``: *retry_policy*
    (per-cause budgets, backoff, poison quarantine), *hang_timeout*
    (shards heartbeat every ``hang_timeout / 4`` seconds; one silent —
    or stuck on the same held job — longer than the timeout is SIGKILLed
    and settled like any other dead shard, with its id recorded in
    ``report.hung_shards``), *on_result* / *on_job_failure* commit
    hooks, and *prior_deaths* quarantine seeding for resumed campaigns.
    """
    report = ShardRunReport()
    payloads = list(payloads)
    if not payloads:
        return report
    if not fork_available():
        raise RuntimeError(
            "process shard mode requires the fork start method; "
            "use mode='thread' on this platform")
    ctx = multiprocessing.get_context("fork")
    boot = boot or (lambda: Machine(machine_config))
    jobs: Dict[int, Job] = {job_id: Job(job_id, payload)
                            for job_id, payload in enumerate(payloads)}
    if prior_deaths:
        # Worker deaths journaled by earlier (crashed) runs of the same
        # campaign keep counting toward quarantine.
        for job_id, deaths in prior_deaths.items():
            if job_id in jobs:
                jobs[job_id].worker_deaths = deaths
    heartbeat_interval = hang_timeout / 4 if hang_timeout else None
    completed: Dict[int, JobResult] = {}
    failed: Dict[int, JobResult] = {}
    pool_size = min(max(1, workers), len(jobs))
    next_worker_id = 0
    dead_descriptions: List[str] = []
    steal_seq = 0

    while True:
        outstanding = [job_id for job_id in sorted(jobs)
                       if job_id not in completed and job_id not in failed]
        if not outstanding:
            break
        round_jobs = [(job_id, jobs[job_id].payload, jobs[job_id].failures)
                      for job_id in outstanding]
        spawn = min(pool_size, len(round_jobs))
        report.rounds += 1
        report.shards_spawned += spawn
        shards: Dict[int, _Shard] = {}
        quotient, remainder = divmod(len(round_jobs), spawn)
        position = 0
        for slot in range(spawn):
            size = quotient + (1 if slot < remainder else 0)
            start, end = position, position + size
            position = end
            worker_id = next_worker_id
            next_worker_id += 1
            ctrl_recv, ctrl_send = ctx.Pipe(duplex=False)
            out_recv, out_send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_shard_main,
                args=(worker_id, ctrl_recv, out_send, boot, round_jobs,
                      case_runner, faults, telemetry_hook, published_names,
                      flush_hook, start, end, heartbeat_interval),
                name=f"kit-shard-{worker_id}", daemon=True)
            proc.start()
            # The parent's copies of the child-side ends must close so
            # the pipes belong to exactly one process each.
            ctrl_recv.close()
            out_send.close()
            now = time.monotonic()
            shards[worker_id] = _Shard(worker_id, proc, ctrl_send, out_recv,
                                       remaining=list(range(start, end)),
                                       last_message=now, held_since=now)

        dropped: set = set()
        waiting: List[int] = []
        #: steal id -> (thief, victim) worker ids, for grant routing.
        grants_pending: Dict[int, Tuple[int, int]] = {}

        def send_stop(shard: _Shard) -> None:
            if shard.state != "stopping" and shard.exit_kind is None:
                shard.state = "stopping"
                try:
                    shard.ctrl.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass

        def match_thieves() -> None:
            """Pair waiting thieves with the longest-running victims."""
            nonlocal steal_seq
            while waiting:
                potential = [s for s in shards.values()
                             if s.exit_kind is None and s.state == "running"
                             and len(s.remaining) >= 2]
                if not potential:
                    if grants_pending:
                        # A split is in flight; its ack may still feed
                        # the queue, so thieves keep waiting for it.
                        return
                    for thief_id in waiting:
                        send_stop(shards[thief_id])
                    waiting.clear()
                    return
                available = [s for s in potential if not s.steal_pending]
                if not available:
                    return  # all victims mid-split; acks re-match
                victim = max(available, key=lambda s: (len(s.remaining),
                                                       -s.worker_id))
                thief_id = waiting.pop(0)
                steal_seq += 1
                grants_pending[steal_seq] = (thief_id, victim.worker_id)
                victim.steal_pending = True
                shards[thief_id].state = "granted"
                report.steals_attempted += 1
                try:
                    victim.ctrl.send(("steal", steal_seq))
                except (BrokenPipeError, OSError):
                    victim.steal_pending = False
                    del grants_pending[steal_seq]
                    waiting.insert(0, thief_id)
                    return

        def handle_message(message: tuple) -> None:
            kind = message[0]
            shard = shards[message[1]]
            shard.last_message = time.monotonic()
            if kind == "hb":
                _, _worker_id, held = message
                shard.booted = True
                if held != shard.last_held:
                    shard.last_held = held
                    shard.held_since = shard.last_message
            elif kind == "result":
                _, worker_id, index, outcome, error, names = message
                shard.booted = True
                shard.published.extend(names)
                if index in shard.remaining:
                    shard.remaining.remove(index)
                if shard.last_held == index:
                    shard.last_held = None
                job_id = round_jobs[index][0]
                job = jobs[job_id]
                if faults is not None \
                        and faults.should_inject(SITE_RESULT_DROP):
                    # Lost in transit: the round settlement notices the
                    # gap and charges a failed attempt, as in thread
                    # mode's fetched-but-unfinished audit.
                    job.pending_sites.append(SITE_RESULT_DROP)
                    dropped.add(index)
                    return
                committed = None
                if job_id not in completed and job_id not in failed:
                    committed = JobResult(job_id, outcome, worker_id,
                                          error=error,
                                          attempts=job.failures,
                                          last_fault_site=job.last_cause)
                    completed[job_id] = committed
                if faults is not None and job.pending_sites:
                    faults.record_recovered(job.pending_sites)
                    job.pending_sites = []
                if committed is not None and on_result is not None:
                    on_result(job, committed)
            elif kind == "idle":
                _, worker_id, names = message
                shard.booted = True
                shard.published.extend(names)
                if shard.state in ("running", "granted"):
                    shard.state = "waiting"
                    waiting.append(worker_id)
                match_thieves()
            elif kind == "steal_ack":
                _, _worker_id, steal_id, give_start, give_end = message
                shard.steal_pending = False
                stolen = [index for index in range(give_start, give_end)
                          if index in shard.remaining]
                for index in stolen:
                    shard.remaining.remove(index)
                routed = grants_pending.pop(steal_id, None)
                thief = shards.get(routed[0]) if routed is not None else None
                if thief is not None and thief.exit_kind is None \
                        and stolen and thief.state == "granted":
                    thief.remaining = stolen
                    thief.state = "running"
                    report.steals_granted += 1
                    report.jobs_stolen += len(stolen)
                    try:
                        thief.ctrl.send(("range", give_start, give_end))
                    except (BrokenPipeError, OSError):
                        pass  # thief died: round settlement re-queues
                else:
                    if stolen:
                        # Thief vanished between request and grant: the
                        # jobs belong to no shard now; the settlement
                        # re-queues them uncharged.
                        pass
                    if thief is not None and thief.exit_kind is None:
                        thief.state = "waiting"
                        waiting.append(thief.worker_id)
                match_thieves()
            elif kind == "killing":
                _, worker_id, index, names = message
                shard.booted = True
                shard.published.extend(names)
                shard.exit_kind = "killed"
                shard.held_index = index
                shard.pending_sites = [SITE_WORKER_KILL]
                shard.fatal_error = (f"injected SIGKILL holding job "
                                     f"{round_jobs[index][0]}")
                if faults is not None:
                    # The shard's own counters die with it; the
                    # supervisor keeps the campaign ledger.
                    faults.stats.note_injected(SITE_WORKER_KILL)
            elif kind == "fatal":
                (_, _worker_id, held, error, pending, delta,
                 names) = message
                shard.published.extend(names)
                shard.exit_kind = "fatal"
                shard.fatal_error = error
                shard.held_index = held
                shard.pending_sites = list(pending)
                if held is not None:
                    shard.booted = True
                _merge_stats_delta(faults, delta)
            elif kind == "done":
                _, _worker_id, telemetry, delta, names = message
                shard.booted = True
                shard.published.extend(names)
                shard.exit_kind = "done"
                shard.telemetry = telemetry
                _merge_stats_delta(faults, delta)

        def finalize(shard: _Shard) -> None:
            if shard.exit_kind is None:
                shard.exit_kind = "died"
                shard.fatal_error = shard.fatal_error or \
                    f"process exited (code {shard.proc.exitcode})"
            if shard.worker_id in waiting:
                waiting.remove(shard.worker_id)
            if shard.steal_pending:
                # Its ack will never come; un-route the thief parked on
                # this victim so it can re-match or stop.
                shard.steal_pending = False
                for steal_id, (thief_id, victim_id) \
                        in list(grants_pending.items()):
                    if victim_id != shard.worker_id:
                        continue
                    thief = shards.get(thief_id)
                    del grants_pending[steal_id]
                    if thief is not None and thief.exit_kind is None \
                            and thief.state == "granted":
                        thief.state = "waiting"
                        waiting.append(thief_id)

        def watchdog_sweep(live: Dict[int, _Shard]) -> None:
            """SIGKILL shards that stopped beating or sat on one job."""
            now = time.monotonic()
            for shard in live.values():
                if shard.exit_kind is not None:
                    continue
                silent = now - shard.last_message
                stuck = (now - shard.held_since
                         if shard.last_held is not None else 0.0)
                if silent <= hang_timeout and stuck <= hang_timeout:
                    continue
                shard.exit_kind = "hung"
                shard.held_index = shard.last_held
                if stuck > hang_timeout:
                    shard.fatal_error = (
                        f"hung: shard {shard.worker_id} stuck on job "
                        f"{round_jobs[shard.last_held][0]} for "
                        f"{stuck:.3f}s (> {hang_timeout:.3f}s watchdog)")
                else:
                    shard.fatal_error = (
                        f"hung: shard {shard.worker_id} silent for "
                        f"{silent:.3f}s (> {hang_timeout:.3f}s watchdog)")
                report.hung_shards.append(shard.worker_id)
                try:
                    shard.proc.kill()
                except (OSError, AttributeError):  # pragma: no cover
                    pass

        live: Dict[int, _Shard] = dict(shards)
        poll_timeout = hang_timeout / 4 if hang_timeout else None
        while live:
            by_conn = {shard.out: shard for shard in live.values()}
            by_sentinel = {shard.proc.sentinel: shard
                           for shard in live.values()}
            ready = _wait_ready(list(by_conn) + list(by_sentinel),
                                timeout=poll_timeout)
            exited: List[_Shard] = []
            for item in ready:
                shard = by_sentinel.get(item)
                if shard is not None:
                    exited.append(shard)
                    continue
                connection = item
                try:
                    while connection.poll():
                        handle_message(connection.recv())
                except (EOFError, OSError):
                    pass
            for shard in exited:
                # Drain anything the shard flushed before exiting.
                try:
                    while shard.out.poll():
                        handle_message(shard.out.recv())
                except (EOFError, OSError):
                    pass
                shard.proc.join()
                del live[shard.worker_id]
                finalize(shard)
            if hang_timeout is not None:
                watchdog_sweep(live)
            if live:
                match_thieves()

        # -- round settlement ----------------------------------------------
        round_dead = [shard for shard in shards.values()
                      if shard.exit_kind != "done"]
        report.shards_died += len(round_dead)
        for shard in shards.values():
            if shard.exit_kind == "done" and shard.telemetry is not None:
                report.telemetry.append(shard.telemetry)
        for shard in round_dead:
            dead_descriptions.append(
                f"worker {shard.worker_id}: {shard.fatal_error}")
            if on_worker_death is not None:
                on_worker_death(shard.worker_id)
            if shard.published:
                report.retired_segments.extend(shard.published)
                if on_owner_segments is not None:
                    on_owner_segments(list(shard.published))
        cause = "; ".join(dead_descriptions) or "result lost in transit"

        def settle(job: Job) -> str:
            """Settle one charged job: ``retry`` | ``infra`` | ``poisoned``."""
            if retry_policy is None:
                # Historical flat budget: every failure counts the same.
                if job.failures <= max_job_retries:
                    return "retry"  # stays outstanding: next round re-runs
                failed[job.job_id] = JobResult(
                    job.job_id, None, worker=-1,
                    error=f"retries exhausted after {job.failures} "
                          f"failed attempt(s) ({cause})",
                    attempts=job.failures, last_fault_site=job.last_cause)
                if faults is not None and job.pending_sites:
                    faults.record_infra_failed(job.pending_sites)
                    job.pending_sites = []
                return "infra"
            if retry_policy.should_poison(job.worker_deaths):
                # Poison-pair quarantine: this job keeps taking shards
                # down with it — stop feeding it workers, forever.
                failed[job.job_id] = JobResult(
                    job.job_id, None, worker=-1,
                    error=f"poisoned: killed {job.worker_deaths} worker(s) "
                          f"({describe_failures(job.site_failures)})",
                    attempts=job.failures, last_fault_site=job.last_cause,
                    poisoned=True)
                if faults is not None:
                    faults.record_poisoned(job.pending_sites)
                    job.pending_sites = []
                return "poisoned"
            exhausted = retry_policy.exhausted_cause(job.site_failures)
            if exhausted is None:
                return "retry"
            failed[job.job_id] = JobResult(
                job.job_id, None, worker=-1,
                error=f"retry budget for {exhausted!r} exhausted after "
                      f"{job.failures} failed attempt(s) "
                      f"({describe_failures(job.site_failures)})",
                attempts=job.failures, last_fault_site=job.last_cause)
            if faults is not None and job.pending_sites:
                faults.record_infra_failed(job.pending_sites)
                job.pending_sites = []
            return "infra"

        def charge(job: Job) -> None:
            job.failures += 1
            # Attribute a cause to this failed attempt: the fault site
            # charged most recently, a real shard death, or a lost
            # transfer (mirrors the thread-mode audit).
            if job.pending_sites:
                attempt_cause = job.pending_sites[-1]
            elif job.death_attributed:
                attempt_cause = CAUSE_WORKER_DEATH
            else:
                attempt_cause = CAUSE_TRANSIT
            job.last_cause = attempt_cause
            tally(job.site_failures, attempt_cause)
            settlement = settle(job)
            if on_job_failure is not None:
                on_job_failure(job, settlement)
            job.death_attributed = False

        round_booted = any(shard.booted for shard in shards.values())
        if not round_booted:
            # No shard in the round ever booted: charge everything still
            # open, or a pool that can never boot would respawn forever.
            for job_id in outstanding:
                if job_id not in completed and job_id not in failed:
                    charge(jobs[job_id])
            continue
        charged: set = set()
        for shard in round_dead:
            held = shard.held_index
            if held is None and shard.remaining \
                    and (shard.booted
                         or shard.exit_kind in ("died", "hung")):
                # A silent death mid-range: charge the first unfinished
                # grant, the process analogue of fetched-but-unfinished.
                # A boot failure (fatal with no held job) charges
                # nothing — its untouched range just re-queues, the
                # still-queued semantics of the thread-mode audit.
                held = shard.remaining[0]
            if held is None or held in dropped or held in charged:
                continue
            job_id = round_jobs[held][0]
            if job_id in completed:
                continue  # its result landed before the death
            charged.add(held)
            job = jobs[job_id]
            job.pending_sites.extend(shard.pending_sites)
            # The shard died (or was watchdog-killed) holding this job:
            # the quarantine ledger counts the taken-down worker.
            job.worker_deaths += 1
            job.death_attributed = True
            charge(job)
        for index in dropped:
            job_id = round_jobs[index][0]
            if job_id not in completed and index not in charged:
                charged.add(index)
                charge(jobs[job_id])
        # Everything else unfinished — the tail of a dead shard's range,
        # a grant stranded by a dead thief — re-queues uncharged, the
        # still-queued semantics of the thread-mode audit.
        for shard in shards.values():
            for connection in (shard.ctrl, shard.out):
                try:
                    connection.close()
                except OSError:  # pragma: no cover
                    pass
        if retry_policy is not None:
            open_failures = [job.failures for job_id, job in jobs.items()
                             if job_id not in completed
                             and job_id not in failed and job.failures > 0]
            if open_failures:
                delay = retry_policy.backoff_seconds(max(open_failures))
                if delay > 0.0:
                    time.sleep(delay)

    if failed and strict:
        missing = sorted(failed)
        boot_errors = "; ".join(dead_descriptions) or "unknown cause"
        details = "; ".join(
            f"job {job_id}: {failed[job_id].attempts} attempt(s), "
            f"last cause {failed[job_id].last_fault_site or 'unknown'}"
            for job_id in missing)
        raise RuntimeError(
            f"cluster finished with {len(missing)} unfinished job(s) "
            f"{missing} ({boot_errors}) [{details}]")
    merged = {**completed, **failed}
    report.results = [merged[job_id] for job_id in sorted(merged)]
    return report
