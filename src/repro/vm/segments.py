"""Segmented kernel snapshots — the fast-restore engine behind §6.5.

A full snapshot restore deserializes the *entire* kernel before every
run, even though a short test program mutates only a sliver of it.  This
module decomposes one kernel into **segments** — disjoint groups of
snapshot *roots* (the kernel shell, the arena, the clock, every
subsystem singleton, every namespace instance, every task) — pickles
each group into its own payload, and restores **in place**: dirty
groups are re-materialized from their payloads while clean groups keep
their live (still-pristine) objects.

Correctness rests on three pillars:

1. **Identity-stable roots.**  Restoring never replaces a root object;
   it overwrites the root's ``__dict__``/slots from the payload.  Every
   cross-segment reference goes through a persistent id resolved against
   the live root table, so clean segments can never see a stale object.
2. **Closure by construction.**  While taking the snapshot, a canonical
   walk records every mutable interior object each root's state reaches.
   Roots that *share* a mutable interior are merged into one group
   (union-find) and pickled with a common memo, so a payload is always a
   closed object graph — no restore order can split a shared object in
   two or revive a stale alias.
3. **Write-barrier dirty tracking.**  Traced kernel-memory writes are
   mapped (field address → group) through a hook on the arena; untraced
   structural mutations (nsproxy swaps, mount-table edits, task and
   namespace creation) are marked explicitly via
   ``Kernel.mark_dirty_object``.  An opt-in consistency check re-walks
   every root after an incremental restore and compares its canonical
   state against the snapshot reference, naming any divergent root — so
   speed is never silently traded for correctness (see
   ``MachineConfig.verify_restore``).

The canonical serialization (:func:`state_fingerprint`) is deliberately
*not* ``pickle.dumps``: pickle encodes sharing of **immutable** objects
(interned strings, small ints) as memo back-references, so two
semantically identical kernels — one restored in place, one freshly
unpickled — can produce different pickles.  The canonical form encodes
values, dict ordering, and aliasing of **mutable** objects only, which
is exactly the state the kernel model can observe.

Objects created *after* the snapshot (sockets, open files, unshared
namespaces) are not roots: writes to their addresses are ignored, and
they vanish when the containers that reference them are restored — the
same lifetime they had under full restore.
"""

from __future__ import annotations

import enum
import io
import pickle
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..faults.plan import (
    SITE_RESTORE_FAIL,
    SITE_SEGMENT_CORRUPT,
    FaultPlan,
    RestoreFaultInjected,
)
from ..kernel.kernel import Kernel
from ..kernel.memory import KCell, KDict, KList, KStruct

#: A stable, picklable identifier for one snapshot root.
RootKey = Tuple[Any, ...]

_PROTO = pickle.HIGHEST_PROTOCOL

#: Kernel attributes that are runtime plumbing or dedicated roots of
#: their own, not ``("sub", name)`` subsystem roots.
_KERNEL_NON_SUB_ATTRS = frozenset({
    "config", "bugs", "tracer", "syscall_seq", "_dirty_roots",
    "arena", "clock", "namespaces", "tasks", "init_nsproxy",
    "init_mnt_ns", "init_net", "init_task",
})

#: Root keys whose groups are restored on *every* reset: their state
#: mutates through untraced paths on effectively every run (virtual
#: time, the syscall sequence counter, the allocator watermark, and
#: conntrack's per-tick background churn).
_ALWAYS_DIRTY_KEYS = (
    ("kernel",), ("clock",), ("arena",), ("sub", "conntrack"),
)


class RestoreConsistencyError(AssertionError):
    """An incremental restore produced state diverging from the snapshot."""

    def __init__(self, offenders: List[RootKey]):
        self.offenders = offenders
        super().__init__(
            "segmented restore diverged from the full snapshot on root(s) "
            + ", ".join(repr(key) for key in offenders)
            + " — a mutation escaped dirty tracking")


def _capture_state(key: RootKey, obj: Any) -> Dict[str, Any]:
    """One root's restorable state, preserving ``__dict__`` key order."""
    if key == ("arena",):
        # The arena's only kernel state is the allocator watermark; the
        # tracer and dirty hook are live plumbing that must survive.
        return {"_next_addr": obj._next_addr}
    d = getattr(obj, "__dict__", None)
    if d is not None:
        state = dict(d)
        if key == ("kernel",):
            state["tracer"] = None
            state["_dirty_roots"] = set()
        return state
    state = {}
    for cls in type(obj).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name != "__dict__" and hasattr(obj, name):
                state[name] = getattr(obj, name)
    return state


def _apply_state(key: RootKey, obj: Any, state: Dict[str, Any]) -> None:
    """Overwrite *obj* in place from *state*, keeping its identity."""
    if key == ("arena",):
        obj._next_addr = state["_next_addr"]
        return
    d = getattr(obj, "__dict__", None)
    if d is not None:
        d.clear()
        d.update(state)
    else:
        for name, value in state.items():
            setattr(obj, name, value)


def _addresses_of(obj: Any) -> Tuple[int, ...]:
    """Every traced kernel-memory address owned by *obj*."""
    if isinstance(obj, KStruct):
        base = obj._base
        return tuple(base + off for off in type(obj)._offsets.values())
    if isinstance(obj, (KCell, KList, KDict)):
        return (obj._addr,)
    return ()


class _CanonicalWalker:
    """Deterministic value-serializer for kernel state graphs.

    Produces bytes that are equal iff two graphs carry the same values,
    the same container orderings, and the same aliasing of mutable
    objects; identity of immutables is deliberately ignored.  Every
    mutable object visited is collected in :attr:`seen` — the walk
    doubles as the closure probe for segment grouping.
    """

    def __init__(self, root_ids: Dict[int, RootKey]):
        self._root_ids = root_ids
        self._memo: Dict[int, int] = {}
        self.seen: List[Any] = []

    def walk_state(self, state: Dict[str, Any]) -> bytes:
        """Canonical bytes of a root's captured state dict."""
        chunks = [b"S%d" % len(state)]
        for name, value in state.items():
            chunks.append(self._w(name))
            chunks.append(self._w(value))
        return b"".join(chunks)

    def _w(self, obj: Any) -> bytes:
        key = self._root_ids.get(id(obj))
        if key is not None:
            return b"R" + repr(key).encode()
        if obj is None or obj is True or obj is False:
            return b"c" + repr(obj).encode()
        kind = type(obj)
        if kind in (int, float, complex, str, bytes):
            return b"v" + repr(obj).encode()
        if isinstance(obj, enum.Enum):
            return (b"E" + type(obj).__qualname__.encode()
                    + b"." + obj.name.encode())
        if isinstance(obj, type):
            return b"T%s:%s" % (obj.__module__.encode(),
                                obj.__qualname__.encode())
        if kind in (tuple, frozenset):
            # Value types: encoded inline, never memoized (their sharing
            # is unobservable).  frozensets are order-canonicalized.
            parts = [self._w(item) for item in obj]
            if kind is frozenset:
                parts.sort()
            return b"t%d(" % len(parts) + b"".join(parts) + b")"
        index = self._memo.get(id(obj))
        if index is not None:
            return b"@%d" % index
        self._memo[id(obj)] = len(self._memo)
        self.seen.append(obj)
        if kind is dict:
            chunks = [b"d%d(" % len(obj)]
            for item_key, value in obj.items():
                chunks.append(self._w(item_key))
                chunks.append(self._w(value))
            return b"".join(chunks) + b")"
        if kind is list:
            return (b"l%d(" % len(obj)
                    + b"".join(self._w(item) for item in obj) + b")")
        if kind is set:
            parts = sorted(self._w(item) for item in obj)
            return b"s%d(" % len(parts) + b"".join(parts) + b")"
        if callable(obj) and not hasattr(obj, "__dict__") \
                and not hasattr(obj, "__slots__"):
            return b"F" + getattr(obj, "__qualname__", repr(obj)).encode()
        # Arbitrary object: class plus captured state.
        head = b"o%s:%s{" % (kind.__module__.encode(),
                             kind.__qualname__.encode())
        getstate = getattr(obj, "__getstate__", None)
        if getstate is not None:
            return head + self._w(getstate()) + b"}"
        d = getattr(obj, "__dict__", None)
        if d is not None:
            return head + self._w(d) + b"}"
        state = {}
        for cls in kind.__mro__:
            for name in getattr(cls, "__slots__", ()):
                if name != "__dict__" and hasattr(obj, name):
                    state[name] = getattr(obj, name)
        return head + self._w(state) + b"}"


def state_fingerprint(kernel: Kernel) -> bytes:
    """Canonical bytes of one kernel's complete observable state.

    Two kernels with equal fingerprints are indistinguishable to any
    test program: same values, same container orderings, same aliasing
    of mutable kernel objects.  Used by the segmented-vs-full restore
    equivalence tests and the benchmark regression gate.
    """
    return _CanonicalWalker({})._w(kernel)


class _GroupPickler(pickle.Pickler):
    """Payload writer: stubs roots with persistent ids."""

    def __init__(self, stream: io.BytesIO, root_pids: Dict[int, RootKey]):
        super().__init__(stream, protocol=_PROTO)
        self._root_pids = root_pids

    def persistent_id(self, obj: Any) -> Optional[Tuple[str, RootKey]]:
        key = self._root_pids.get(id(obj))
        if key is not None:
            return ("r", key)
        return None


class _ResolvingUnpickler(pickle.Unpickler):
    """Resolves persistent root references against the live root table."""

    def __init__(self, stream: io.BytesIO, live: Dict[RootKey, Any]):
        super().__init__(stream)
        self._live = live

    def persistent_load(self, pid: Tuple[str, RootKey]) -> Any:
        tag, key = pid
        if tag != "r":  # pragma: no cover - payload corruption guard
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._live[tuple(key)]


class _UnionFind:
    def __init__(self, count: int):
        self._parent = list(range(count))

    def find(self, index: int) -> int:
        parent = self._parent
        root = index
        while parent[root] != root:
            root = parent[root]
        while parent[index] != root:
            parent[index], index = root, parent[index]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


class SegmentedImage:
    """A segmented snapshot of one live kernel, bound to that kernel.

    Build with :meth:`build`; install the write barrier with
    :meth:`attach`; restore dirty segments with :meth:`restore_in_place`.
    """

    def __init__(self) -> None:
        self.kernel: Kernel = None  # type: ignore[assignment]
        #: RootKey -> live root object (identity-stable across restores).
        self.roots: Dict[RootKey, Any] = {}
        #: id(root) -> group index, for explicit object dirty marks.
        self._group_of_root_id: Dict[int, int] = {}
        #: group index -> pickled [(key, state), ...] payload.
        self.payloads: List[bytes] = []
        #: group index -> member root keys (diagnostics / telemetry).
        self.group_members: List[List[RootKey]] = []
        #: traced field address -> owning group index.
        self._addr_to_group: Dict[int, int] = {}
        #: per-root canonical state bytes, the consistency reference.
        self._reference: Dict[RootKey, bytes] = {}
        #: groups restored on every reset (untraced hot-path mutations).
        self.always_dirty: frozenset = frozenset()
        #: groups dirtied since the last restore (fed by the write hook
        #: and by the kernel's explicit object marks).
        self._dirty_groups: set = set()
        self.attached = False
        #: set when a ``segment.corrupt`` injection dropped a group from
        #: the last incremental restore; cleared by recovery.
        self.corruption_pending = False

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, kernel: Kernel) -> "SegmentedImage":
        image = cls()
        image.kernel = kernel
        image._enumerate_roots(kernel)
        root_keys = list(image.roots)
        root_pids = {id(obj): key for key, obj in image.roots.items()}

        # Probe pass: one canonical walk per root yields the consistency
        # reference, interior-object ownership, and traced-address
        # ownership.  ``keepalive`` pins every visited object (and the
        # temporary state dicts) until grouping is done, so ``id()``
        # keys cannot be recycled mid-build.
        owner: Dict[int, int] = {}
        uf = _UnionFind(len(root_keys))
        addr_owner: Dict[int, int] = {}
        keepalive: List[Any] = []
        for index, key in enumerate(root_keys):
            root = image.roots[key]
            state = _capture_state(key, root)
            walker = _CanonicalWalker(root_pids)
            image._reference[key] = walker.walk_state(state)
            keepalive.append((state, walker.seen))
            for addr in _addresses_of(root):
                addr_owner[addr] = index
            for obj in walker.seen:
                for addr in _addresses_of(obj):
                    addr_owner[addr] = index
                previous = owner.setdefault(id(obj), index)
                if previous != index:
                    uf.union(previous, index)

        # Grouping: one payload per union-find component, pickled with a
        # shared memo so intra-group sharing survives restore.
        component_to_group: Dict[int, int] = {}
        members: List[List[int]] = []
        for index in range(len(root_keys)):
            component = uf.find(index)
            group = component_to_group.setdefault(component, len(members))
            if group == len(members):
                members.append([])
            members[group].append(index)

        for group_indices in members:
            entries = []
            for index in group_indices:
                key = root_keys[index]
                entries.append((key, _capture_state(key, image.roots[key])))
            stream = io.BytesIO()
            _GroupPickler(stream, root_pids).dump(entries)
            image.payloads.append(stream.getvalue())
            image.group_members.append([root_keys[i] for i in group_indices])

        for group, group_indices in enumerate(members):
            for index in group_indices:
                root = image.roots[root_keys[index]]
                image._group_of_root_id[id(root)] = group
        image._addr_to_group = {
            addr: image._group_of_root_id[id(image.roots[root_keys[index]])]
            for addr, index in addr_owner.items()
        }
        image.always_dirty = frozenset(
            image._group_of_root_id[id(image.roots[key])]
            for key in _ALWAYS_DIRTY_KEYS if key in image.roots
        )
        del keepalive
        return image

    def _enumerate_roots(self, kernel: Kernel) -> None:
        roots = self.roots
        roots[("kernel",)] = kernel
        roots[("arena",)] = kernel.arena
        roots[("clock",)] = kernel.clock
        roots[("nsproxy0",)] = kernel.init_nsproxy
        roots[("registry",)] = kernel.namespaces
        roots[("tasktable",)] = kernel.tasks
        for name, value in kernel.__dict__.items():
            if name in _KERNEL_NON_SUB_ATTRS:
                continue
            roots[("sub", name)] = value
        for instances in kernel.namespaces.instances.values():
            for namespace in instances:
                roots[("ns", namespace.inum)] = namespace
        for task in kernel.tasks.tasks:
            roots[("task", task.base_address)] = task

    # -- runtime binding -----------------------------------------------------

    def attach(self) -> None:
        """Install the write barrier and start with a clean dirty set."""
        self.kernel.arena.dirty_hook = self.note_write
        self.kernel._dirty_roots.clear()
        self._dirty_groups.clear()
        self.attached = True

    def note_write(self, addr: int) -> None:
        """Arena write barrier: map one traced store to its group."""
        group = self._addr_to_group.get(addr)
        if group is not None:
            self._dirty_groups.add(group)

    # -- restore -------------------------------------------------------------

    def collect_dirty(self) -> set:
        """Dirty groups = write barrier + explicit marks + always-dirty."""
        dirty = set(self._dirty_groups)
        group_of = self._group_of_root_id
        for obj in self.kernel._dirty_roots:
            group = group_of.get(id(obj))
            if group is not None:
                dirty.add(group)
        dirty |= self.always_dirty
        return dirty

    def restore_in_place(self, faults: Optional[FaultPlan] = None
                         ) -> Tuple[int, int]:
        """Restore every dirty group into the live kernel.

        Returns ``(restored, skipped)`` group counts.

        Two injection sites live here.  ``restore.fail`` raises before
        any group is touched (a failed payload load); the caller retries
        or falls back to :meth:`restore_all_in_place`.  A
        ``segment.corrupt`` firing silently drops one dirty group from
        the restore set — exactly the torn restore the canonical-form
        consistency check (:meth:`verify`) exists to catch — and sets
        :attr:`corruption_pending` so the machine knows to run that
        check and repair.
        """
        if not self.attached:
            raise RuntimeError("image not attached to its kernel")
        if faults is not None and faults.should_inject(SITE_RESTORE_FAIL):
            raise RestoreFaultInjected(
                SITE_RESTORE_FAIL, "injected segmented restore failure")
        dirty = self.collect_dirty()
        if faults is not None and dirty \
                and faults.should_inject(SITE_SEGMENT_CORRUPT):
            dirty.discard(max(dirty))
            self.corruption_pending = True
        live = self.roots
        for group in dirty:
            stream = io.BytesIO(self.payloads[group])
            entries = _ResolvingUnpickler(stream, live).load()
            for key, state in entries:
                _apply_state(key, live[key], state)
        self._dirty_groups.clear()
        self.kernel._dirty_roots.clear()
        return len(dirty), len(self.payloads) - len(dirty)

    def restore_all_in_place(self) -> int:
        """Restore *every* group, dirty or not — the recovery path.

        Injection-free by design: after a failed or corrupted
        incremental restore, this re-materializes the full snapshot
        state while preserving root identity, which is state-equivalent
        to a fresh full deserialization (the clean run's behaviour).
        Returns the number of groups restored.
        """
        live = self.roots
        for payload in self.payloads:
            stream = io.BytesIO(payload)
            entries = _ResolvingUnpickler(stream, live).load()
            for key, state in entries:
                _apply_state(key, live[key], state)
        self._dirty_groups.clear()
        self.kernel._dirty_roots.clear()
        self.corruption_pending = False
        return len(self.payloads)

    # -- consistency ---------------------------------------------------------

    def verify(self) -> None:
        """Re-walk every root and compare against the snapshot reference.

        Raises :class:`RestoreConsistencyError` naming the divergent
        roots if any mutation escaped dirty tracking.
        """
        root_pids = {id(obj): key for key, obj in self.roots.items()}
        offenders: List[RootKey] = []
        for key, reference in self._reference.items():
            state = _capture_state(key, self.roots[key])
            walker = _CanonicalWalker(root_pids)
            if walker.walk_state(state) != reference:
                offenders.append(key)
        if offenders:
            raise RestoreConsistencyError(offenders)

    # -- telemetry -----------------------------------------------------------

    @property
    def group_count(self) -> int:
        return len(self.payloads)

    @property
    def segmented_bytes(self) -> int:
        return sum(len(payload) for payload in self.payloads)

    def describe_groups(self) -> List[Tuple[List[RootKey], int]]:
        """(member keys, payload size) per group, for benchmarks/docs."""
        return [(list(keys), len(payload))
                for keys, payload in zip(self.group_members, self.payloads)]


#: Type of the arena's dirty hook, for reference by the kernel layer.
DirtyHook = Callable[[int], None]
